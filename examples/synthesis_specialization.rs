//! Synthesis specialization (§VI): tailor the soft NPU's datapath to a
//! model instead of serving every model on one hardened design.
//!
//! For a range of model sizes, searches native dimension / lanes / tile
//! engines / precision on a Stratix 10 280 and compares the specialized
//! design's effective peak against running the same model on the generic
//! BW_S10.
//!
//! Run with: `cargo run --release --example synthesis_specialization`

use brainwave::fpga::{padding_efficiency, specialize};
use brainwave::prelude::*;

fn main() {
    let device = Device::stratix_10_280();
    println!(
        "synthesis specialization on {} ({} ALMs, {} M20Ks, {} DSPs)\n",
        device.name, device.alms, device.m20ks, device.dsps
    );
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>4} {:>9} {:>10} {:>12} {:>10}",
        "model", "nd", "lanes", "tiles", "m", "pad eff", "peak TF", "effective", "vs BW_S10"
    );

    for hidden in [256u64, 512, 1024, 1536, 2048, 2816] {
        let model = ModelRequirements {
            dims: vec![hidden],
            weight_params: 6 * hidden * hidden, // a GRU's six matrices
            min_mantissa_bits: 2,
        };
        let Some(design) = specialize(&device, &model) else {
            println!("{hidden:<12} does not fit");
            continue;
        };
        // The generic instance's effective peak on this model.
        let generic = NpuConfig::bw_s10();
        let generic_eff = generic.peak_tflops() * padding_efficiency(hidden, 400);
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>4} {:>8.0}% {:>10.1} {:>12.1} {:>9.2}x",
            format!("GRU {hidden}"),
            design.config.native_dim(),
            design.config.lanes(),
            design.config.tile_engines(),
            design.config.matrix_format().mantissa_bits(),
            design.padding_efficiency * 100.0,
            design.estimate.peak_tflops,
            design.effective_peak_tflops,
            design.effective_peak_tflops / generic_eff,
        );
    }

    println!(
        "\nThe §VI claim, quantified: a leaner per-model microarchitecture beats a\n\
         general instance most where tile padding hurts most (small and odd-sized\n\
         models), which is exactly where Table V shows BW_S10's utilization dip."
    );
}
