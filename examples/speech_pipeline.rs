//! A DeepSpeech-shaped speech pipeline across three NPUs — the §VII-B
//! motivating workload ("representative layers from popular DNN models
//! such as DeepSpeech"), composed end to end: conv front end, forward and
//! backward LSTM devices in parallel, and a per-step dense head.
//!
//! Run with: `cargo run --release --example speech_pipeline`

use brainwave::models::{SpeechModel, SpeechModelShape};
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NpuConfig::builder()
        .name("speech-node")
        .native_dim(16)
        .lanes(8)
        .tile_engines(2)
        .mrf_entries(512)
        .vrf_entries(512)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;

    let shape = SpeechModelShape {
        frames: 40,
        features: 16,
        window: 5,
        conv_filters: 32,
        hidden: 48,
        alphabet: 29, // a-z + space + apostrophe + blank
    };
    let model = SpeechModel::new(&cfg, shape);
    println!(
        "utterance: {} frames x {} features -> {} RNN steps; {:.1} MFLOPs per utterance\n",
        shape.frames,
        shape.features,
        shape.steps(),
        shape.ops() as f64 / 1e6
    );

    let mut front = Npu::new(cfg.clone());
    let mut fw = Npu::new(cfg.clone());
    let mut bw = Npu::new(cfg);
    model.load_random_weights(&mut front, &mut fw, &mut bw, 2024)?;

    // A synthetic spectrogram.
    let spectrogram: Vec<f32> = (0..shape.frames * shape.features)
        .map(|i| ((i as f32) * 0.05).sin() * ((i as f32) * 0.013).cos() * 0.5)
        .collect();

    let (logits, stats) = model.run(&mut front, &mut fw, &mut bw, &spectrogram)?;
    println!("per-device cycles:");
    println!("  conv front end : {:>8} (device 0)", stats.conv.cycles);
    println!("  forward LSTM   : {:>8} (device 1)", stats.forward.cycles);
    println!("  backward LSTM  : {:>8} (device 2)", stats.backward.cycles);
    println!("  dense head     : {:>8} (device 0)", stats.head.cycles);
    println!(
        "utterance latency: {:.1} us (RNN directions in parallel)",
        stats.latency_seconds() * 1e6
    );

    // A toy greedy decode over the logits, just to close the loop.
    let alphabet: Vec<char> = ('a'..='z').chain([' ', '\'', '_']).collect();
    let decoded: String = logits
        .iter()
        .map(|step| {
            let best = step
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            alphabet[best % alphabet.len()]
        })
        .collect();
    println!("\ngreedy decode of the random-weight model: \"{decoded}\"");
    println!("(gibberish by construction — the shapes and dataflow are the point)");
    Ok(())
}
