//! The §II-A multi-FPGA scenario: "we have split bidirectional RNNs across
//! two independent FPGAs, with the server invoking the forward and
//! backward RNN FPGAs separately and concatenating their outputs."
//!
//! Run with: `cargo run --release --example bidirectional_rnn`

use brainwave::models::BiLstm;
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NpuConfig::builder()
        .name("BiRNN-node")
        .native_dim(16)
        .lanes(8)
        .tile_engines(2)
        .mrf_entries(512)
        .vrf_entries(512)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;
    let dims = RnnDims::square(48);
    let bi = BiLstm::new(&cfg, dims);
    println!(
        "bidirectional LSTM h={} on two NPUs ({} MRF tiles per direction)\n",
        dims.hidden,
        bi.forward().mrf_entries_required()
    );

    // One NPU per direction — two hardware microservices.
    let mut fw_npu = Npu::new(cfg.clone());
    let mut bw_npu = Npu::new(cfg);
    bi.load_weights(
        &mut fw_npu,
        &mut bw_npu,
        &LstmWeights::random(dims, 100),
        &LstmWeights::random(dims, 200),
    )?;

    let steps = 12;
    let inputs: Vec<Vec<f32>> = (0..steps)
        .map(|t| {
            (0..48)
                .map(|i| ((t * 48 + i) as f32 * 0.07).sin() * 0.4)
                .collect()
        })
        .collect();
    let (outputs, stats) = bi.run(&mut fw_npu, &mut bw_npu, &inputs)?;

    println!(
        "served {} steps: per-step output is the 2x{}-dim concatenation",
        outputs.len(),
        dims.hidden
    );
    println!(
        "forward device : {} cycles ({:.1} us)",
        stats.forward.cycles,
        stats.forward.latency_seconds() * 1e6
    );
    println!(
        "backward device: {} cycles ({:.1} us)",
        stats.backward.cycles,
        stats.backward.latency_seconds() * 1e6
    );
    println!(
        "request latency: {:.1} us (max of the two — they run in parallel,\n\
         not {:.1} us as a serial evaluation would take)",
        stats.latency_seconds() * 1e6,
        (stats.forward.latency_seconds() + stats.backward.latency_seconds()) * 1e6
    );
    println!(
        "combined effective throughput: {:.3} TFLOPS",
        stats.effective_tflops(bi.ops(steps as u32))
    );

    // The first output's two halves come from different directions: the
    // forward half reflects only x_0, the backward half the whole sequence.
    let first = &outputs[0];
    println!(
        "\noutput[0] forward half max |h| = {:.3}, backward half max |h| = {:.3}",
        first[..48].iter().fold(0.0f32, |m, v| m.max(v.abs())),
        first[48..].iter().fold(0.0f32, |m, v| m.max(v.abs())),
    );
    println!("\nThe §II-A pattern: partitionable models scale across accelerators");
    println!("with the CPU runtime doing only the concatenation.");
    Ok(())
}
