//! Performance debugging with the execution trace: where do a GRU's cycles
//! go on BW_S10, and which chains expose recurrent-dependence latency?
//!
//! This is the §VII-B2 analysis workflow — "microarchitectural
//! inefficiencies such as data and structural hazards, pipeline stalls …
//! conspire to prevent NPU implementations from approaching ideal SDM
//! latencies" — run against the simulator's own per-chain records.
//!
//! Run with: `cargo run --release --example trace_bottleneck`

use brainwave::core::TraceSummary;
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size GRU where dependence latency is visible next to compute.
    let bench_hidden = 1024usize;
    let steps = 25u32;
    let base = NpuConfig::bw_s10();
    let gru = Gru::new(&base, RnnDims::square(bench_hidden));
    let cfg = NpuConfig::builder()
        .name("BW_S10")
        .native_dim(base.native_dim())
        .lanes(base.lanes())
        .tile_engines(base.tile_engines())
        .mrf_entries(gru.mrf_entries_required())
        .vrf_entries(4096)
        .clock_mhz(250.0)
        .build()?;
    let gru = Gru::new(&cfg, RnnDims::square(bench_hidden));

    let mut npu = Npu::with_mode(cfg, ExecMode::TimingOnly);
    npu.set_trace(true);
    let stats = gru.run_timing_only(&mut npu, steps)?;
    let trace = npu.take_trace();
    let summary = TraceSummary::from_trace(&trace);

    println!(
        "GRU h={bench_hidden}, {steps} steps on BW_S10: {} cycles, {} chains traced\n",
        stats.cycles,
        trace.len()
    );
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "chain kind", "chains", "busy cyc", "dep wait", "res wait", "occupancy"
    );
    for (kind, k) in &summary.kinds {
        println!(
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>9.1}%",
            kind,
            k.chains,
            k.busy_cycles,
            k.dep_wait_cycles,
            k.resource_wait_cycles,
            summary.occupancy(kind) * 100.0
        );
    }

    if let Some((idx, stall)) = summary.worst_dep_stall {
        let t = &trace[idx];
        println!(
            "\nworst dependence stall: chain #{idx} ({:?}) waited {stall} cycles on data\n\
             (dispatched at {}, data ready at {}, started at {})",
            t.kind, t.dispatched_at, t.dep_ready_at, t.start
        );
    }

    println!(
        "\nreading: the MVM keeps ~{:.0}% occupancy; the dependence waits on the\n\
         recurrent chains are exactly the 'deep pipelines delay dependent data'\n\
         effect of §VII-B1 — compare against the batch-interleaved firmware\n\
         (fig8) which fills those waits with other sequences' work.",
        summary.occupancy("mvm") * 100.0
    );
    Ok(())
}
