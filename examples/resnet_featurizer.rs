//! The §VII-C scenario: a ResNet-50-based image featurizer served at batch
//! 1 on a CNN-specialized Arria 10 instance, layer by layer.
//!
//! Run with: `cargo run --release --example resnet_featurizer`

use brainwave::baselines::{BW_CNN_A10_BATCH1, P40_BATCH1};
use brainwave::models::resnet::{resnet50_featurizer, resnet50_ops};
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // BW_CNN_A10 with the MFU stream widened for position-heavy layers.
    let base = NpuConfig::bw_cnn_a10();
    let cfg = NpuConfig::builder()
        .name("BW_CNN_A10")
        .native_dim(base.native_dim())
        .lanes(base.lanes())
        .tile_engines(base.tile_engines())
        .mrf_entries(1024)
        .vrf_entries(4096)
        .clock_mhz(base.clock_hz() / 1e6)
        .matrix_format(base.matrix_format())
        .mfu_lanes(base.native_dim())
        .build()?;
    println!(
        "featurizer on {}: {} MACs, {:.1} peak TFLOPS, {} format\n",
        cfg.name(),
        cfg.mac_count(),
        cfg.peak_tflops(),
        cfg.matrix_format()
    );

    let mut total_cycles = 0u64;
    let mut by_stage: std::collections::BTreeMap<String, u64> = Default::default();
    for layer in resnet50_featurizer() {
        let conv = ConvLayer::new(&cfg, layer.shape);
        let mut npu = Npu::with_mode(cfg.clone(), ExecMode::TimingOnly);
        let stats = conv.run_timing_only(&mut npu, 0)?;
        total_cycles += stats.cycles;
        let stage = layer.name.split('_').next().unwrap_or("?").to_owned();
        *by_stage.entry(stage).or_default() += stats.cycles;
    }

    println!("cycles by stage:");
    for (stage, cycles) in &by_stage {
        println!(
            "  {stage:<6} {:>9} cycles ({:.2} ms)",
            cycles,
            *cycles as f64 / cfg.clock_hz() * 1e3
        );
    }

    let compute_ms = total_cycles as f64 / cfg.clock_hz() * 1e3;
    let latency_ms = compute_ms + 0.1; // PCIe transfer, as in the paper
    let util = resnet50_ops() as f64 / (total_cycles as f64 * cfg.peak_flops_per_cycle() as f64);
    println!(
        "\nend-to-end: {:.2} ms compute + 0.1 ms PCIe = {:.2} ms -> {:.0} IPS at batch 1 \
         ({:.0}% effective utilization)",
        compute_ms,
        latency_ms,
        1000.0 / latency_ms,
        util * 100.0
    );
    println!(
        "paper: BW_CNN_A10 {:.1} ms / {:.0} IPS; NVIDIA P40 {:.2} ms / {:.0} IPS",
        BW_CNN_A10_BATCH1.latency_ms, BW_CNN_A10_BATCH1.ips, P40_BATCH1.latency_ms, P40_BATCH1.ips
    );
    println!("\nThe Table VI shape holds: batch-1 CNN serving competitive with a");
    println!("newer-generation inference GPU, with no batching queue in the loop.");
    Ok(())
}
