//! Quickstart: deploy and serve an LSTM on a simulated Brainwave NPU.
//!
//! Builds a functionally executing NPU, pins random LSTM weights in its
//! matrix register file, streams a few time steps through the network
//! queue, and checks the result against the plain-`f32` reference model.
//!
//! Run with: `cargo run --release --example quickstart`

use brainwave::models::reference;
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small NPU so functional execution is instant: 16-wide native
    // vectors, 2 tile engines, 5-bit-mantissa block floating point.
    let cfg = NpuConfig::builder()
        .name("demo")
        .native_dim(16)
        .lanes(8)
        .tile_engines(2)
        .mrf_entries(256)
        .vrf_entries(256)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;
    println!(
        "NPU: {} ({} MACs, {:.3} peak TFLOPS at {:.0} MHz)",
        cfg.name(),
        cfg.mac_count(),
        cfg.peak_tflops(),
        cfg.clock_hz() / 1e6
    );

    // A 32-dimensional LSTM: the toolflow plans the MRF/VRF layout and
    // generates the paper-style firmware.
    let dims = RnnDims::square(32);
    let lstm = Lstm::new(&cfg, dims);
    println!(
        "LSTM h={}: {} MRF tiles, {} chains per time step, {} ops/step",
        dims.hidden,
        lstm.mrf_entries_required(),
        lstm.program(1).chain_count(),
        lstm.ops_per_step()
    );

    // Pin weights (the host runtime's model deployment step).
    let weights = LstmWeights::random(dims, 2024);
    let mut npu = Npu::new(cfg);
    lstm.load_weights(&mut npu, &weights)?;

    // Serve 8 time steps of a synthetic input sequence.
    let inputs: Vec<Vec<f32>> = (0..8)
        .map(|t| {
            (0..32)
                .map(|i| ((t * 32 + i) as f32 * 0.13).sin() * 0.5)
                .collect()
        })
        .collect();
    let (outputs, stats) = lstm.run(&mut npu, &inputs)?;

    println!(
        "\nserved {} steps in {} cycles ({:.2} us): {} compound instructions, {} MACs dispatched",
        inputs.len(),
        stats.cycles,
        stats.latency_seconds() * 1e6,
        stats.instructions,
        stats.mvm_macs
    );

    // Validate against the f32 golden model.
    let mut h = vec![0.0f32; 32];
    let mut c = vec![0.0f32; 32];
    let mut worst = 0.0f32;
    for (t, x) in inputs.iter().enumerate() {
        let (h2, c2) =
            reference::lstm_cell(&weights.w_x, &weights.w_h, &weights.bias, 32, 32, x, &h, &c);
        h = h2;
        c = c2;
        for (got, want) in outputs[t].iter().zip(&h) {
            worst = worst.max((got - want).abs());
        }
    }
    println!("max |NPU - f32 reference| across all steps: {worst:.4}");
    assert!(worst < 0.1, "quantization error should be small");
    println!("OK: block floating point + float16 pipeline tracks the reference.");
    Ok(())
}
