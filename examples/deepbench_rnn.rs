//! The paper's headline experiment: the DeepBench RNN inference suite at
//! batch 1 on a simulated BW_S10, next to the SDM lower bound and the
//! published Titan Xp baseline (the substance of Table V and Figure 7).
//!
//! Run with: `cargo run --release --example deepbench_rnn`

use brainwave::baselines::titan_xp_point;
use brainwave::dataflow::RnnCriticalPath;
use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DeepBench RNN inference, batch size 1 (simulated BW_S10, 250 MHz)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>8} {:>12} {:>8}",
        "benchmark", "SDM ms", "BW ms", "TFLOPS", "% util", "Titan Xp ms", "speedup"
    );

    for bench in table5_suite() {
        // The SDM bound (§III) at BW_S10's 96,000 MACs.
        let cp = match bench.kind {
            RnnKind::Lstm => RnnCriticalPath::lstm(bench.hidden as u64, bench.hidden as u64),
            RnnKind::Gru => RnnCriticalPath::gru(bench.hidden as u64, bench.hidden as u64),
        };
        let sdm_ms = cp.sdm_cycles(u64::from(bench.timesteps), 96_000) as f64 / 250e6 * 1e3;

        // The simulated BW NPU, timing-only (weights are placeholder: every
        // reported metric is shape-driven).
        let base = NpuConfig::bw_s10();
        let mrf = match bench.kind {
            RnnKind::Gru => Gru::new(&base, bench.dims()).mrf_entries_required(),
            RnnKind::Lstm => Lstm::new(&base, bench.dims()).mrf_entries_required(),
        };
        let cfg = NpuConfig::builder()
            .name("BW_S10")
            .native_dim(base.native_dim())
            .lanes(base.lanes())
            .tile_engines(base.tile_engines())
            .mrf_entries(mrf.max(base.mrf_entries()))
            .vrf_entries(4096)
            .clock_mhz(250.0)
            .build()?;
        let mut npu = Npu::with_mode(cfg.clone(), ExecMode::TimingOnly);
        let stats = match bench.kind {
            RnnKind::Gru => {
                Gru::new(&cfg, bench.dims()).run_timing_only(&mut npu, bench.timesteps)?
            }
            RnnKind::Lstm => {
                Lstm::new(&cfg, bench.dims()).run_timing_only(&mut npu, bench.timesteps)?
            }
        };
        let ops = bench.ops();
        let xp = titan_xp_point(&bench).expect("dataset covers the suite");

        println!(
            "{:<20} {:>10.4} {:>10.4} {:>8.2} {:>8.1} {:>12.2} {:>7.0}x",
            bench.name(),
            sdm_ms,
            stats.latency_ms(),
            stats.effective_tflops(ops),
            stats.effective_utilization(ops) * 100.0,
            xp.latency_ms,
            xp.latency_ms / stats.latency_ms(),
        );
    }

    println!(
        "\nThe shape of the paper's result: the BW NPU serves every layer in\n\
         single-digit milliseconds with no batching, 1-2 orders of magnitude\n\
         faster than the GPU baseline, within ~2x of the SDM bound on large\n\
         models, with utilization rising steeply with hidden dimension."
    );
    Ok(())
}
