//! Lint firmware before it ever touches an NPU.
//!
//! The static analyzer in `bw-core::analysis` walks a program the way the
//! scheduler would — tracking `rows`/`cols`, register-file ranges and
//! network-queue traffic — and reports `BW0xx` diagnostics with
//! severities. `bw-gir` runs the same passes as a deployment gate, and
//! `cargo run -p bw-bench --bin lint` wraps them in a CLI.
//!
//! This example lints the generated LSTM kernel (clean), then seeds three
//! classic firmware bugs into a hand-written program and shows the
//! analyzer catching each one.
//!
//! Run with: `cargo run --example lint_firmware`

use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NpuConfig::builder()
        .name("lint-demo")
        .native_dim(16)
        .lanes(8)
        .tile_engines(2)
        .mrf_entries(256)
        .vrf_entries(256)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;

    // 1. Production firmware: the LSTM generator declares what the host
    //    preloads (weights, biases, recurrent state) and how many vectors
    //    arrive per run; under those facts the kernel lints clean.
    let lstm = Lstm::new(&cfg, RnnDims::square(32));
    let steps = 4;
    let report = analyze_with(&lstm.program(steps), &cfg, lstm.analysis_options(steps));
    println!(
        "LSTM kernel ({} chains): {}",
        lstm.program(steps).chain_count(),
        if report.is_clean() {
            "clean"
        } else {
            "NOT clean"
        }
    );
    println!();

    // 2. Seeded bugs: a reduction kernel with three mistakes a simulator
    //    run might miss (or surface only as a wrong answer much later).
    let mut b = ProgramBuilder::new();
    b.set_rows(2).set_cols(2);
    b.v_rd(MemId::NetQ, 0)
        .v_wr(MemId::InitialVrf, 0)
        .end_chain()?;
    // Bug 1: reads InitialVrf[8..10], but only [0..2) is ever written.
    b.v_rd(MemId::InitialVrf, 8)
        .mv_mul(0)
        .v_wr(MemId::AddSubVrf(0), 4)
        .end_chain()?;
    // Bug 2: overwrites AddSubVrf(0)[4..6) before anything reads it — the
    // previous chain's store is dead.
    b.v_rd(MemId::InitialVrf, 0)
        .mv_mul(0)
        .v_wr(MemId::AddSubVrf(0), 4)
        .end_chain()?;
    // Bug 3: the loop pops 2 vectors × 8 iterations = 16, host sends 10.
    b.begin_loop(8)?;
    b.v_rd(MemId::NetQ, 0)
        .vv_add(4) // reads the bias staged in AddSubVrf(0)[4..6)
        .v_wr(MemId::NetQ, 0)
        .end_chain()?;
    b.end_loop()?;
    let buggy = b.build();

    let options = AnalysisOptions::default()
        .preload(MemId::MatrixRf, 0, 4) // mv_mul weights are host-pinned
        .with_input_vectors(10);
    let report = analyze_with(&buggy, &cfg, options);

    println!("seeded-bug report ({} findings):", report.diagnostics.len());
    for d in &report.diagnostics {
        println!("  {d}");
    }
    println!();

    // 3. The same report, machine-readable — what a toolflow would log.
    println!("as JSON: {}", report.to_json());

    assert!(report.has_errors(), "the seeded bugs must be caught");
    Ok(())
}
