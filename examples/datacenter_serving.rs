//! Cloud-scale serving (§I, §II): the latency cost of batching queues.
//!
//! Serves the same GRU model two ways against identical Poisson request
//! streams — the BW discipline (one request at a time, latency from the
//! NPU simulator) and a GPU-style batching queue — and sweeps offered
//! load. Also demonstrates a two-FPGA pipeline for a partitioned model.
//!
//! Run with: `cargo run --release --example datacenter_serving`

use brainwave::prelude::*;
use brainwave::system::{simulate_pipeline, simulate_pool, sweep_load, Routing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground the BW service time in the simulator: GRU h=2048, 25 steps.
    let bench = RnnBenchmark::new(RnnKind::Gru, 2048, 25);
    let base = NpuConfig::bw_s10();
    let gru = Gru::new(&base, bench.dims());
    let cfg = NpuConfig::builder()
        .native_dim(base.native_dim())
        .lanes(base.lanes())
        .tile_engines(base.tile_engines())
        .mrf_entries(gru.mrf_entries_required())
        .vrf_entries(4096)
        .clock_mhz(250.0)
        .build()?;
    let mut npu = Npu::with_mode(cfg, ExecMode::TimingOnly);
    let stats = Gru::new(npu.config(), bench.dims()).run_timing_only(&mut npu, bench.timesteps)?;
    let bw_service = stats.latency_seconds();
    println!(
        "simulated service time for {}: {:.3} ms per request\n",
        bench.name(),
        bw_service * 1e3
    );

    let bw = Microservice {
        service: ServiceModel::PerRequest {
            seconds: bw_service,
        },
        servers: 1,
        network_hop_s: 10e-6,
    };
    // A GPU with the same single-stream latency scaled by the Table V gap,
    // amortizable through batching (batch-16 runs ~2.5x one batch-1 pass).
    let gpu_single = bw_service * 50.0;
    let gpu = Microservice {
        service: ServiceModel::Batched {
            batch_max: 16,
            timeout_s: 5e-3,
            base_s: gpu_single,
            per_item_s: gpu_single * 0.1,
        },
        servers: 1,
        network_hop_s: 10e-6,
    };

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "load rps", "BW p50 ms", "BW p99 ms", "GPU p50 ms", "GPU p99 ms"
    );
    let rates = [50.0, 200.0, 400.0, 800.0, 1200.0];
    let bw_points = sweep_load(&rates, &bw, 4000, 7);
    let gpu_points = sweep_load(&rates, &gpu, 4000, 7);
    for (b, g) in bw_points.iter().zip(&gpu_points) {
        println!(
            "{:>10.0} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            b.rate_per_s,
            b.report.p50_latency_s * 1e3,
            b.report.p99_latency_s * 1e3,
            g.report.p50_latency_s * 1e3,
            g.report.p99_latency_s * 1e3,
        );
    }

    // A bidirectional-RNN-style two-FPGA pipeline (§II-A).
    let stage = Microservice {
        service: ServiceModel::PerRequest {
            seconds: bw_service / 2.0,
        },
        servers: 1,
        network_hop_s: 10e-6,
    };
    let arrivals = ArrivalProcess::Poisson { rate_per_s: 400.0 }.generate(4000, 11);
    let reports = simulate_pipeline(&arrivals, &[stage, stage]);
    println!(
        "\ntwo-FPGA pipeline at 400 rps: end-to-end p50 {:.2} ms, p99 {:.2} ms \
         (per-stage service {:.2} ms)",
        reports[1].p50_latency_s * 1e3,
        reports[1].p99_latency_s * 1e3,
        bw_service / 2.0 * 1e3
    );

    // Disaggregated pooling (§II-A): four NPU instances behind one
    // microservice address, compared across routing policies.
    let pool = vec![bw; 4];
    let arrivals = ArrivalProcess::Poisson { rate_per_s: 3000.0 }.generate(8000, 23);
    println!("\npooled serving at 3000 rps across 4 instances:");
    for routing in [
        Routing::RoundRobin,
        Routing::Random,
        Routing::LeastOutstanding,
    ] {
        let report = simulate_pool(&arrivals, &pool, routing, 1);
        println!(
            "  {routing:?}: p50 {:.3} ms, p99 {:.3} ms, {:.0} rps",
            report.instances[0].p50_latency_s * 1e3,
            report.p99_latency_s * 1e3,
            report.throughput_rps
        );
    }

    println!(
        "\nThe paper's systems argument in numbers: per-request serving holds p99\n\
         near the raw model latency until saturation, while the batching queue\n\
         pays the formation timeout at every load level."
    );
    Ok(())
}
