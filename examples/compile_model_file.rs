//! The full toolflow (§II-B), end to end: parse a textual model
//! description into the graph IR, fuse it, shard any oversized layer,
//! partition across accelerators under an on-chip budget, lower to ISA
//! binaries, deploy, and serve — validating against the IR's own host
//! evaluator.
//!
//! Run with: `cargo run --release --example compile_model_file`

use brainwave::gir::{
    fuse, parse_model, partition_sharded, split_oversized_stages, Deployment, Placement,
};
use brainwave::prelude::*;

const MODEL: &str = "\
# a text-classification head: wide encoder, two hidden layers, softmax
input 64
dense 96 tanh seed=11
dense 96 relu seed=12
dense 32 relu seed=13
dense 8 seed=14
cpu softmax
output
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("model description:\n{MODEL}");

    // 1. Import.
    let graph = parse_model(MODEL)?;
    println!(
        "parsed: {} IR nodes, output dims {:?}",
        graph.nodes().len(),
        graph.output_dims()
    );

    // 2. Fuse.
    let pipeline = fuse(&graph)?;
    println!(
        "fused into {} stages ({} accelerable)",
        pipeline.stages.len(),
        pipeline.stages.iter().filter(|s| s.accelerable()).count()
    );

    // 3. Shard + partition under a deliberately tight on-chip budget so the
    //    model needs several devices (the paper's capacity-driven
    //    multi-FPGA case, §II-B).
    let budget = 7_000u64; // parameters per device
    let (pipeline, report) = split_oversized_stages(&pipeline, budget)?;
    if report.splits.is_empty() {
        println!("no stage exceeded the {budget}-parameter device budget");
    } else {
        for (stage, shards) in &report.splits {
            println!("stage {stage} exceeded the budget: row-sharded into {shards} devices' worth");
        }
    }
    let plan = partition_sharded(&pipeline, budget, &report)?;
    println!("partitioned onto {} accelerators:", plan.devices_used);
    for seg in &plan.segments {
        match seg {
            Placement::Accelerator { device, stages } => {
                println!("  device {device}: stages {stages:?}");
            }
            Placement::Cpu { stages } => println!("  host CPU: stages {stages:?}"),
        }
    }

    // 4. Lower + deploy.
    let cfg = NpuConfig::builder()
        .name("toolflow-node")
        .native_dim(16)
        .lanes(8)
        .tile_engines(2)
        .mrf_entries(64)
        .vrf_entries(128)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;
    let deployment = Deployment::compile(&pipeline, &plan, &cfg)?;
    let mut npus: Vec<Npu> = (0..deployment.devices_required())
        .map(|_| Npu::new(cfg.clone()))
        .collect();
    deployment.deploy(&mut npus)?;
    for bin in deployment.binaries() {
        println!(
            "  binary for device {}: {} MRF tiles, {} bytes encoded",
            bin.device,
            bin.mrf_entries,
            bin.program.encode().len()
        );
    }

    // 5. Serve and validate.
    let x: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.17).sin() * 0.5).collect();
    let (scores, stats) = deployment.execute(&mut npus, &x)?;
    let reference = graph.evaluate(&x)?;
    println!("\nscores (NPU)      : {scores:.4?}");
    println!("scores (reference): {reference:.4?}");
    let worst = scores
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "max deviation {worst:.4}; accelerator cycles across devices: {}",
        stats.cycles
    );
    assert!(worst < 0.05, "quantized serving must track the reference");
    println!("\nOK: checkpoint-to-microservice, the §II-B pipeline in one run.");
    Ok(())
}
