//! Programming the BW NPU by hand: write an instruction-chain kernel with
//! the firmware builder, inspect its disassembly and binary encoding, and
//! watch the hierarchical decoder expand one compound instruction.
//!
//! The kernel computes a gated residual update — the kind of fused
//! DNN-subgraph the chain ISA was designed for:
//!
//! ```text
//! g = sigmoid(W·x + b)          (one chain: read, mv_mul, add, sigmoid)
//! y = g ∘ x + x                 (one chain: read, mul, add, multicast out)
//! ```
//!
//! Run with: `cargo run --release --example write_your_own_kernel`

use brainwave::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NpuConfig::builder()
        .name("kernel-demo")
        .native_dim(8)
        .lanes(4)
        .tile_engines(2)
        .mrf_entries(64)
        .vrf_entries(64)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()?;

    // --- VRF/MRF layout, by hand this time. ---
    const IVRF_X: u32 = 0;
    const MRF_W: u32 = 0;
    const ASVRF0_B: u32 = 0; // bias, AddSubVrf(0)
    const ASVRF0_X: u32 = 1; // x again as an add operand (the residual)
    const MULVRF0_G: u32 = 0; // the gate, MultiplyVrf(0)

    // --- The kernel. ---
    let mut b = ProgramBuilder::new();
    b.set_rows(1).set_cols(1);
    // Stage x from the network, multicast to every file that needs it.
    b.v_rd(MemId::NetQ, 0)
        .v_wr(MemId::InitialVrf, IVRF_X)
        .v_wr(MemId::AddSubVrf(0), ASVRF0_X)
        .end_chain()?;
    // g = sigmoid(W x + b)
    b.v_rd(MemId::InitialVrf, IVRF_X)
        .mv_mul(MRF_W)
        .vv_add(ASVRF0_B)
        .v_sigm()
        .v_wr(MemId::MultiplyVrf(0), MULVRF0_G)
        .end_chain()?;
    // y = g ∘ x + x, straight out to the network.
    b.v_rd(MemId::InitialVrf, IVRF_X)
        .vv_mul(MULVRF0_G)
        .vv_add(ASVRF0_X)
        .v_wr(MemId::NetQ, 0)
        .end_chain()?;
    let program = b.build();

    println!("disassembly:\n{program}");

    let binary = program.encode();
    println!("binary: {} bytes; round-trips: {}", binary.len(), {
        Program::decode(&binary)? == program
    });

    // --- Run it. ---
    let mut npu = Npu::new(cfg.clone());
    let w: Vec<f32> = (0..64)
        .map(|i| if i % 9 == 0 { 1.0 } else { 0.0 })
        .collect(); // identity
    npu.load_tiled_matrix(MRF_W, 1, 1, 8, 8, &w)?;
    npu.load_vector(MemId::AddSubVrf(0), ASVRF0_B, &[0.0; 8])?;
    let x: Vec<f32> = vec![0.5, -0.5, 1.0, -1.0, 2.0, -2.0, 0.0, 0.25];
    npu.push_input(x.clone())?;
    let stats = npu.run(&program)?;
    let y = npu.pop_output().expect("kernel writes one vector");

    println!("\nx = {x:?}");
    println!("y = {y:?}");
    for (xi, yi) in x.iter().zip(&y) {
        let want = (1.0 / (1.0 + (-xi).exp())) * xi + xi; // sigmoid(x)∘x + x
        assert!((yi - want).abs() < 0.05, "{yi} vs {want}");
    }
    println!(
        "\n{} chains, {} instructions, {} cycles end to end",
        stats.chains, stats.instructions, stats.cycles
    );

    // --- What one instruction becomes underneath (Figure 6). ---
    let expansion = HddExpansion::expand(&cfg, &Instruction::MvMul { mrf_index: 0 }, 1, 1);
    println!("\nhierarchical decode of the mv_mul:");
    for level in &expansion.levels {
        println!(
            "  {:<45} {:>6} units -> {:>6} dispatched",
            level.stage, level.units, level.dispatched
        );
    }
    println!("  = {} primitive operations", expansion.primitive_ops);
    Ok(())
}
