//! Offline stand-in for `proptest`: deterministic property testing with the
//! API surface this workspace uses — range/tuple strategies, `prop_map`,
//! `any::<T>()`, `collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds; cases are drawn from a per-case splitmix64 stream, so every run
//! of a given binary tests the same inputs.

/// Test configuration and run-time plumbing used by the generated tests.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case random source (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed test case with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64();
                    let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        ::core::panic!("proptest case {} failed: {}", __case, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, tuples and maps compose.
        #[test]
        fn generated_values_in_range(
            x in 0u8..4,
            y in 2u8..=5,
            f in -1.5f32..1.5,
            pair in (0u32..10, any::<bool>()).prop_map(|(a, b)| (a * 2, b)),
            xs in prop::collection::vec(0usize..7, 1..12),
        ) {
            prop_assert!(x < 4);
            prop_assert!((2..=5).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f));
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 20);
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|&v| v < 7));
            prop_assert_eq!(x as u32 + 1, u32::from(x) + 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        let s = (0u32..1000, -1.0f64..1.0);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn failed_assertion_is_reported() {
        fn inner() -> Result<(), crate::test_runner::TestCaseError> {
            prop_assert!(1 + 1 == 3, "math broke: {}", 2);
            Ok(())
        }
        let err = inner().unwrap_err();
        assert_eq!(err.to_string(), "math broke: 2");
    }
}
