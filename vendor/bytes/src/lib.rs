//! Offline stand-in for the `bytes` crate: growable write buffer, cursored
//! read buffer, and the `Buf`/`BufMut` trait methods the workspace uses.
//! Multi-byte integers are big-endian and reads past the end panic, both
//! matching the real crate.

use std::ops::Deref;

/// Read-side cursor over an owned byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Copies the written bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side access to a byte buffer (big-endian, panics on underflow).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32;
    /// Reads `n` bytes out into a fresh buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes([self.get_u8(), self.get_u8()])
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes([self.get_u8(), self.get_u8(), self.get_u8(), self.get_u8()])
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        out
    }
}

/// Write-side access to a byte buffer (big-endian).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_slice(b"xy");
        assert_eq!(&w[..3], &[0xAB, 0x12, 0x34]);

        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(&r.copy_to_bytes(2)[..], b"xy");
        assert_eq!(r.remaining(), 0);
    }
}
