//! Offline stand-in for `criterion`: the macro/type surface the workspace's
//! benches use. Each benchmark runs a short warm-up plus a few timed
//! iterations and prints one line — enough to exercise the bench code paths
//! and give a rough number, without statistics or HTML reports.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark (recorded, displayed per line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    iters: u32,
    per_iter: Duration,
}

impl Bencher {
    /// Times `f` over a few iterations (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        const ITERS: u32 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.iters = ITERS;
        self.per_iter = start.elapsed() / ITERS;
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = b.per_iter.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {id}: {:.3} ms/iter{rate}", per_iter * 1e3);
}

/// Collects benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
