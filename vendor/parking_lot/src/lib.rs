//! Offline stand-in for `parking_lot`: a `Mutex` over `std::sync::Mutex`
//! with parking_lot's panic-free API (no poisoning, `lock()` returns the
//! guard directly, `into_inner()` returns the value directly).

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![0u32; 3]);
        m.lock()[1] = 7;
        assert_eq!(m.into_inner(), vec![0, 7, 0]);
    }
}
