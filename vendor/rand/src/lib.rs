//! Offline stand-in for `rand`: a deterministic `StdRng` (splitmix64) with
//! `seed_from_u64` and `gen_range` over primitive half-open/inclusive
//! ranges — the only surface this workspace uses.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard the open upper bound against rounding.
                let v = v as $t;
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = a.gen_range(-0.5..0.5);
            let y: f32 = b.gen_range(-0.5..0.5);
            assert_eq!(x, y);
            assert!((-0.5..0.5).contains(&x));
            let i = a.gen_range(0usize..17);
            assert_eq!(i, b.gen_range(0usize..17));
            assert!(i < 17);
            let m = a.gen_range(2u8..=5);
            assert_eq!(m, b.gen_range(2u8..=5));
            assert!((2..=5).contains(&m));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(f64::EPSILON..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(f64::EPSILON..1.0)).collect();
        assert_ne!(xs, ys);
    }
}
