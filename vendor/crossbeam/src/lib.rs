//! Offline stand-in for `crossbeam`: scoped threads delegating to
//! `std::thread::scope`, presented through crossbeam's API shape (the
//! spawn closure receives the scope, and `scope` returns a `Result`).

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// Payload of a propagated panic.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to worker closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope (so
        /// workers can spawn further workers), matching crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Unlike crossbeam, a panicking worker propagates
    /// its panic on join (via `std::thread::scope`) instead of surfacing
    /// it in the returned `Result`; callers that `.expect()` the result
    /// observe the same failure either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_join_and_share_state() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("workers do not panic");
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 4);
    }
}
