//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize`; nothing in
//! it serializes through serde at run time, so expanding to nothing is
//! sufficient (and keeps this crate free of `syn`/`quote`).

use proc_macro::TokenStream;

/// Accepts (and discards) a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts (and discards) a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
