//! Offline stand-in for `serde`: the trait names plus re-exported no-op
//! derives. See `vendor/README.md` for scope and rationale.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
