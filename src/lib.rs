//! # brainwave
//!
//! A software reproduction of *A Configurable Cloud-Scale DNN Processor for
//! Real-Time AI* (the Project Brainwave NPU, ISCA 2018): a functionally
//! executing, cycle-level simulator of the BW NPU together with every
//! substrate the paper depends on, and a benchmark harness that regenerates
//! each of the paper's tables and figures.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! stable module names and offers a [`prelude`] for the common path. The
//! pieces:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `bw-core` | the NPU: mega-SIMD ISA, chains, cycle-level simulator, HDD |
//! | [`bfp`] | `bw-bfp` | block floating point + software float16 |
//! | [`models`] | `bw-models` | LSTM/GRU/MLP/CNN firmware, DeepBench + ResNet-50 workloads |
//! | [`gir`] | `bw-gir` | graph IR, fusion, multi-FPGA partitioning, lowering |
//! | [`dataflow`] | `bw-dataflow` | UDM/SDM critical-path methodology |
//! | [`fpga`] | `bw-fpga` | device catalog, area model, synthesis specialization |
//! | [`baselines`] | `bw-baselines` | Titan Xp / P40 published datasets + GPU batch model |
//! | [`system`] | `bw-system` | datacenter serving simulation |
//! | [`serve`] | `bw-serve` | hardware-microservices serving runtime over live NPUs |
//! | [`fleet`] | `bw-fleet` | autoscaling, placement, and live-migration control loop |
//! | [`obs`] | `bw-obs` | SLO burn-rate monitoring over the serving pool |
//! | [`trace`] | `bw-trace` | Perfetto trace-event + Prometheus exposition exporters |
//!
//! ## Quickstart
//!
//! ```
//! use brainwave::prelude::*;
//!
//! // A small LSTM on a small NPU, end to end.
//! let cfg = NpuConfig::builder()
//!     .native_dim(8).lanes(4).tile_engines(2)
//!     .matrix_format(BfpFormat::BFP_1S_5E_5M)
//!     .build()?;
//! let dims = RnnDims::square(8);
//! let lstm = Lstm::new(&cfg, dims);
//! let mut npu = Npu::new(cfg);
//! lstm.load_weights(&mut npu, &LstmWeights::random(dims, 42))?;
//! let (outputs, stats) = lstm.run(&mut npu, &[vec![0.1; 8], vec![0.2; 8]])?;
//! assert_eq!(outputs.len(), 2);
//! println!("2 steps in {} cycles", stats.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the table/figure regeneration harnesses (`EXPERIMENTS.md` maps each to
//! the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bw_baselines as baselines;
pub use bw_bfp as bfp;
pub use bw_core as core;
pub use bw_dataflow as dataflow;
pub use bw_fleet as fleet;
pub use bw_fpga as fpga;
pub use bw_gir as gir;
pub use bw_models as models;
pub use bw_obs as obs;
pub use bw_serve as serve;
pub use bw_system as system;
pub use bw_trace as trace;

/// The commonly used subset of the whole stack, for glob import.
pub mod prelude {
    pub use bw_bfp::{BfpBlock, BfpFormat, BfpMatrix, ErrorStats, F16};
    pub use bw_core::isa::{Chain, Instruction, MemId, Opcode, Program, ProgramBuilder};
    pub use bw_core::{
        analyze, analyze_artifact, analyze_with, artifact_cycle_bounds, cycle_bounds,
        AnalysisOptions, AnalysisReport, Analyzer, ArtifactStage, ArtifactUnit, ArtifactView,
        CycleBounds, DiagCode, Diagnostic, Severity,
    };
    pub use bw_core::{
        ExecMode, HddExpansion, KernelMode, Npu, NpuConfig, RunStats, SimError, SpanCollector,
        SpanKind, SpanRecord,
    };
    pub use bw_dataflow::{ConvCriticalPath, RnnCriticalPath};
    pub use bw_fpga::{Device, ModelRequirements, ResourceEstimate};
    pub use bw_models::{
        table5_suite, BiLstm, Conv1d, Conv1dShape, ConvLayer, ConvShape, Gru, GruWeights, Lstm,
        LstmWeights, Mlp, RnnBenchmark, RnnDims, RnnKind, SpeechModel, SpeechModelShape,
        StreamedConvNet,
    };
    pub use bw_serve::{Server, ServerConfig};
    pub use bw_system::{
        simulate, simulate_pool, ArrivalProcess, LatencySummary, Microservice, Routing,
        ServiceModel,
    };
}
