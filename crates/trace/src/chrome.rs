//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Spans become *complete* events (`"ph":"X"`) with microsecond
//! timestamps derived from simulated cycles at the device clock. Rows are
//! organized the way a deep dive reads best: `pid` is the device ordinal
//! and `tid` is the span lane (pipeline, MVM stream, MFU stream, stalls),
//! so Perfetto shows one process per NPU with parallel tracks for
//! resource activity and exposed stalls. Thread-name metadata events
//! label the lanes.

use bw_core::SpanRecord;

/// One Chrome trace event (the subset of the format this crate emits).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category string.
    pub cat: String,
    /// Phase: `"X"` for complete spans, `"M"` for metadata.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: Option<f64>,
    /// Process id (device ordinal).
    pub pid: u64,
    /// Thread id (span lane).
    pub tid: u64,
    /// Extra `args` fields, rendered as a JSON object of numbers or
    /// strings.
    pub args: Vec<(String, ArgValue)>,
}

/// An `args` entry value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// An integer argument.
    Int(u64),
    /// A string argument.
    Str(String),
}

/// Display names for the lanes assigned by [`SpanKind::lane`] — the
/// mapping itself lives in `bw-core` so every exporter and emitter
/// shares one source of truth.
const LANES: [(u64, &str); 9] = [
    (0, "run"),
    (1, "chains"),
    (2, "mvm stream"),
    (3, "mfu stream"),
    (4, "stalls"),
    (5, "network"),
    (6, "fleet"),
    (7, "slo"),
    (8, "batch"),
];

/// Converts span records into Chrome events. `clock_hz` converts cycles
/// to wall time; `base_ts_us` offsets every timestamp (use 0 for a
/// single run, or a request's admission time when composing a serving
/// timeline). Metadata events naming each device's lanes are included.
pub fn spans_to_chrome(spans: &[SpanRecord], clock_hz: f64, base_ts_us: f64) -> Vec<ChromeEvent> {
    let us_per_cycle = if clock_hz > 0.0 { 1e6 / clock_hz } else { 1.0 };
    let mut out = Vec::with_capacity(spans.len());
    let mut devices: Vec<u64> = Vec::new();
    for s in spans {
        let pid = u64::from(s.device);
        if !devices.contains(&pid) {
            devices.push(pid);
        }
        out.push(ChromeEvent {
            name: s.kind.label().to_owned(),
            cat: "npu".to_owned(),
            ph: 'X',
            ts_us: base_ts_us + s.start_cycle as f64 * us_per_cycle,
            dur_us: Some(s.cycles() as f64 * us_per_cycle),
            pid,
            tid: s.kind.lane(),
            args: vec![
                ("trace_id".to_owned(), ArgValue::Int(s.trace_id)),
                ("chain".to_owned(), ArgValue::Int(s.chain)),
                ("start_cycle".to_owned(), ArgValue::Int(s.start_cycle)),
                ("end_cycle".to_owned(), ArgValue::Int(s.end_cycle)),
            ],
        });
    }
    for pid in devices {
        for (tid, name) in LANES {
            out.push(ChromeEvent {
                name: "thread_name".to_owned(),
                cat: "__metadata".to_owned(),
                ph: 'M',
                ts_us: 0.0,
                dur_us: None,
                pid,
                tid,
                args: vec![("name".to_owned(), ArgValue::Str(name.to_owned()))],
            });
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a non-negative microsecond quantity without float noise.
fn fmt_us(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders events as a Chrome trace JSON document
/// (`{"traceEvents": [...]}`) loadable by Perfetto.
pub fn chrome_trace_json(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            escape(&e.name),
            escape(&e.cat),
            e.ph,
            fmt_us(e.ts_us),
            e.pid,
            e.tid,
        ));
        if let Some(dur) = e.dur_us {
            out.push_str(&format!(",\"dur\":{}", fmt_us(dur)));
        }
        out.push_str(",\"args\":{");
        for (j, (k, v)) in e.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                ArgValue::Int(n) => out.push_str(&format!("\"{}\":{n}", escape(k))),
                ArgValue::Str(s) => out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(s))),
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Validates a Chrome trace JSON document: it must parse, carry a
/// `traceEvents` array, and every event must have the mandatory fields
/// with sane values. Returns the number of *complete* (`"ph":"X"`)
/// spans.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut complete = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        for field in ["name", "pid", "tid"] {
            if e.get(field).is_none() {
                return Err(format!("event {i}: missing `{field}`"));
            }
        }
        if ph == "X" {
            let ts = e
                .get("ts")
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("event {i}: complete event without numeric `ts`"))?;
            let dur = e
                .get("dur")
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("event {i}: complete event without numeric `dur`"))?;
            if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
                return Err(format!("event {i}: non-finite or negative ts/dur"));
            }
            complete += 1;
        }
    }
    Ok(complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_core::{ChainKind, SpanKind};

    fn span(kind: SpanKind, device: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 42,
            device,
            kind,
            chain: 3,
            start_cycle: start,
            end_cycle: end,
        }
    }

    #[test]
    fn spans_render_and_validate() {
        let spans = vec![
            span(SpanKind::Run, 0, 0, 100),
            span(SpanKind::Chain(ChainKind::Mvm), 0, 10, 40),
            span(SpanKind::MvmStream, 0, 10, 30),
            span(SpanKind::DepStall, 1, 5, 10),
        ];
        let events = spans_to_chrome(&spans, 250e6, 0.0);
        let json = chrome_trace_json(&events);
        let complete = validate_chrome_trace(&json).unwrap();
        assert_eq!(complete, 4);
        // 250 MHz -> 4 ns/cycle: the run span is 0.4 µs.
        assert!(json.contains("\"dur\":0.400"), "{json}");
        // Two devices seen -> two sets of lane labels.
        assert_eq!(events.len(), 4 + 2 * LANES.len());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_dur).is_err());
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn lane_labels_cover_every_assigned_lane() {
        // The label table must name exactly the lanes `SpanKind::lane`
        // can assign; a new span kind that grows the lane space without
        // a label here would render on an anonymous track.
        let assigned: std::collections::BTreeSet<u64> = [
            SpanKind::Run,
            SpanKind::Chain(ChainKind::Mvm),
            SpanKind::MvmStream,
            SpanKind::MfuStream,
            SpanKind::DepStall,
            SpanKind::ResourceStall,
            SpanKind::NetTransfer,
            SpanKind::FleetOp,
            SpanKind::SloAlert,
            SpanKind::BatchColumn,
        ]
        .iter()
        .map(|k| k.lane())
        .collect();
        let labeled: std::collections::BTreeSet<u64> = LANES.iter().map(|&(tid, _)| tid).collect();
        assert_eq!(assigned, labeled);
    }

    #[test]
    fn base_offset_shifts_timestamps() {
        let spans = vec![span(SpanKind::Run, 0, 0, 10)];
        let events = spans_to_chrome(&spans, 1e6, 500.0);
        assert_eq!(events[0].ts_us, 500.0);
        assert_eq!(events[0].dur_us, Some(10.0));
    }
}
