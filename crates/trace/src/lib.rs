//! # bw-trace: observability exporters for the Brainwave stack
//!
//! `bw-core` emits structured [`SpanRecord`](bw_core::SpanRecord)s
//! through its [`TraceSink`](bw_core::TraceSink) stream and `bw-serve`
//! attributes them to requests; this crate turns both into the two
//! industry-standard wire formats a performance engineer actually
//! opens:
//!
//! * [`chrome`] — Chrome trace-event JSON, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`, for single-run
//!   deep dives: one row per device and span lane, chain/stream/stall
//!   spans as complete (`"ph":"X"`) events on a microsecond timeline.
//! * [`prom`] — Prometheus text exposition (version 0.0.4): counters,
//!   gauges, and histograms with `_bucket`/`_sum`/`_count` series, as
//!   served by `bw-serve`'s TCP front end.
//!
//! Both modules also ship *validators* ([`chrome::validate_chrome_trace`],
//! [`prom::validate_exposition`]) built on the dependency-free [`json`]
//! parser, so CI can assert that emitted artifacts actually parse — the
//! workspace carries no external JSON or metrics dependency.
//!
//! ## Quickstart
//!
//! ```
//! use bw_core::{SpanKind, SpanRecord};
//! use bw_trace::{chrome_trace_json, spans_to_chrome, validate_chrome_trace};
//!
//! let spans = vec![SpanRecord {
//!     trace_id: 7,
//!     device: 0,
//!     kind: SpanKind::Run,
//!     chain: 0,
//!     start_cycle: 0,
//!     end_cycle: 1_000,
//! }];
//! // 250 MHz: 1000 cycles -> a 4 µs span on the Perfetto timeline.
//! let events = spans_to_chrome(&spans, 250e6, 0.0);
//! let json = chrome_trace_json(&events);
//! assert!(validate_chrome_trace(&json).unwrap() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod prom;

pub use chrome::{chrome_trace_json, spans_to_chrome, validate_chrome_trace, ChromeEvent};
pub use prom::{validate_exposition, Exposition};
