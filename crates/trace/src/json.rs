//! A minimal JSON parser (RFC 8259 subset) used by the exporters'
//! validators.
//!
//! The workspace deliberately carries no external JSON dependency — the
//! snapshot and trace emitters hand-roll their output — so round-trip
//! validation needs a reader on the same terms. This is a straightforward
//! recursive-descent parser producing an owned [`Value`] tree; it accepts
//! everything the workspace emits and the standard surface Perfetto
//! emits back (numbers, strings with escapes, nested arrays/objects).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved; duplicate keys keep the
    /// last occurrence.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(out)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(out)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 from the source slice.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = start + width;
                        let s = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_workspace_snapshot_shape() {
        let v = parse(
            r#"{"models":[{"model":"mlp \"a\"","submitted":3,"latency":{"p99_s":1.5e-3}}],
                "queue_depths":[0,2],"workers_alive":[true,false],"x":null}"#,
        )
        .unwrap();
        let models = v.get("models").unwrap().as_arr().unwrap();
        assert_eq!(models[0].get("model").unwrap().as_str(), Some("mlp \"a\""));
        assert_eq!(models[0].get("submitted").unwrap().as_num(), Some(3.0));
        assert_eq!(
            models[0].get("latency").unwrap().get("p99_s").unwrap(),
            &Value::Num(1.5e-3)
        );
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = parse(r#""tab\there é 😀 ünïcode""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there é 😀 ünïcode"));
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(parse("-12.5e2").unwrap().as_num(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_num(), Some(0.0));
    }
}
