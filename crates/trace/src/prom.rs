//! Prometheus text exposition (format version 0.0.4): a builder for
//! rendering counters, gauges, and histograms, and a line-format
//! validator for round-trip checks in CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builds one exposition document: `# HELP` / `# TYPE` headers followed
/// by sample lines, in the order families are added.
#[derive(Debug, Default)]
pub struct Exposition {
    buf: String,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "bad metric name {name}");
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Starts a counter family.
    pub fn counter(&mut self, name: &str, help: &str) {
        self.header(name, help, "counter");
    }

    /// Starts a gauge family.
    pub fn gauge(&mut self, name: &str, help: &str) {
        self.header(name, help, "gauge");
    }

    /// Adds one sample line to the most recently started family.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(
            self.buf,
            "{name}{} {}",
            render_labels(labels),
            fmt_value(value)
        );
    }

    /// Starts a histogram family and renders one labeled series:
    /// cumulative `(upper_bound, count)` buckets (an implicit `+Inf`
    /// bucket equal to `count` is appended), then `_sum` and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        self.header(name, help, "histogram");
        self.histogram_series(name, labels, buckets, sum, count);
    }

    /// Renders one additional labeled series under an already-started
    /// histogram family.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        for &(le, c) in buckets {
            let le = fmt_value(le);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", le.as_str()));
            let _ = writeln!(self.buf, "{name}_bucket{} {c}", render_labels(&with_le));
        }
        let mut inf: Vec<(&str, &str)> = labels.to_vec();
        inf.push(("le", "+Inf"));
        let _ = writeln!(self.buf, "{name}_bucket{} {count}", render_labels(&inf));
        let _ = writeln!(
            self.buf,
            "{name}_sum{} {}",
            render_labels(labels),
            fmt_value(sum)
        );
        let _ = writeln!(self.buf, "{name}_count{} {count}", render_labels(labels));
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: `{line}`");
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or_else(|| err("sample without value"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        let base = name_end + 1;
        loop {
            // Label name up to '='.
            let start = match chars.peek() {
                Some(&(i, '}')) => {
                    chars.next();
                    break &line[base + i + 1..];
                }
                Some(&(i, _)) => i,
                None => return Err(err("unterminated label set")),
            };
            let mut eq = None;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
            }
            let eq = eq.ok_or_else(|| err("label without `=`"))?;
            let lname = &line[base + start..base + eq];
            if !valid_name(lname) {
                return Err(err("invalid label name"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(err("label value must be quoted")),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        _ => return Err(err("bad escape in label value")),
                    },
                    Some((_, '"')) => break,
                    Some((_, c)) => value.push(c),
                    None => return Err(err("unterminated label value")),
                }
            }
            labels.push((lname.to_owned(), value));
            match chars.next() {
                Some((_, ',')) => {}
                Some((i, '}')) => break &line[base + i + 1..],
                _ => return Err(err("expected `,` or `}` after label")),
            }
        }
    } else {
        &line[name_end..]
    };
    let mut tokens = rest.split_ascii_whitespace();
    let value = tokens.next().ok_or_else(|| err("missing value"))?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| err("value is not a number"))?,
    };
    // An optional integer timestamp may follow; anything else is junk.
    if let Some(ts) = tokens.next() {
        if ts.parse::<i64>().is_err() {
            return Err(err("trailing junk after value"));
        }
    }
    if tokens.next().is_some() {
        return Err(err("trailing junk after timestamp"));
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn base_name<'a>(name: &'a str, suffix: &str) -> Option<&'a str> {
    name.strip_suffix(suffix)
}

/// Validates a text exposition document: header grammar, sample-line
/// grammar, types declared before use, and histogram coherence (buckets
/// cumulative and non-decreasing in `le`, `+Inf` bucket equal to
/// `_count`). Returns the number of sample lines.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or(format!("line {lineno}: HELP without name"))?;
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: HELP with invalid name `{name}`"));
                    }
                }
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without name"))?;
                    let kind = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without kind"))?;
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: TYPE with invalid name `{name}`"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE `{kind}`"));
                    }
                    types.insert(name.to_owned(), kind.to_owned());
                }
                _ => {} // free-form comment: legal
            }
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }

    // Histogram coherence: group bucket series by (family, labels\le).
    type SeriesKey = (String, String);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for s in &samples {
        let family = |suffix: &str| -> Option<String> {
            base_name(&s.name, suffix)
                .filter(|b| types.get(*b).is_some_and(|t| t == "histogram"))
                .map(str::to_owned)
        };
        if let Some(fam) = family("_bucket") {
            let mut le = None;
            let mut rest: Vec<String> = Vec::new();
            for (k, v) in &s.labels {
                if k == "le" {
                    le = Some(match v.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse::<f64>()
                            .map_err(|_| format!("`{fam}`: bucket with bad le `{v}`"))?,
                    });
                } else {
                    rest.push(format!("{k}={v}"));
                }
            }
            let le = le.ok_or(format!("`{fam}`: bucket without le label"))?;
            buckets
                .entry((fam, rest.join(",")))
                .or_default()
                .push((le, s.value));
        } else if let Some(fam) = family("_count") {
            let rest: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert((fam, rest.join(",")), s.value);
        }
    }
    for ((fam, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le values are not NaN"));
        let mut prev = f64::NEG_INFINITY;
        for &(_, count) in &series {
            if count < prev {
                return Err(format!(
                    "`{fam}{{{labels}}}`: bucket counts decrease with le"
                ));
            }
            prev = count;
        }
        let last = series.last().expect("grouped series is non-empty");
        if !last.0.is_infinite() {
            return Err(format!("`{fam}{{{labels}}}`: missing +Inf bucket"));
        }
        if let Some(count) = counts.get(&(fam.clone(), labels.clone())) {
            if (last.1 - count).abs() > 0.0 {
                return Err(format!(
                    "`{fam}{{{labels}}}`: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
        } else {
            return Err(format!("`{fam}{{{labels}}}`: missing _count"));
        }
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut e = Exposition::new();
        e.counter("bw_requests_total", "Requests admitted.");
        e.sample("bw_requests_total", &[("model", "mlp \"a\"")], 42.0);
        e.gauge("bw_worker_alive", "Liveness per worker.");
        e.sample("bw_worker_alive", &[("worker", "0")], 1.0);
        e.sample("bw_worker_alive", &[("worker", "1")], 0.0);
        let text = e.finish();
        assert_eq!(validate_exposition(&text), Ok(3));
        assert!(text.contains("bw_requests_total{model=\"mlp \\\"a\\\"\"} 42"));
        assert!(text.contains("# TYPE bw_worker_alive gauge"));
    }

    #[test]
    fn histograms_render_cumulative_and_coherent() {
        let mut e = Exposition::new();
        e.histogram(
            "bw_latency_seconds",
            "End-to-end latency.",
            &[("model", "m")],
            &[(0.001, 3), (0.01, 7), (0.1, 9)],
            0.05,
            9,
        );
        let text = e.finish();
        assert_eq!(validate_exposition(&text), Ok(6));
        assert!(text.contains("bw_latency_seconds_bucket{model=\"m\",le=\"+Inf\"} 9"));
        assert!(text.contains("bw_latency_seconds_count{model=\"m\"} 9"));
    }

    #[test]
    fn validator_rejects_incoherent_histograms() {
        let decreasing = "# TYPE h histogram\n\
                          h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                          h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(decreasing).is_err());
        let bad_inf = "# TYPE h histogram\n\
                       h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n";
        assert!(validate_exposition(bad_inf).is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(no_inf).is_err());
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "m{label} 3",
            "m{l=\"v\"",
            "m{l=\"v\"} not_a_number",
            "m 1 2 3",
            "# TYPE m rainbow",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
        // Free-form comments and blank lines are fine.
        assert_eq!(validate_exposition("# a comment\n\nm 3\n"), Ok(1));
    }
}
