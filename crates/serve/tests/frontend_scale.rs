//! Scale and backpressure properties of the readiness-loop front end:
//! thousands of idle connections must not cost threads, and a slow
//! reader must stall only its own connection — partial writes leave the
//! residue buffered, never dropped, never reordered.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{
    read_frame, write_frame, Server, TcpClient, TcpFrontend, TcpFrontendConfig, WireRequest,
    WireResponse,
};

const DEADLINE: Duration = Duration::from_secs(10);

#[cfg(target_os = "linux")]
fn threads_now() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

#[cfg(target_os = "linux")]
fn fd_soft_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3)?.parse().ok())
        })
        .unwrap_or(1024)
}

/// Thousands of concurrent idle connections, zero additional threads:
/// the readiness loop multiplexes them all, and the front end stays
/// live for real traffic underneath the idle mass. Both endpoints of
/// every connection live in this process, so the connection count is
/// clamped to half the fd limit; at the default CI limit that is ~10k
/// sockets held open at once.
#[cfg(target_os = "linux")]
#[test]
fn idle_connection_mass_needs_no_per_connection_threads() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 2))
        .spawn()
        .unwrap();
    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();

    // Each in-process connection consumes two fds (client end + server
    // end); leave slack for the server's own descriptors.
    let conns = ((fd_soft_limit().saturating_sub(200)) / 2).min(10_000);
    assert!(
        conns >= 2_000,
        "fd limit too low to make this test meaningful: {conns}"
    );

    let baseline = threads_now();
    let mut idle = Vec::with_capacity(conns);
    for i in 0..conns {
        idle.push(TcpStream::connect(frontend.addr()).unwrap());
        // Pace the connect storm below the accept drain rate so the
        // listener backlog never overflows into SYN retransmits.
        if i % 256 == 255 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    // Give the loops a tick to register the last accepts.
    std::thread::sleep(Duration::from_millis(100));

    let after = threads_now();
    assert!(
        after <= baseline + 2,
        "idle connections must not spawn threads: {baseline} -> {after} with {conns} conns"
    );

    // The front end still serves under the idle mass.
    let mut client = TcpClient::connect(frontend.addr()).unwrap();
    let resp = client.call("mlp", &demo_input(16, 1), DEADLINE).unwrap();
    assert_eq!(resp.output.len(), 8);

    drop(idle);
    frontend.shutdown();
}

/// A client that pipelines hundreds of requests and reads nothing forces
/// the kernel buffers full: the front end's write path must absorb the
/// partial writes and `WouldBlock`s, keep the residue buffered, and
/// deliver every response — in request order, bit-identical — once the
/// reader finally drains.
#[test]
fn slow_reader_sees_backpressure_not_lost_or_reordered_frames() {
    let server = Server::builder()
        .model(mlp_artifact("wide", &[16, 512], 4))
        .spawn()
        .unwrap();
    // A single event loop so one stalled connection demonstrably cannot
    // wedge the loop it lives on.
    let frontend = TcpFrontend::bind_with(
        &server,
        "127.0.0.1:0",
        TcpFrontendConfig {
            event_loops: 1,
            ..TcpFrontendConfig::default()
        },
    )
    .unwrap();

    let reference: Vec<Vec<f32>> = (0..512u64)
        .map(|i| {
            server
                .client()
                .call("wide", &demo_input(16, i), DEADLINE)
                .unwrap()
                .output
        })
        .collect();

    // Pipeline 512 requests (~2 KiB of response each, ~1 MiB total)
    // without reading a byte back.
    let mut stream = TcpStream::connect(frontend.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for i in 0..512u64 {
        let req = WireRequest::Infer {
            model: "wide".into(),
            deadline_us: DEADLINE.as_micros() as u64,
            input: demo_input(16, i),
        };
        write_frame(&mut stream, &req.encode()).unwrap();
    }
    stream.flush().unwrap();

    // Let responses pile up against the unread socket: the kernel
    // buffers fill and the front end's wbuf takes the overflow.
    std::thread::sleep(Duration::from_millis(300));

    // While this connection is stalled, a second client on the same
    // (single) event loop must still get served.
    let mut other = TcpClient::connect(frontend.addr()).unwrap();
    let resp = other.call("wide", &demo_input(16, 0), DEADLINE).unwrap();
    assert_eq!(resp.output, reference[0]);

    // Now drain slowly; every response arrives, in order, intact.
    for (i, expected) in reference.iter().enumerate() {
        let payload = read_frame(&mut stream)
            .unwrap()
            .unwrap_or_else(|| panic!("connection closed early at response {i}"));
        match WireResponse::decode(&payload).unwrap() {
            WireResponse::Infer { output, .. } => {
                assert_eq!(&output, expected, "response {i} corrupted or reordered");
            }
            other => panic!("response {i}: unexpected frame {other:?}"),
        }
        if i % 64 == 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let m = server.metrics();
    assert_eq!(m.models[0].completed, 512 + 512 + 1);
    frontend.shutdown();
}

/// A framing error terminates the connection with one final `Error`
/// frame — but only after the responses already owed have been
/// delivered in order.
#[test]
fn framing_error_drains_owed_responses_before_the_goodbye_frame() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 6))
        .spawn()
        .unwrap();
    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();

    let mut stream = TcpStream::connect(frontend.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    // Two valid requests, then garbage with an honest length prefix.
    for i in 0..2u64 {
        let req = WireRequest::Infer {
            model: "mlp".into(),
            deadline_us: DEADLINE.as_micros() as u64,
            input: demo_input(16, i),
        };
        write_frame(&mut stream, &req.encode()).unwrap();
    }
    write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();

    for i in 0..2 {
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(
            matches!(
                WireResponse::decode(&payload).unwrap(),
                WireResponse::Infer { .. }
            ),
            "owed response {i} must arrive before the error frame"
        );
    }
    let payload = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        WireResponse::decode(&payload).unwrap(),
        WireResponse::Error(_)
    ));
    // Then the server closes.
    assert!(read_frame(&mut stream).unwrap().is_none());
    frontend.shutdown();
}
