//! End-to-end tracing: one served request must be traceable from the TCP
//! client down to the NPU chains — attribution on the response, counters
//! in the metrics snapshot, a Prometheus exposition that validates, and a
//! Perfetto span tree — all reconciling with the accelerator's own
//! `RunStats`.

use std::time::Duration;

use bw_core::SpanKind;
use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{Server, TcpClient, TcpFrontend};
use bw_trace::{chrome_trace_json, spans_to_chrome, validate_chrome_trace, validate_exposition};

#[test]
fn one_request_traces_end_to_end() {
    let artifact = mlp_artifact("mlp", &[16, 32, 8], 7);
    // Reference run on a locally pinned instance: the served request must
    // attribute exactly these counters (same firmware, same input).
    let (_, want) = artifact
        .pin()
        .unwrap()
        .infer_with_stats(&demo_input(16, 0))
        .unwrap();
    assert!(want.cycles > 0 && want.mvm_macs > 0);

    let server = Server::builder()
        .model(artifact)
        .replicas(1)
        .trace_sample(1)
        .spawn()
        .unwrap();
    let client = server.client();
    let resp = client
        .call("mlp", &demo_input(16, 0), Duration::from_secs(10))
        .unwrap();

    // 1. The response's attribution carries the NPU counters.
    let a = resp.attribution;
    assert_eq!(a.npu_cycles, want.cycles);
    assert_eq!(a.npu_macs, want.mvm_macs);
    assert_eq!(a.dep_stall_cycles, want.dep_stall_cycles);
    assert_eq!(a.resource_stall_cycles, want.resource_stall_cycles);
    assert!(a.service > Duration::ZERO);
    // Queue wait + service cannot exceed the end-to-end latency by more
    // than scheduling noise; they are measured inside it.
    assert!(a.queue_wait + a.service <= resp.latency + Duration::from_millis(5));

    // 2. The metrics snapshot attributes the same counters per model.
    let snap = client.metrics();
    let m = &snap.models[0];
    assert_eq!(m.npu_cycles, want.cycles);
    assert_eq!(m.npu_macs, want.mvm_macs);
    assert_eq!(m.npu_dep_stall_cycles, want.dep_stall_cycles);
    assert_eq!(m.npu_resource_stall_cycles, want.resource_stall_cycles);
    assert_eq!(m.queue_wait.count, 1);
    assert_eq!(m.service.count, 1);
    let json = snap.to_json();
    assert!(json.contains("\"npu_cycles\""));
    assert!(json.contains("\"queue_wait\""));

    // 3. The Prometheus exposition validates and shows the counters.
    let prom = server.prometheus();
    validate_exposition(&prom).expect("valid exposition");
    assert!(prom.contains(&format!(
        "bw_npu_cycles_total{{model=\"mlp\"}} {}",
        want.cycles
    )));
    assert!(prom.contains(&format!(
        "bw_npu_macs_total{{model=\"mlp\"}} {}",
        want.mvm_macs
    )));
    assert!(prom.contains("bw_request_queue_wait_seconds_count{model=\"mlp\"} 1"));
    assert!(prom.contains("bw_request_service_seconds_count{model=\"mlp\"} 1"));

    // 4. The sampled trace's span tree reconciles with the stats and
    //    exports to a valid Perfetto document.
    let traces = server.take_traces();
    assert_eq!(traces.len(), 1);
    let t = &traces[0];
    assert_eq!(t.request_id, resp.request_id);
    assert_eq!(t.trace_id, resp.request_id);
    assert_eq!(t.model, "mlp");
    assert_eq!(t.worker, resp.worker);
    assert_eq!(t.attribution, a);
    assert!(t.spans.iter().all(|s| s.trace_id == resp.request_id));
    let run_cycles: u64 = t
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Run)
        .map(|s| s.cycles())
        .sum();
    assert_eq!(run_cycles, t.stats.cycles);
    assert_eq!(t.stats.cycles, want.cycles);
    let chain_count = t
        .spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Chain(_)))
        .count() as u64;
    assert_eq!(chain_count, t.stats.chains);

    let events = spans_to_chrome(&t.spans, 250e6, 0.0);
    let doc = chrome_trace_json(&events);
    let complete = validate_chrome_trace(&doc).expect("valid chrome trace");
    assert!(complete as u64 > t.stats.chains);

    // Draining empties the log.
    assert!(server.take_traces().is_empty());
}

#[test]
fn attribution_flows_over_the_tcp_wire() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(1)
        .spawn()
        .unwrap();
    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(frontend.addr()).unwrap();

    let resp = client
        .call("mlp", &demo_input(16, 0), Duration::from_secs(10))
        .unwrap();
    assert!(resp.attribution.npu_cycles > 0);
    assert!(resp.attribution.npu_macs > 0);
    assert!(resp.attribution.service > Duration::ZERO);

    // The Prometheus endpoint round-trips the wire and validates.
    let prom = client.prometheus().unwrap();
    let samples = validate_exposition(&prom).expect("valid exposition over tcp");
    assert!(samples > 0);
    assert!(prom.contains("bw_requests_completed_total{model=\"mlp\"} 1"));
    assert!(prom.contains(&format!(
        "bw_npu_cycles_total{{model=\"mlp\"}} {}",
        resp.attribution.npu_cycles
    )));
}

#[test]
fn tracing_disabled_collects_nothing_but_still_attributes() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(1)
        .spawn()
        .unwrap();
    assert_eq!(server.config().trace_sample, 0);
    let client = server.client();
    let resp = client
        .call("mlp", &demo_input(16, 0), Duration::from_secs(10))
        .unwrap();
    // Counters still attribute with sampling off...
    assert!(resp.attribution.npu_cycles > 0);
    assert!(client.metrics().models[0].npu_cycles > 0);
    // ...but no span traces are collected.
    assert!(server.take_traces().is_empty());
}
