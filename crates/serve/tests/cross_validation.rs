//! Cross-validation: the analytical serving simulator (`bw-system`) and
//! the live runtime (`bw-serve`) must agree on the same serving point.
//!
//! Protocol (recorded in EXPERIMENTS.md):
//! 1. measure the warm batch-1 service time `s` of the demo model on a
//!    private replica — this is the ground truth both sides share;
//! 2. pick a Poisson rate for ~30% utilization of a 1-replica pool
//!    (1 replica because CI machines may have a single core, where a
//!    multi-worker pool has no real parallel capacity for the analytical
//!    model to be right about);
//! 3. run the same (model, rate, policy) point through
//!    `bw_system::simulate_pool` and a live `bw-serve` pool under the
//!    open-loop load generator;
//! 4. require order-of-magnitude agreement on p99 and mean: the live
//!    runtime carries OS scheduling jitter the discrete-event model does
//!    not, so the tolerance is a wide ratio band — wide enough for noisy
//!    single-core CI, tight enough to catch unit mistakes, double
//!    counting, or a broken queueing model (which show up as 10x-100x).

use std::time::{Duration, Instant};

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{run_loadgen, ArrivalProcess, LoadgenConfig, Routing, Server};
use bw_system::{simulate_pool, Microservice, ServiceModel};

const MODEL: &str = "xval-mlp";
const WIDTHS: &[usize] = &[32, 128, 64, 32];
const SEED: u64 = 29;
const UTILIZATION: f64 = 0.3;
const REQUESTS: usize = 80;

#[test]
fn live_pool_p99_tracks_the_analytical_simulator() {
    // 1. Ground-truth service time on a private replica of the same
    //    artifact (warm: the first inference pays one-time costs).
    let probe = mlp_artifact(MODEL, WIDTHS, SEED);
    let mut pinned = probe.pin().unwrap();
    let input = demo_input(probe.input_dim(), 0);
    pinned.infer(&input).unwrap();
    let t0 = Instant::now();
    let probes = 12;
    for _ in 0..probes {
        pinned.infer(&input).unwrap();
    }
    let service_s = t0.elapsed().as_secs_f64() / f64::from(probes);
    assert!(service_s > 0.0);

    // 2. The shared serving point.
    let rate = UTILIZATION / service_s;
    let arrivals = ArrivalProcess::Poisson { rate_per_s: rate };

    // 3a. Analytical prediction.
    let pool = [Microservice {
        service: ServiceModel::PerRequest { seconds: service_s },
        servers: 1,
        network_hop_s: 0.0,
    }];
    let offsets = arrivals.generate(REQUESTS, SEED);
    let predicted = simulate_pool(&offsets, &pool, Routing::RoundRobin, SEED);

    // 3b. Live measurement.
    let server = Server::builder()
        .model(mlp_artifact(MODEL, WIDTHS, SEED))
        .replicas(1)
        .queue_cap(64)
        .policy(Routing::RoundRobin)
        .spawn()
        .unwrap();
    let measured = run_loadgen(
        &server.client(),
        &LoadgenConfig {
            model: MODEL.to_owned(),
            arrivals,
            requests: REQUESTS,
            deadline: Duration::from_secs(30),
            seed: SEED,
            schedule: None,
        },
    );

    // Low load with a deep queue and a long deadline: nothing sheds.
    assert_eq!(measured.completed, REQUESTS as u64, "{measured:?}");
    assert_eq!(measured.shed + measured.failed + measured.rejected, 0);

    // 4. Agreement bands.
    let p99_ratio = measured.latency.p99_s / predicted.p99_latency_s.max(1e-12);
    let mean_ratio = measured.latency.mean_s / predicted.mean_latency_s.max(1e-12);
    eprintln!(
        "service {:.1} µs, rate {:.0} rps; p99 live {:.1} µs vs analytical {:.1} µs (x{:.2}); \
         mean live {:.1} µs vs analytical {:.1} µs (x{:.2})",
        service_s * 1e6,
        rate,
        measured.latency.p99_s * 1e6,
        predicted.p99_latency_s * 1e6,
        p99_ratio,
        measured.latency.mean_s * 1e6,
        predicted.mean_latency_s * 1e6,
        mean_ratio,
    );
    assert!(
        (0.2..10.0).contains(&p99_ratio),
        "live p99 {:.1} µs diverges from analytical {:.1} µs (x{:.2})",
        measured.latency.p99_s * 1e6,
        predicted.p99_latency_s * 1e6,
        p99_ratio
    );
    assert!(
        (0.2..10.0).contains(&mean_ratio),
        "live mean {:.1} µs diverges from analytical {:.1} µs (x{:.2})",
        measured.latency.mean_s * 1e6,
        predicted.mean_latency_s * 1e6,
        mean_ratio
    );
    // The live mean can't beat physics: it includes the full service time.
    assert!(measured.latency.mean_s >= service_s * 0.5);
}
