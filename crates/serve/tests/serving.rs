//! End-to-end serving tests: the full registry → router → worker
//! lifecycle against live simulated NPUs, including the fault-injection
//! acceptance scenario.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{Routing, ServeError, Server, SpawnError};

const DEADLINE: Duration = Duration::from_secs(10);

#[test]
fn serves_correct_outputs_against_reference() {
    let artifact = mlp_artifact("mlp", &[16, 32, 8], 7);
    // Ground truth from a privately pinned replica of the same artifact.
    let expected = artifact.pin().unwrap().infer(&demo_input(16, 3)).unwrap();

    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(3)
        .spawn()
        .unwrap();
    let client = server.client();
    // Every replica serves the bit-identical result: same firmware, same
    // BFP weights, same fast kernels.
    for _ in 0..6 {
        let resp = client.call("mlp", &demo_input(16, 3), DEADLINE).unwrap();
        assert_eq!(resp.output, expected);
    }
    let m = server.metrics();
    assert_eq!(m.models[0].submitted, 6);
    assert_eq!(m.models[0].completed, 6);
    assert_eq!(m.models[0].shed + m.models[0].failed, 0);
}

#[test]
fn multiple_models_share_the_pool() {
    let server = Server::builder()
        .model(mlp_artifact("small", &[16, 8], 1))
        .model(mlp_artifact("wide", &[32, 48, 16], 2))
        .replicas(2)
        .spawn()
        .unwrap();
    let client = server.client();
    assert_eq!(client.model_names(), vec!["small", "wide"]);
    let a = client.call("small", &demo_input(16, 0), DEADLINE).unwrap();
    let b = client.call("wide", &demo_input(32, 0), DEADLINE).unwrap();
    assert_eq!(a.output.len(), 8);
    assert_eq!(b.output.len(), 16);
}

#[test]
fn admission_rejects_bad_requests_without_counting_them() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 1))
        .spawn()
        .unwrap();
    let client = server.client();
    assert!(matches!(
        client.call("nope", &demo_input(16, 0), DEADLINE),
        Err(ServeError::UnknownModel(_))
    ));
    assert!(matches!(
        client.call("mlp", &demo_input(7, 0), DEADLINE),
        Err(ServeError::BadInput {
            expected: 16,
            got: 7
        })
    ));
    let m = server.metrics();
    assert_eq!(m.models[0].submitted, 0, "rejections are not admissions");
}

#[test]
fn saturation_sheds_instead_of_queueing_unboundedly() {
    // One replica, a 1-deep queue: blasting requests concurrently must
    // shed some while every admitted request still settles.
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 32, 8], 5))
        .replicas(1)
        .queue_cap(1)
        .max_retries(0)
        .spawn()
        .unwrap();
    let client = server.client();

    let shed = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..32)
        .map(|i| {
            let client = client.clone();
            let shed = Arc::clone(&shed);
            let done = Arc::clone(&done);
            std::thread::spawn(
                move || match client.call("mlp", &demo_input(16, i), DEADLINE) {
                    Ok(_) => {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        assert!(e.is_shed(), "unexpected error under saturation: {e}");
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                },
            )
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = server.metrics();
    let ms = &m.models[0];
    assert!(ms.shed > 0, "a 1-deep queue under a 32-way blast must shed");
    assert!(ms.completed > 0, "admitted work still completes");
    assert_eq!(ms.completed + ms.shed + ms.failed, ms.submitted);
    assert_eq!(ms.completed, done.load(Ordering::Relaxed));
    assert_eq!(ms.shed, shed.load(Ordering::Relaxed));
}

#[test]
fn tight_deadlines_fail_explicitly() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 5))
        .replicas(1)
        .spawn()
        .unwrap();
    let client = server.client();
    // A zero-ish deadline is provably unmeetable — the static cycle
    // lower bound alone exceeds it — so admission rejects it typed,
    // before it is counted as submitted.
    let bound = client
        .static_bound_us("mlp")
        .expect("mlp has a provable bound");
    let err = client
        .call("mlp", &demo_input(16, 0), Duration::from_nanos(1))
        .unwrap_err();
    match err {
        ServeError::SlaUnmeetable {
            ref model,
            bound_us,
            budget_us,
        } => {
            assert_eq!(model, "mlp");
            assert_eq!(bound_us, bound);
            assert_eq!(budget_us, 0);
        }
        other => panic!("expected a typed SLA rejection, got {other}"),
    }
    assert!(!err.was_admitted());
    let m = server.metrics();
    assert_eq!(m.models[0].submitted, 0, "rejected before admission");
    assert_eq!(m.models[0].failed, 0);
    assert_eq!(m.models[0].completed, 0);
}

#[test]
fn declared_sla_budgets_gate_registration() {
    // A budget below the model's static lower bound is refused at spawn:
    // the registry will not pin a model it can prove is always late.
    let spawn = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 5))
        .sla_budget("mlp", Duration::from_nanos(1))
        .replicas(1)
        .spawn();
    match spawn {
        Err(SpawnError::SlaUnmeetable {
            model,
            bound_us,
            budget_us,
        }) => {
            assert_eq!(model, "mlp");
            assert!(bound_us > 0);
            assert_eq!(budget_us, 0);
        }
        Err(other) => panic!("expected an SLA spawn refusal, got {other}"),
        Ok(_) => panic!("a provably-late model must not spawn"),
    }

    // A generous budget spawns, and the admitted bound is the one the
    // gate compared against.
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 5))
        .sla_budget("mlp", Duration::from_secs(1))
        .replicas(1)
        .spawn()
        .unwrap();
    let bound = server.client().static_bound_us("mlp").unwrap();
    assert!(bound > 0 && bound <= 1_000_000);

    // Budgets for names nobody registered are a configuration error.
    let spawn = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 3))
        .sla_budget("ghost", Duration::from_secs(1))
        .replicas(1)
        .spawn();
    match spawn {
        Err(SpawnError::BadConfig(_)) => {}
        Err(other) => panic!("expected a config error, got {other}"),
        Ok(_) => panic!("a budget for an unregistered model must not spawn"),
    }
}

/// The acceptance scenario: one worker killed mid-run with deadlines set.
/// Every request either completes on a replica (failover) or fails/sheds
/// with an explicit error — no hangs, no panics — and the metrics account
/// for every admitted request.
#[test]
fn killed_worker_mid_run_loses_no_request() {
    let server = Arc::new(
        Server::builder()
            .model(mlp_artifact("mlp", &[16, 32, 8], 9))
            .replicas(3)
            .queue_cap(8)
            .policy(Routing::RoundRobin)
            .max_retries(2)
            .spawn()
            .unwrap(),
    );
    let client = server.client();

    let total: u64 = 60;
    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            // Let some requests land first, then kill worker 0 mid-run.
            std::thread::sleep(Duration::from_millis(5));
            assert!(server.kill_worker(0));
        })
    };

    let outcomes: Vec<_> = (0..total)
        .map(|i| {
            let client = client.clone();
            std::thread::spawn(move || {
                client.call("mlp", &demo_input(16, i), Duration::from_secs(10))
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut with_retries = 0u64;
    let mut errored = 0u64;
    for h in outcomes {
        // A hung request would hang this join; the 10 s deadline bounds it.
        match h.join().expect("request threads must not panic") {
            Ok(resp) => {
                completed += 1;
                if resp.retries > 0 {
                    with_retries += 1;
                }
                assert_eq!(resp.output.len(), 8);
            }
            Err(e) => {
                // Explicit, classified errors only.
                assert!(
                    matches!(
                        e,
                        ServeError::Shed { .. }
                            | ServeError::DeadlineExceeded { .. }
                            | ServeError::WorkerFault { .. }
                            | ServeError::NoReplica { .. }
                    ),
                    "unclassified failure: {e}"
                );
                errored += 1;
            }
        }
    }
    killer.join().unwrap();

    assert_eq!(completed + errored, total);
    assert!(completed > 0, "replicas must absorb the load");

    let m = server.metrics();
    let ms = &m.models[0];
    assert_eq!(ms.submitted, total);
    assert_eq!(
        ms.completed + ms.shed + ms.failed,
        ms.submitted,
        "metrics must account for every admitted request: {ms:?}"
    );
    assert_eq!(ms.completed, completed);
    assert!(!m.workers_alive[0], "worker 0 stays dead");
    assert!(m.workers_alive[1] && m.workers_alive[2]);
    // Requests queued on the killed worker failed over; under round-robin
    // at least some must have retried (not a hard guarantee per-run, so
    // only assert the counter is consistent).
    assert!(ms.retries >= with_retries);
}

#[test]
fn killing_every_worker_yields_no_replica_not_a_hang() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 1))
        .replicas(2)
        .spawn()
        .unwrap();
    server.kill_worker(0);
    server.kill_worker(1);
    let err = server
        .client()
        .call("mlp", &demo_input(16, 0), DEADLINE)
        .unwrap_err();
    assert!(matches!(err, ServeError::NoReplica { .. }), "got {err}");
    let m = server.metrics();
    assert_eq!(m.models[0].failed, 1);
    assert_eq!(m.models[0].submitted, 1);
}

#[test]
fn dropped_pending_counts_as_failed() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 1))
        .spawn()
        .unwrap();
    let client = server.client();
    let pending = client.submit("mlp", &demo_input(16, 0), DEADLINE).unwrap();
    drop(pending);
    let m = server.metrics();
    assert_eq!(m.models[0].submitted, 1);
    assert_eq!(m.models[0].failed, 1);
    assert_eq!(
        m.models[0].completed + m.models[0].shed + m.models[0].failed,
        m.models[0].submitted
    );
}

#[test]
fn metrics_json_is_well_formed_enough_to_grep() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 1))
        .spawn()
        .unwrap();
    let client = server.client();
    client.call("mlp", &demo_input(16, 0), DEADLINE).unwrap();
    let json = server.metrics().to_json();
    assert!(json.contains("\"model\":\"mlp\""));
    assert!(json.contains("\"completed\":1"));
    assert!(json.contains("\"queue_depths\""));
    assert!(json.contains("\"workers_alive\""));
}
