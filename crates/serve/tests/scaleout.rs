//! Scale-out acceptance tests: network-partitioned models served across
//! cooperating workers (§II-A's spatially distributed hardware
//! microservices).
//!
//! The scenarios: a model whose weights genuinely overflow one device's
//! MRF serves across shard workers bit-identically to a single-device
//! reference; a shard-owning worker killed mid-run never hangs or
//! double-counts a request; a non-ideal network shifts measured latency
//! and shows up in the per-link counters.

use std::sync::Arc;
use std::time::Duration;

use bw_bfp::BfpFormat;
use bw_core::NpuConfig;
use bw_gir::{LowerOptions, ModelArtifact, ShardedArtifact};
use bw_serve::demo::{demo_input, mlp_graph};
use bw_serve::{NetworkModel, ServeError, Server};

const DEADLINE: Duration = Duration::from_secs(10);
const WIDTHS: &[usize] = &[64, 256, 32];
const SEED: u64 = 11;
/// Per-worker weight budget: splits the 256x64 hidden layer in two.
const BUDGET: u64 = 8192;

/// A deliberately small device: 64 MRF tiles = 16,384 weights, less than
/// the demo model's 24,576 — the unsharded model cannot pin.
fn small_config() -> NpuConfig {
    NpuConfig::builder()
        .name("BW_SMALL")
        .native_dim(16)
        .lanes(4)
        .tile_engines(2)
        .mrf_entries(64)
        .vrf_entries(512)
        .clock_mhz(250.0)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()
        .unwrap()
}

/// The same device with an MRF big enough to hold the whole model — the
/// single-device reference. MRF capacity does not affect numerics, so
/// outputs must match the sharded pool bit for bit.
fn big_config() -> NpuConfig {
    NpuConfig::builder()
        .name("BW_BIG")
        .native_dim(16)
        .lanes(4)
        .tile_engines(2)
        .mrf_entries(2048)
        .vrf_entries(512)
        .clock_mhz(250.0)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()
        .unwrap()
}

fn sharded() -> ShardedArtifact {
    ShardedArtifact::compile(
        "big",
        &mlp_graph(WIDTHS, SEED),
        BUDGET,
        &small_config(),
        &LowerOptions::default(),
    )
    .unwrap()
}

/// Single-device ground truth on the big-MRF device.
fn reference_output(input: &[f32]) -> Vec<f32> {
    ModelArtifact::compile(
        "ref",
        &mlp_graph(WIDTHS, SEED),
        1 << 24,
        &big_config(),
        &LowerOptions::default(),
    )
    .unwrap()
    .pin()
    .unwrap()
    .infer(input)
    .unwrap()
}

#[test]
fn oversized_model_serves_sharded_bit_identical_to_single_device() {
    // The premise: this model genuinely does not fit one small device —
    // the toolflow linter rejects the unsharded build for MRF overflow.
    assert!(
        ModelArtifact::compile(
            "whole",
            &mlp_graph(WIDTHS, SEED),
            1 << 24,
            &small_config(),
            &LowerOptions::default(),
        )
        .is_err(),
        "the unsharded model must overflow the small device's MRF"
    );

    let artifact = sharded();
    assert!(artifact.is_sharded());
    assert!(artifact.max_width() >= 2, "at least two shard workers");

    let server = Server::builder()
        .sharded_model(artifact)
        .replicas(4)
        .spawn()
        .unwrap();
    let client = server.client();
    assert_eq!(client.input_dim_of("big"), Some(WIDTHS[0]));
    assert!(client.model_names().contains(&"big".to_owned()));

    let input = demo_input(WIDTHS[0], 3);
    let expected = reference_output(&input);
    for _ in 0..4 {
        let resp = client.call("big", &input, DEADLINE).unwrap();
        assert_eq!(
            resp.output, expected,
            "sharded serving must be bit-identical to single-device"
        );
    }

    // The group row accounts like a single model; member rows exist and
    // hold their own identity.
    let m = server.metrics();
    let group = m.models.iter().find(|r| r.model == "big").unwrap();
    assert_eq!(group.submitted, 4);
    assert_eq!(group.completed, 4);
    assert_eq!(group.shed + group.failed, 0);
    for member in ["big#g0s0", "big#g0s1"] {
        let row = m
            .models
            .iter()
            .find(|r| r.model == member)
            .unwrap_or_else(|| panic!("member row {member} missing"));
        assert_eq!(row.completed, 4, "{member}");
        assert_eq!(row.completed + row.shed + row.failed, row.submitted);
    }

    // Per-shard series surface in the exposition.
    let prom = server.prometheus();
    assert!(prom.contains("bw_requests_completed_total{model=\"big\"} 4"));
    assert!(prom.contains("bw_requests_completed_total{model=\"big#g0s0\"} 4"));
}

#[test]
fn sharded_group_needs_one_worker_per_shard() {
    let err = Server::builder()
        .sharded_model(sharded())
        .replicas(1)
        .spawn()
        .map(|_| ())
        .unwrap_err();
    assert!(
        err.to_string().contains("shard"),
        "1 replica cannot host a 2-wide segment: {err}"
    );
}

/// Satellite: kill a shard-owning worker mid-run. Every group request
/// either completes via re-dispatch onto the shard's other owner or
/// fails with an explicit error — never a hang, never a double count.
#[test]
fn killed_shard_owner_mid_run_loses_no_request() {
    let server = Arc::new(
        Server::builder()
            .sharded_model(sharded())
            .replicas(4) // two owners per shard: failover capacity
            .queue_cap(8)
            .max_retries(2)
            .spawn()
            .unwrap(),
    );
    let client = server.client();
    let input = demo_input(WIDTHS[0], 5);
    let expected = reference_output(&input);

    let total: u64 = 24;
    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            // Worker 0 owns shard 0 of the wide segment (0 % 2 == 0).
            assert!(server.kill_worker(0));
        })
    };

    let outcomes: Vec<_> = (0..total)
        .map(|_| {
            let client = client.clone();
            let input = input.clone();
            std::thread::spawn(move || client.call("big", &input, DEADLINE))
        })
        .collect();

    let mut completed = 0u64;
    let mut errored = 0u64;
    for h in outcomes {
        // A hung request would hang this join; the deadline bounds it.
        match h.join().expect("request threads must not panic") {
            Ok(resp) => {
                completed += 1;
                assert_eq!(resp.output, expected, "failover must not change bits");
            }
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        ServeError::Shed { .. }
                            | ServeError::DeadlineExceeded { .. }
                            | ServeError::WorkerFault { .. }
                            | ServeError::NoReplica { .. }
                    ),
                    "unclassified failure: {e}"
                );
                errored += 1;
            }
        }
    }
    killer.join().unwrap();
    assert_eq!(completed + errored, total);
    assert!(completed > 0, "the surviving shard owners must absorb load");

    let m = server.metrics();
    let group = m.models.iter().find(|r| r.model == "big").unwrap();
    assert_eq!(group.submitted, total);
    assert_eq!(
        group.completed + group.shed + group.failed,
        group.submitted,
        "group row must account for every admitted request: {group:?}"
    );
    assert_eq!(group.completed, completed);
    // Member rows hold their own identity too (nothing in flight now).
    for row in &m.models {
        assert_eq!(
            row.completed + row.shed + row.failed,
            row.submitted,
            "row {} leaks requests",
            row.model
        );
    }
    assert!(!m.workers_alive[0], "worker 0 stays dead");
}

#[test]
fn network_hops_are_charged_and_metered() {
    let input = demo_input(WIDTHS[0], 7);
    let expected = reference_output(&input);

    // 2 ms per hop: a 2-segment group pays at least two scatter/gather
    // rounds of it, and the charge must show up in measured latency.
    let hop = 2e-3;
    let server = Server::builder()
        .sharded_model(sharded())
        .replicas(4)
        .network(NetworkModel::with_hop(hop))
        .spawn()
        .unwrap();
    let client = server.client();
    let resp = client.call("big", &input, DEADLINE).unwrap();
    assert_eq!(resp.output, expected, "the network must not change bits");
    let net = resp.attribution.network.as_secs_f64();
    assert!(
        net >= 2.0 * 2.0 * hop,
        "two segments x (scatter + gather) x {hop}s hop, got {net}s"
    );
    assert!(
        resp.latency.as_secs_f64() >= net,
        "modeled network time is part of measured latency"
    );

    // Per-link counters saw the legs.
    let m = server.metrics();
    let transfers: u64 = m.link_transfers.iter().sum();
    assert!(transfers >= 6, "3 shard attempts x 2 legs, got {transfers}");
    assert!(m.link_bytes.iter().sum::<u64>() > 0);
    assert!(m.link_busy_s.iter().sum::<f64>() > 0.0);
    let group = m.models.iter().find(|r| r.model == "big").unwrap();
    assert!(group.network.mean_s >= 2.0 * 2.0 * hop);

    let prom = server.prometheus();
    assert!(prom.contains("bw_link_transfers_total"));
    assert!(prom.contains("bw_request_network_seconds_count{model=\"big\"} 1"));
}

#[test]
fn down_link_routes_around_the_worker() {
    // Worker 1's link is down: its shard falls to worker 3 (3 % 2 == 1).
    let input = demo_input(WIDTHS[0], 9);
    let expected = reference_output(&input);
    let server = Server::builder()
        .sharded_model(sharded())
        .replicas(4)
        .network(NetworkModel::ideal().fail_link(1))
        .spawn()
        .unwrap();
    let resp = server.client().call("big", &input, DEADLINE).unwrap();
    assert_eq!(resp.output, expected);
    let m = server.metrics();
    let group = m.models.iter().find(|r| r.model == "big").unwrap();
    assert_eq!((group.completed, group.failed), (1, 0));
}
