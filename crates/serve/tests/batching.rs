//! Admission batching end to end: coalesced multi-column dispatches must
//! be bit-identical to sequential batch-1 serving, keep the accounting
//! identity through mid-batch worker kills, and never let the hold
//! window convert a meetable deadline into a breach.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{BatchConfig, BatchItem, Batcher, Routing, ServeError, Server};
use proptest::prelude::*;

const DEADLINE: Duration = Duration::from_secs(10);

/// A coalesced K-batch must produce exactly the outputs of K sequential
/// batch-1 calls: batching is a scheduling decision, never a numerics
/// one.
#[test]
fn coalesced_batch_is_bit_identical_to_sequential_runs() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .spawn()
        .unwrap();
    let client = server.client();

    for k in [1usize, 2, 4, 8] {
        let inputs: Vec<Vec<f32>> = (0..k).map(|i| demo_input(16, i as u64 * 31)).collect();
        let sequential: Vec<Vec<f32>> = inputs
            .iter()
            .map(|input| client.call("mlp", input, DEADLINE).unwrap().output)
            .collect();

        let items: Vec<BatchItem> = inputs
            .iter()
            .map(|input| BatchItem::new(input.clone(), DEADLINE))
            .collect();
        let batched: Vec<Vec<f32>> = client
            .call_batch("mlp", &items)
            .into_iter()
            .map(|r| r.unwrap().output)
            .collect();

        assert_eq!(
            batched, sequential,
            "K={k}: coalesced outputs must match batch-1 bit for bit"
        );
    }

    let m = client.metrics();
    let ms = &m.models[0];
    // 15 sequential + 15 batched members; every call_batch was one
    // coalesced dispatch.
    assert_eq!(ms.submitted, 30);
    assert_eq!(ms.completed, 30);
    assert_eq!(ms.batches, 4);
    assert_eq!(ms.batched_requests, 15);
    assert_eq!(ms.completed + ms.shed + ms.failed, ms.submitted);
}

/// Per-member attribution of a coalesced batch splits the NPU counters
/// exactly: the members' shares sum to the whole dispatch, nothing is
/// double-counted or lost to rounding.
#[test]
fn batch_attribution_splits_counters_exactly() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 3))
        .spawn()
        .unwrap();
    let client = server.client();

    let k = 3usize; // deliberately not a divisor-friendly batch size
    let items: Vec<BatchItem> = (0..k)
        .map(|i| BatchItem::new(demo_input(16, i as u64), DEADLINE))
        .collect();
    let responses: Vec<_> = client
        .call_batch("mlp", &items)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let batch_cycles: u64 = responses.iter().map(|r| r.attribution.npu_cycles).sum();
    let batch_macs: u64 = responses.iter().map(|r| r.attribution.npu_macs).sum();
    let m = client.metrics();
    assert_eq!(batch_cycles, m.models[0].npu_cycles);
    assert_eq!(batch_macs, m.models[0].npu_macs);

    // Every member of one dispatch reports the same worker and the same
    // retry count — they shared the attempt.
    assert!(responses.windows(2).all(|w| w[0].worker == w[1].worker));
    assert!(responses.windows(2).all(|w| w[0].retries == w[1].retries));
}

/// Kill a worker while coalesced batches are in flight: every member of
/// every batch terminates exactly once (completed on a replica after
/// whole-batch failover, or failed with a classified error) and the
/// metrics identity `completed + shed + failed == submitted` holds.
#[test]
fn mid_batch_worker_kill_keeps_the_accounting_identity() {
    let server = Arc::new(
        Server::builder()
            .model(mlp_artifact("mlp", &[16, 32, 8], 9))
            .replicas(3)
            .queue_cap(8)
            .policy(Routing::RoundRobin)
            .max_retries(2)
            .spawn()
            .unwrap(),
    );
    let client = server.client();

    let batches = 12usize;
    let k = 4usize;
    let killer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            assert!(server.kill_worker(0));
        })
    };

    let handles: Vec<_> = (0..batches)
        .map(|b| {
            let client = client.clone();
            std::thread::spawn(move || {
                let items: Vec<BatchItem> = (0..k)
                    .map(|i| BatchItem::new(demo_input(16, (b * k + i) as u64), DEADLINE))
                    .collect();
                client.call_batch("mlp", &items)
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut errored = 0u64;
    for h in handles {
        let results = h.join().expect("batch threads must not panic");
        assert_eq!(results.len(), k, "one result per member, always");
        for r in results {
            match r {
                Ok(resp) => {
                    completed += 1;
                    assert_eq!(resp.output.len(), 8);
                }
                Err(e) => {
                    assert!(
                        matches!(
                            e,
                            ServeError::Shed { .. }
                                | ServeError::DeadlineExceeded { .. }
                                | ServeError::WorkerFault { .. }
                                | ServeError::NoReplica { .. }
                        ),
                        "unclassified failure: {e}"
                    );
                    errored += 1;
                }
            }
        }
    }
    killer.join().unwrap();

    assert_eq!(completed + errored, (batches * k) as u64);
    assert!(completed > 0, "replicas must absorb the load");

    let m = server.metrics();
    let ms = &m.models[0];
    assert_eq!(ms.submitted, (batches * k) as u64);
    assert_eq!(
        ms.completed + ms.shed + ms.failed,
        ms.submitted,
        "coalescing must not leak a member: {ms:?}"
    );
    assert_eq!(ms.completed, completed);
    assert!(!m.workers_alive[0], "worker 0 stays dead");
}

/// The batcher's hold budget is carved out of deadline slack, so waiting
/// in the coalescing window must never turn a meetable request into a
/// deadline breach — even when the window never fills and the request
/// waits out its whole hold.
#[test]
fn hold_time_never_breaches_a_deadline() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 5))
        .spawn()
        .unwrap();
    // max_batch of 16 with a single submitter: every request waits out
    // its full hold budget before dispatch.
    let batcher = Batcher::new(
        server.client(),
        BatchConfig {
            max_batch: 16,
            max_hold: Duration::from_millis(50),
            slack_fraction: 1.0,
            dispatchers: 2,
        },
    );

    for (i, deadline) in [
        Duration::from_millis(150),
        Duration::from_millis(400),
        Duration::from_secs(2),
    ]
    .into_iter()
    .enumerate()
    {
        let started = Instant::now();
        let resp = batcher
            .call("mlp", demo_input(16, i as u64), deadline)
            .unwrap_or_else(|e| panic!("deadline {deadline:?} breached by the hold window: {e}"));
        assert!(
            started.elapsed() < deadline,
            "request resolved after its own deadline"
        );
        // The hold is charged to the request: latency includes the wait
        // but stays under the deadline.
        assert!(resp.latency < deadline);
    }

    let m = server.metrics();
    assert_eq!(m.models[0].completed, 3);
    assert_eq!(m.models[0].failed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random arrival patterns through the batcher: every submitted
    /// request resolves exactly once (no hangs, no lost replies),
    /// completed outputs are bit-identical to an unbatched reference
    /// call, and the metrics identity holds after every pattern.
    #[test]
    fn random_arrivals_resolve_exactly_once_and_bit_identically(
        n in 1usize..=8,
        max_batch in 1usize..=6,
        gaps in prop::collection::vec(0u64..4, 8..9),
        seeds in prop::collection::vec(0u64..1000, 8..9),
    ) {
        let server = Server::builder()
            .model(mlp_artifact("mlp", &[16, 32, 8], 11))
            .replicas(2)
            .spawn()
            .unwrap();
        let reference = server.client();
        let batcher = Batcher::new(
            server.client(),
            BatchConfig {
                max_batch,
                max_hold: Duration::from_millis(5),
                slack_fraction: 0.25,
                dispatchers: 2,
            },
        );
        let receivers: Vec<_> = (0..n)
            .map(|i| {
                std::thread::sleep(Duration::from_millis(gaps[i]));
                (
                    seeds[i],
                    batcher.submit("mlp", demo_input(16, seeds[i]), DEADLINE),
                )
            })
            .collect();
        for (seed, rx) in receivers {
            let resp = rx
                .recv()
                .expect("reply channel must resolve")
                .expect("generous deadline must complete");
            let expected = reference
                .call("mlp", &demo_input(16, seed), DEADLINE)
                .unwrap()
                .output;
            prop_assert_eq!(&resp.output, &expected, "seed {} diverged", seed);
        }
        let m = server.metrics();
        let ms = &m.models[0];
        prop_assert_eq!(ms.completed + ms.shed + ms.failed, ms.submitted);
        prop_assert_eq!(ms.completed, n as u64 * 2);
    }
}
