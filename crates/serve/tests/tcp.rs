//! TCP front-end round trips: the wire protocol against a live server.

use std::time::Duration;

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{ServeError, Server, TcpClient, TcpFrontend};

const DEADLINE: Duration = Duration::from_secs(10);

#[test]
fn tcp_round_trip_matches_in_process_result() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(2)
        .spawn()
        .unwrap();
    let expected = server
        .client()
        .call("mlp", &demo_input(16, 5), DEADLINE)
        .unwrap()
        .output;

    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(frontend.addr()).unwrap();
    let resp = client.call("mlp", &demo_input(16, 5), DEADLINE).unwrap();
    assert_eq!(resp.output, expected);
    assert!(resp.latency > Duration::ZERO);

    // Errors travel the wire as explicit error frames.
    let err = client
        .call("nope", &demo_input(16, 0), DEADLINE)
        .unwrap_err();
    assert!(matches!(err, ServeError::Remote(_)), "got {err}");

    // Metrics are fetchable over the same connection.
    let json = client.metrics_json().unwrap();
    assert!(json.contains("\"model\":\"mlp\""));
    assert!(json.contains("\"completed\":2"));

    frontend.shutdown();
}

#[test]
fn concurrent_tcp_clients_are_isolated() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 8], 3))
        .replicas(2)
        .spawn()
        .unwrap();
    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();
    let addr = frontend.addr();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                let mut outputs = Vec::new();
                for j in 0..5 {
                    let resp = client
                        .call("mlp", &demo_input(16, i * 100 + j), DEADLINE)
                        .unwrap();
                    outputs.push(resp.output);
                }
                outputs
            })
        })
        .collect();
    for h in handles {
        let outputs = h.join().unwrap();
        assert_eq!(outputs.len(), 5);
        assert!(outputs.iter().all(|o| o.len() == 8));
    }
    let m = server.metrics();
    assert_eq!(m.models[0].completed, 20);
}

#[test]
fn sla_rejections_cross_the_wire_typed() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(1)
        .spawn()
        .unwrap();
    let bound = server
        .client()
        .static_bound_us("mlp")
        .expect("mlp has a provable bound");

    let frontend = TcpFrontend::bind(&server, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(frontend.addr()).unwrap();

    // A deadline below the static lower bound comes back as the typed
    // SLA frame, not a stringly error — remote clients see the same
    // structured rejection local ones do.
    let err = client
        .call("mlp", &demo_input(16, 1), Duration::from_micros(0))
        .unwrap_err();
    match err {
        ServeError::SlaUnmeetable {
            ref model,
            bound_us,
            budget_us,
        } => {
            assert_eq!(model, "mlp");
            assert_eq!(bound_us, bound);
            assert_eq!(budget_us, 0);
        }
        other => panic!("expected a typed SLA rejection over TCP, got {other}"),
    }

    // The connection survives the rejection and still serves work.
    let resp = client.call("mlp", &demo_input(16, 1), DEADLINE).unwrap();
    assert_eq!(resp.output.len(), 8);
    let m = server.metrics();
    assert_eq!(m.models[0].submitted, 1, "the rejection was never admitted");

    frontend.shutdown();
}
