//! Tail-sampling flight recorder: full span trees are retained for
//! exactly the requests that breached the latency objective or failed,
//! within a bounded ring — and head sampling (`trace_sample`) keeps its
//! own semantics untouched.

use std::time::Duration;

use bw_core::SpanKind;
use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{FlightOutcome, Server};

const DEADLINE: Duration = Duration::from_secs(5);

fn boot(objective: Duration, capacity: usize, queue_cap: usize) -> Server {
    Server::builder()
        .model(mlp_artifact("fr", &[16, 32, 8], 9))
        .replicas(2)
        .queue_cap(queue_cap)
        .flight_recorder(objective, capacity)
        .spawn()
        .unwrap()
}

#[test]
fn every_breaching_request_keeps_its_full_span_tree() {
    // A zero latency objective: every completion breaches.
    let server = boot(Duration::ZERO, 64, 32);
    let client = server.client();
    let mut latencies = Vec::new();
    for i in 0..10 {
        let resp = client.call("fr", &demo_input(16, i), DEADLINE).unwrap();
        latencies.push(resp.latency);
    }

    let records = server.take_flight_records();
    assert_eq!(records.len(), 10, "every breach must be retained");
    for record in &records {
        match &record.outcome {
            FlightOutcome::LatencyBreach { latency, objective } => {
                assert!(*latency > *objective);
                assert_eq!(*objective, Duration::ZERO);
            }
            other => panic!("expected a latency breach, got {other:?}"),
        }
        // The span tree is complete: a run envelope plus chain spans,
        // all stamped with the request's own trace id.
        assert!(!record.trace.spans.is_empty(), "empty span tree retained");
        assert!(record.trace.spans.iter().any(|s| s.kind == SpanKind::Run));
        assert!(record
            .trace
            .spans
            .iter()
            .all(|s| s.trace_id == record.trace.request_id));
    }
    assert!(
        server.take_flight_records().is_empty(),
        "records drain once"
    );
}

#[test]
fn requests_within_the_objective_are_not_retained() {
    let server = boot(Duration::from_secs(100), 64, 32);
    let client = server.client();
    for i in 0..10 {
        client.call("fr", &demo_input(16, i), DEADLINE).unwrap();
    }
    assert!(
        server.take_flight_records().is_empty(),
        "healthy requests must not be recorded"
    );
}

#[test]
fn the_ring_is_bounded_and_keeps_the_most_recent() {
    let server = boot(Duration::ZERO, 4, 32);
    let client = server.client();
    let mut last_ids = Vec::new();
    for i in 0..12 {
        let p = client.submit("fr", &demo_input(16, i), DEADLINE).unwrap();
        let id = p.request_id();
        p.wait().unwrap();
        if i >= 8 {
            last_ids.push(id);
        }
    }
    let records = server.take_flight_records();
    assert_eq!(records.len(), 4, "capacity must bound the ring");
    let kept: Vec<_> = records.iter().map(|r| r.trace.request_id).collect();
    assert_eq!(kept, last_ids, "oldest records must be evicted first");
}

#[test]
fn failures_are_recorded_but_shed_is_not() {
    // Kill every worker: admitted requests fail with NoReplica.
    let server = boot(Duration::from_secs(100), 64, 32);
    let client = server.client();
    for w in 0..server.worker_count() {
        server.kill_worker(w);
    }
    let err = client.call("fr", &demo_input(16, 0), DEADLINE).unwrap_err();
    let records = server.take_flight_records();
    assert_eq!(records.len(), 1, "a failed request must be retained");
    match &records[0].outcome {
        FlightOutcome::Failed { error } => {
            assert_eq!(error, &err.to_string());
        }
        other => panic!("expected a failure record, got {other:?}"),
    }

    // Shed requests never entered the system: admission control is an
    // outcome, not a serving failure, so they leave no record.
    let server = boot(Duration::from_secs(100), 64, 1);
    let client = server.client();
    let mut pending = Vec::new();
    let mut shed = 0;
    for i in 0..64 {
        match client.submit("fr", &demo_input(16, i), DEADLINE) {
            Ok(p) => pending.push(p),
            Err(_) => shed += 1,
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    assert!(shed > 0, "burst did not shed; tighten the queue");
    assert!(
        server
            .take_flight_records()
            .iter()
            .all(|r| matches!(r.outcome, FlightOutcome::LatencyBreach { .. })),
        "shed requests must not leave failure records"
    );
}

#[test]
fn head_sampling_semantics_are_unchanged() {
    // Recorder armed, head sampling off: flight records exist but the
    // trace log stays empty.
    let server = boot(Duration::ZERO, 64, 32);
    let client = server.client();
    for i in 0..6 {
        client.call("fr", &demo_input(16, i), DEADLINE).unwrap();
    }
    assert!(
        server.take_traces().is_empty(),
        "trace_sample=0 logs nothing"
    );
    assert_eq!(server.take_flight_records().len(), 6);

    // Head sampling on alongside the recorder: the trace log sees only
    // the sampled subset while the recorder sees every breach.
    let server = Server::builder()
        .model(mlp_artifact("fr", &[16, 32, 8], 9))
        .replicas(2)
        .queue_cap(32)
        .trace_sample(2)
        .flight_recorder(Duration::ZERO, 64)
        .spawn()
        .unwrap();
    let client = server.client();
    for i in 0..6 {
        client.call("fr", &demo_input(16, i), DEADLINE).unwrap();
    }
    let traces = server.take_traces();
    assert_eq!(traces.len(), 3, "every second request is head-sampled");
    assert!(traces.iter().all(|t| t.request_id % 2 == 0));
    assert_eq!(server.take_flight_records().len(), 6);
}
