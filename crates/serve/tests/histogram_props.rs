//! Properties of [`Histogram`] snapshot-delta arithmetic: `diff` of two
//! cumulative snapshots recovers the window's distribution, quantiles of
//! the diff track the true window values within the documented ≤12%
//! bucket resolution, and `merge` is the inverse of `diff`.

use bw_serve::Histogram;
use proptest::prelude::*;

/// Log-uniform latencies spanning 10 µs – 10 s, well inside the
/// histogram's bucket range.
fn latency() -> impl Strategy<Value = f64> {
    (-5.0f64..1.0).prop_map(|e| 10f64.powf(e))
}

fn record_all(hist: &mut Histogram, samples: &[f64]) {
    for &s in samples {
        hist.record(s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles of `diff(after, before)` stay within the ≤12% bucket
    /// resolution of the true quantiles of just the window's samples,
    /// no matter what the `before` snapshot already held.
    #[test]
    fn diff_quantiles_bracket_the_true_window_values(
        before in prop::collection::vec(latency(), 0..200),
        window in prop::collection::vec(latency(), 1..200),
    ) {
        let mut snap_before = Histogram::default();
        record_all(&mut snap_before, &before);
        let mut snap_after = snap_before.clone();
        record_all(&mut snap_after, &window);

        let diff = Histogram::diff(&snap_after, &snap_before);
        prop_assert_eq!(diff.count(), window.len() as u64);

        let mut sorted = window.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // The histogram's nearest-rank rule, applied to the exact
            // samples.
            let rank = ((sorted.len() - 1) as f64 * q) as usize;
            let truth = sorted[rank];
            let got = diff.quantile(q);
            prop_assert!(
                (got / truth - 1.0).abs() <= 0.12,
                "q={} true={} diff={} (off by {:.1}%)",
                q, truth, got, (got / truth - 1.0).abs() * 100.0
            );
        }
    }

    /// Merging the diff back onto the `before` snapshot reconstructs
    /// `after` exactly, bucket for bucket.
    #[test]
    fn merge_is_the_inverse_of_diff(
        before in prop::collection::vec(latency(), 0..200),
        window in prop::collection::vec(latency(), 0..200),
    ) {
        let mut snap_before = Histogram::default();
        record_all(&mut snap_before, &before);
        let mut snap_after = snap_before.clone();
        record_all(&mut snap_after, &window);

        let diff = Histogram::diff(&snap_after, &snap_before);
        let mut rebuilt = snap_before.clone();
        rebuilt.merge(&diff);

        prop_assert_eq!(rebuilt.count(), snap_after.count());
        prop_assert_eq!(rebuilt.cumulative_buckets(), snap_after.cumulative_buckets());
        // Sums travel through subtraction and re-addition of floats:
        // equal up to rounding, not bitwise.
        prop_assert!((rebuilt.sum_s() - snap_after.sum_s()).abs() <= 1e-9 * (1.0 + snap_after.sum_s()));
    }

    /// Merge is commutative on everything observable: counts, buckets,
    /// extremes, and quantiles.
    #[test]
    fn merge_commutes(
        xs in prop::collection::vec(latency(), 0..200),
        ys in prop::collection::vec(latency(), 0..200),
    ) {
        let mut hx = Histogram::default();
        record_all(&mut hx, &xs);
        let mut hy = Histogram::default();
        record_all(&mut hy, &ys);

        let mut xy = hx.clone();
        xy.merge(&hy);
        let mut yx = hy.clone();
        yx.merge(&hx);

        prop_assert_eq!(xy.count(), yx.count());
        prop_assert_eq!(xy.cumulative_buckets(), yx.cumulative_buckets());
        prop_assert_eq!(xy.min_s(), yx.min_s());
        prop_assert_eq!(xy.max_s(), yx.max_s());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(xy.quantile(q), yx.quantile(q));
        }
    }

    /// A snapshot diffed against itself is empty, and `count_over` of
    /// any diff never exceeds its count.
    #[test]
    fn self_diff_is_empty_and_count_over_is_bounded(
        xs in prop::collection::vec(latency(), 0..200),
        threshold in latency(),
    ) {
        let mut h = Histogram::default();
        record_all(&mut h, &xs);
        let empty = Histogram::diff(&h, &h);
        prop_assert_eq!(empty.count(), 0);
        prop_assert_eq!(empty.quantile(0.5), 0.0, "empty sentinel");
        prop_assert!(h.count_over(threshold) <= h.count());
    }
}
