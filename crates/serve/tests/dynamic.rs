//! The dynamic control plane: runtime pin/unpin/drain, runtime model
//! registration, live network swaps, and the preload cost model.

use std::time::Duration;

use bw_serve::demo::{demo_input, mlp_artifact};
use bw_serve::{NetworkModel, PinError, PreloadModel, Server};

const DEADLINE: Duration = Duration::from_secs(5);

#[test]
fn pin_unpin_round_trip_updates_residency() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 24, 8], 3))
        .replicas(2)
        .pin_on("mlp", vec![0])
        .spawn()
        .unwrap();
    assert_eq!(server.pinned_workers("mlp"), vec![0]);

    let client = server.client();
    let baseline = client.call("mlp", &demo_input(16, 1), DEADLINE).unwrap();

    let preload = server.pin_model("mlp", 1).unwrap();
    assert_eq!(preload, Duration::ZERO, "default preload model is free");
    assert_eq!(server.pinned_workers("mlp"), vec![0, 1]);
    let snap = server.metrics();
    assert!(snap.worker_models[1].iter().any(|r| r.model == "mlp"));
    let prom = server.prometheus();
    assert!(prom.contains("bw_worker_model_pinned{worker=\"1\",model=\"mlp\"} 1"));

    server.unpin_model("mlp", 0).unwrap();
    assert_eq!(server.pinned_workers("mlp"), vec![1]);
    let snap = server.metrics();
    assert!(snap.worker_models[0].is_empty());

    // The surviving replica answers bit-identically.
    let resp = client.call("mlp", &demo_input(16, 1), DEADLINE).unwrap();
    assert_eq!(resp.output, baseline.output);
}

#[test]
fn control_plane_refusals() {
    let server = Server::builder()
        .model(mlp_artifact("solo", &[16, 8], 5))
        .replicas(2)
        .pin_on("solo", vec![0])
        .spawn()
        .unwrap();

    match server.unpin_model("solo", 0) {
        Err(PinError::LastReplica { model }) => assert_eq!(model, "solo"),
        other => panic!("expected LastReplica, got {other:?}"),
    }
    match server.pin_model("solo", 0) {
        Err(PinError::AlreadyPinned { model, worker }) => {
            assert_eq!((model.as_str(), worker), ("solo", 0));
        }
        other => panic!("expected AlreadyPinned, got {other:?}"),
    }
    match server.unpin_model("solo", 1) {
        Err(PinError::NotPinned { model, worker }) => {
            assert_eq!((model.as_str(), worker), ("solo", 1));
        }
        other => panic!("expected NotPinned, got {other:?}"),
    }
    assert!(matches!(
        server.pin_model("ghost", 0),
        Err(PinError::UnknownModel(_))
    ));
    assert!(matches!(
        server.pin_model("solo", 99),
        Err(PinError::UnknownWorker(99))
    ));
    assert!(matches!(
        server.drain_worker(99),
        Err(PinError::UnknownWorker(99))
    ));

    // A dead worker refuses pins.
    assert!(server.kill_worker(1));
    match server.pin_model("solo", 1) {
        Err(PinError::WorkerDead(1)) => {}
        other => panic!("expected WorkerDead, got {other:?}"),
    }
}

#[test]
fn drain_worker_is_a_completion_barrier() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 32, 8], 7))
        .replicas(1)
        .queue_cap(64)
        .spawn()
        .unwrap();
    let client = server.client();

    let pending: Vec<_> = (0..32)
        .map(|i| client.submit("mlp", &demo_input(16, i), DEADLINE).unwrap())
        .collect();
    server.drain_worker(0).unwrap();
    // Everything submitted before the barrier has been answered.
    assert_eq!(server.metrics().queue_depths[0], 0);
    for p in pending {
        p.wait().unwrap();
    }
    let m = server.metrics().models.remove(0);
    assert_eq!(m.completed, 32);
    assert_eq!(m.completed + m.shed + m.failed, m.submitted);
}

#[test]
fn register_model_at_runtime_and_serve_it() {
    let server = Server::builder()
        .model(mlp_artifact("resident", &[16, 8], 2))
        .replicas(2)
        .spawn()
        .unwrap();
    let client = server.client();

    let slot = server
        .register_model(mlp_artifact("late", &[16, 24, 8], 11))
        .unwrap();
    assert_eq!(slot, 1);
    // Registered but not yet pinned anywhere: admission sheds it.
    assert!(server.pinned_workers("late").is_empty());
    assert!(client.call("late", &demo_input(16, 0), DEADLINE).is_err());

    server.pin_model("late", 1).unwrap();
    let resp = client.call("late", &demo_input(16, 0), DEADLINE).unwrap();
    assert_eq!(resp.output.len(), 8);

    let snap = server.metrics();
    let row = snap.models.iter().find(|m| m.model == "late").unwrap();
    assert_eq!(row.completed, 1);
    assert_eq!(row.completed + row.shed + row.failed, row.submitted);
    // The resident model is untouched by the runtime registration.
    let resp = client
        .call("resident", &demo_input(16, 4), DEADLINE)
        .unwrap();
    assert_eq!(resp.output.len(), 8);
}

#[test]
fn set_network_routes_around_a_downed_link() {
    let server = Server::builder()
        .model(mlp_artifact("mlp", &[16, 24, 8], 9))
        .replicas(2)
        .spawn()
        .unwrap();
    let client = server.client();
    let baseline = client.call("mlp", &demo_input(16, 2), DEADLINE).unwrap();

    server.set_network(NetworkModel::ideal().fail_link(0));
    assert!(!server.network().link_up(0));
    for i in 0..8 {
        let resp = client.call("mlp", &demo_input(16, 2), DEADLINE).unwrap();
        assert_eq!(resp.output, baseline.output, "request {i}");
    }
    let snap = server.metrics();
    // Worker 0 is unreachable: everything after the fault ran on 1.
    assert_eq!(snap.worker_processed[0], 1);
    assert_eq!(snap.worker_processed[1], 8);

    server.set_network(NetworkModel::ideal());
    assert!(server.network().link_up(0));
    let m = server.metrics().models.remove(0);
    assert_eq!(m.completed + m.shed + m.failed, m.submitted);
}

#[test]
fn preload_charges_the_destination_link() {
    let artifact = mlp_artifact("mlp", &[16, 32, 8], 7);
    let weight_bytes = artifact.mrf_fill_bytes();
    assert!(weight_bytes > 0);
    let net = NetworkModel::with_hop(5e-6).bandwidth(1e9);
    let preload_model = PreloadModel::free().fill_bandwidth(4e9).setup(20e-6);
    let expect_s = preload_model.preload_s(weight_bytes as usize, &net, 1);

    let server = Server::builder()
        .model(artifact)
        .replicas(2)
        .pin_on("mlp", vec![0])
        .network(net)
        .preload(preload_model)
        .spawn()
        .unwrap();

    let quoted = server.preload_cost("mlp", 1).unwrap();
    assert!((quoted.as_secs_f64() - expect_s).abs() < 1e-9);

    let before = server.metrics();
    let paid = server.pin_model("mlp", 1).unwrap();
    assert!((paid.as_secs_f64() - expect_s).abs() < 1e-9);
    let after = server.metrics();
    assert_eq!(after.link_transfers[1], before.link_transfers[1] + 1);
    assert_eq!(after.link_bytes[1], before.link_bytes[1] + weight_bytes);
    assert!(after.link_busy_s[1] > before.link_busy_s[1]);

    // A degraded destination link makes the same preload honestly slower.
    server.unpin_model("mlp", 0).unwrap();
    server.set_network(
        NetworkModel::with_hop(5e-6)
            .bandwidth(1e9)
            .degrade_link(0, 8.0),
    );
    let degraded = server.preload_cost("mlp", 0).unwrap();
    assert!(degraded > quoted, "{degraded:?} vs {quoted:?}");
}
