//! The serving metrics layer: per-model counters and latency histograms
//! with tail percentiles, queue-depth gauges, and a JSON snapshot — the
//! observability §II-A's resource manager relies on to publish healthy
//! instances.

use std::sync::atomic::{AtomicU64, Ordering};

use bw_system::LatencySummary;
use parking_lot::Mutex;

/// Histogram bucket layout: geometric buckets from 1 µs upward, ×1.25 per
/// bucket. 96 buckets reach past 2000 s — far beyond any deadline this
/// runtime accepts — with ≤ 12% quantile resolution error.
const BUCKET_FLOOR_S: f64 = 1e-6;
const BUCKET_GROWTH: f64 = 1.25;
const BUCKETS: usize = 96;

/// A log-bucketed latency histogram. Records are seconds; quantiles come
/// back as the geometric midpoint of the owning bucket, so resolution is
/// bounded by the bucket growth factor, not sample count.
///
/// Histograms are also the unit of *snapshot-delta* math: two cumulative
/// readings of the same live histogram can be subtracted with
/// [`Histogram::diff`] to recover the distribution of just the samples
/// recorded between them, and per-window snapshots can be re-aggregated
/// with [`Histogram::merge`]. Both operate on the shared bucket layout,
/// so windowed quantiles inherit the same ≤ 12% resolution bound.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    min_s: f64,
    max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }
}

impl Histogram {
    fn bucket(latency_s: f64) -> usize {
        if latency_s <= BUCKET_FLOOR_S {
            return 0;
        }
        let idx = (latency_s / BUCKET_FLOOR_S).ln() / BUCKET_GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// The geometric midpoint of bucket `i` — the value quantiles resolve
    /// to, and the representative a reconstructed (diffed) histogram
    /// assigns to samples whose exact values are no longer known.
    fn bucket_mid(i: usize) -> f64 {
        let lo = BUCKET_FLOOR_S * BUCKET_GROWTH.powi(i as i32);
        (lo * (lo * BUCKET_GROWTH)).sqrt()
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, latency_s: f64) {
        self.counts[Self::bucket(latency_s)] += 1;
        self.count += 1;
        self.sum_s += latency_s;
        self.min_s = self.min_s.min(latency_s);
        self.max_s = self.max_s.max(latency_s);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (seconds).
    pub fn sum_s(&self) -> f64 {
        self.sum_s
    }

    /// Smallest recorded sample, or `0.0` when empty.
    pub fn min_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_s
        }
    }

    /// Largest recorded sample, or `0.0` when empty.
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// Cumulative `(upper_bound_s, count)` pairs through the last
    /// occupied bucket — the shape Prometheus `_bucket` series want. The
    /// implicit `+Inf` bucket (== total count) is not included. Empty for
    /// an empty histogram.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut running = 0u64;
        (0..=last)
            .map(|i| {
                running += self.counts[i];
                (BUCKET_FLOOR_S * BUCKET_GROWTH.powi(i as i32 + 1), running)
            })
            .collect()
    }

    /// Nearest-rank quantile, resolved to the geometric midpoint of the
    /// owning bucket (exact min/max at the extremes).
    ///
    /// Edge behavior, relied on by the snapshot consumers: an **empty
    /// histogram returns the `0.0` sentinel for every `q`** (so idle
    /// models read as all-zero, not NaN); `q` outside `[0, 1]` clamps to
    /// the nearest extreme (`q ≤ 0` → min, `q ≥ 1` → max); a NaN `q` is
    /// treated as `0.0` and returns the min.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q.is_nan() || q <= 0.0 {
            return self.min_s;
        }
        if q >= 1.0 {
            return self.max_s;
        }
        let rank = ((self.count - 1) as f64 * q) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Self::bucket_mid(i).clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }

    /// Folds another histogram's samples into this one. Counts and sums
    /// add per bucket; min/max take the extremes of both operands. An
    /// empty `other` is a no-op.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        if other.count > 0 {
            self.min_s = self.min_s.min(other.min_s);
            self.max_s = self.max_s.max(other.max_s);
        }
    }

    /// Reconstructs the distribution of the samples recorded between two
    /// cumulative snapshots of the same histogram: per-bucket saturating
    /// subtraction of `before` from `after`.
    ///
    /// The window's exact min/max are unknowable from cumulative
    /// snapshots, so the result substitutes the geometric midpoints of
    /// its extreme occupied buckets — within the documented ≤ 12% bucket
    /// resolution, like every quantile. The sum is clamped at zero.
    /// Identical snapshots (and `after` lagging `before`, which cannot
    /// happen for snapshots taken in order) diff to an empty histogram.
    pub fn diff(after: &Histogram, before: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (i, o) in out.counts.iter_mut().enumerate() {
            *o = after.counts[i].saturating_sub(before.counts[i]);
        }
        out.count = out.counts.iter().sum();
        if out.count > 0 {
            out.sum_s = (after.sum_s - before.sum_s).max(0.0);
            let first = out.counts.iter().position(|&c| c > 0).unwrap_or(0);
            let last = out.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            out.min_s = Self::bucket_mid(first);
            out.max_s = Self::bucket_mid(last);
        }
        out
    }

    /// Samples whose owning bucket's representative (geometric midpoint)
    /// exceeds `threshold_s` — the "slow request" numerator of a latency
    /// SLO. Like quantiles, the answer is exact up to bucket resolution:
    /// samples within ≤ 12% of the threshold may fall on either side.
    pub fn count_over(&self, threshold_s: f64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| Self::bucket_mid(i) > threshold_s)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Summarizes the histogram in the shared `bw-system` vocabulary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count as usize,
            mean_s: if self.count == 0 {
                0.0
            } else {
                self.sum_s / self.count as f64
            },
            p50_s: self.quantile(0.50),
            p95_s: self.quantile(0.95),
            p99_s: self.quantile(0.99),
            p999_s: self.quantile(0.999),
            max_s: if self.count == 0 { 0.0 } else { self.max_s },
        }
    }
}

/// Live counters for one registered model. All increments are lock-free;
/// the histogram takes a short uncontended lock per completion.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Requests admitted (past validation).
    pub submitted: AtomicU64,
    /// Requests answered with an output.
    pub completed: AtomicU64,
    /// Requests shed at admission (every replica queue full).
    pub shed: AtomicU64,
    /// Requests that failed after admission (deadline, faults, shutdown).
    pub failed: AtomicU64,
    /// Failover retries dispatched (attempts beyond each first).
    pub retries: AtomicU64,
    /// Coalesced multi-column dispatches issued (each packs ≥ 1
    /// requests; batch-1 requests that bypass the batcher don't count).
    pub batches: AtomicU64,
    /// Requests that travelled inside a coalesced dispatch.
    pub batched_requests: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: Mutex<Histogram>,
    /// NPU cycles attributed to completed requests.
    pub npu_cycles: AtomicU64,
    /// MVM multiply-accumulates attributed to completed requests.
    pub npu_macs: AtomicU64,
    /// Dependency-stall cycles attributed to completed requests.
    pub npu_dep_stall_cycles: AtomicU64,
    /// Resource-stall cycles attributed to completed requests.
    pub npu_resource_stall_cycles: AtomicU64,
    /// Time completed requests spent queued before a worker picked them
    /// up (per winning attempt).
    pub queue_wait: Mutex<Histogram>,
    /// Time the winning attempt spent executing on the NPU pool.
    pub service: Mutex<Histogram>,
    /// Modeled network transfer time charged per completed request
    /// (scatter/gather and request/response legs; all-zero on an ideal
    /// network).
    pub network: Mutex<Histogram>,
}

impl ModelMetrics {
    /// Records a completion with its end-to-end latency.
    pub fn record_completed(&self, latency_s: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().record(latency_s);
    }

    /// Attributes one completed request's NPU work, queue/service split,
    /// and modeled network time to this model.
    pub fn record_attribution(
        &self,
        queue_wait_s: f64,
        service_s: f64,
        network_s: f64,
        stats: &bw_core::RunStats,
    ) {
        self.npu_cycles.fetch_add(stats.cycles, Ordering::Relaxed);
        self.npu_macs.fetch_add(stats.mvm_macs, Ordering::Relaxed);
        self.npu_dep_stall_cycles
            .fetch_add(stats.dep_stall_cycles, Ordering::Relaxed);
        self.npu_resource_stall_cycles
            .fetch_add(stats.resource_stall_cycles, Ordering::Relaxed);
        self.queue_wait.lock().record(queue_wait_s);
        self.service.lock().record(service_s);
        self.network.lock().record(network_s);
    }
}

/// Live counters for one client↔worker network link (the per-link half
/// of the Prometheus exposition). All increments are lock-free.
#[derive(Debug, Default)]
pub struct LinkMetrics {
    /// Transfer legs charged over this link.
    pub transfers: AtomicU64,
    /// Payload bytes moved over this link.
    pub bytes: AtomicU64,
    /// Modeled busy time of this link, in nanoseconds.
    pub busy_ns: AtomicU64,
}

impl LinkMetrics {
    /// Records one transfer leg of `bytes` taking `seconds` of modeled
    /// link time.
    pub fn record(&self, bytes: usize, seconds: f64) {
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.busy_ns
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }
}

/// A point-in-time reading of one model's metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSnapshot {
    /// The model name.
    pub model: String,
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests failed after admission.
    pub failed: u64,
    /// Failover retries dispatched.
    pub retries: u64,
    /// Coalesced multi-column dispatches issued.
    pub batches: u64,
    /// Requests that travelled inside a coalesced dispatch.
    pub batched_requests: u64,
    /// Latency distribution of completed requests.
    pub latency: LatencySummary,
    /// The raw cumulative latency histogram behind [`Self::latency`].
    /// Carried so snapshot consumers can do window math —
    /// [`Histogram::diff`] between two snapshots recovers the
    /// distribution of just the requests completed between them. Not
    /// serialized by [`MetricsSnapshot::to_json`].
    pub latency_hist: Histogram,
    /// NPU cycles attributed to completed requests.
    pub npu_cycles: u64,
    /// MVM multiply-accumulates attributed to completed requests.
    pub npu_macs: u64,
    /// Dependency-stall cycles attributed to completed requests.
    pub npu_dep_stall_cycles: u64,
    /// Resource-stall cycles attributed to completed requests.
    pub npu_resource_stall_cycles: u64,
    /// Queue-wait distribution of completed requests.
    pub queue_wait: LatencySummary,
    /// NPU service-time distribution of completed requests.
    pub service: LatencySummary,
    /// Modeled network-time distribution of completed requests.
    pub network: LatencySummary,
}

impl ModelSnapshot {
    /// Requests the metrics account for: `completed + shed + failed`.
    /// Equals `submitted` whenever no request is still in flight.
    pub fn accounted(&self) -> u64 {
        self.completed + self.shed + self.failed
    }
}

/// One model pinned on one worker: the residency half of the fleet
/// control loop's observability.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelResidency {
    /// The pinned model's name.
    pub model: String,
    /// Seconds the pin has been resident on the worker.
    pub pinned_for_s: f64,
}

/// A point-in-time reading of the whole server.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-model readings, in registry order.
    pub models: Vec<ModelSnapshot>,
    /// Per-worker outstanding requests (queued + executing), in worker
    /// order.
    pub queue_depths: Vec<usize>,
    /// Per-worker liveness, in worker order.
    pub workers_alive: Vec<bool>,
    /// Per-worker jobs fully processed, in worker order.
    pub worker_processed: Vec<u64>,
    /// Per-worker model residency (which models are pinned, and for how
    /// long), in worker order.
    pub worker_models: Vec<Vec<ModelResidency>>,
    /// Per-link transfer legs charged, in worker (link) order.
    pub link_transfers: Vec<u64>,
    /// Per-link payload bytes moved, in worker (link) order.
    pub link_bytes: Vec<u64>,
    /// Per-link modeled busy seconds, in worker (link) order.
    pub link_busy_s: Vec<f64>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a JSON object (no external
    /// dependencies; strings escaped per RFC 8259).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"models\":[");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"model\":\"{}\",\"submitted\":{},\"completed\":{},\"shed\":{},\
                 \"failed\":{},\"retries\":{},\"batches\":{},\"batched_requests\":{},\
                 \"latency\":{},\"npu_cycles\":{},\
                 \"npu_macs\":{},\"npu_dep_stall_cycles\":{},\
                 \"npu_resource_stall_cycles\":{},\"queue_wait\":{},\"service\":{},\
                 \"network\":{}}}",
                json_escape(&m.model),
                m.submitted,
                m.completed,
                m.shed,
                m.failed,
                m.retries,
                m.batches,
                m.batched_requests,
                m.latency.to_json(),
                m.npu_cycles,
                m.npu_macs,
                m.npu_dep_stall_cycles,
                m.npu_resource_stall_cycles,
                m.queue_wait.to_json(),
                m.service.to_json(),
                m.network.to_json()
            ));
        }
        out.push_str("],\"queue_depths\":[");
        for (i, d) in self.queue_depths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],\"workers_alive\":[");
        for (i, a) in self.workers_alive.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if *a { "true" } else { "false" });
        }
        out.push_str("],\"worker_processed\":[");
        for (i, p) in self.worker_processed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str("],\"worker_models\":[");
        for (i, models) in self.worker_models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, r) in models.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"model\":\"{}\",\"pinned_for_s\":{}}}",
                    json_escape(&r.model),
                    r.pinned_for_s
                ));
            }
            out.push(']');
        }
        out.push_str("],\"link_transfers\":[");
        for (i, t) in self.link_transfers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_string());
        }
        out.push_str("],\"link_bytes\":[");
        for (i, b) in self.link_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"link_busy_s\":[");
        for (i, s) in self.link_busy_s.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{s}"));
        }
        out.push_str("]}");
        out
    }
}

/// Snapshots one model's live metrics.
pub(crate) fn snapshot_model(name: &str, m: &ModelMetrics) -> ModelSnapshot {
    // One lock acquisition for both the summary and the raw histogram so
    // the two views of latency agree sample-for-sample.
    let (latency, latency_hist) = {
        let h = m.latency.lock();
        (h.summary(), h.clone())
    };
    ModelSnapshot {
        model: name.to_owned(),
        submitted: m.submitted.load(Ordering::Relaxed),
        completed: m.completed.load(Ordering::Relaxed),
        shed: m.shed.load(Ordering::Relaxed),
        failed: m.failed.load(Ordering::Relaxed),
        retries: m.retries.load(Ordering::Relaxed),
        batches: m.batches.load(Ordering::Relaxed),
        batched_requests: m.batched_requests.load(Ordering::Relaxed),
        latency,
        latency_hist,
        npu_cycles: m.npu_cycles.load(Ordering::Relaxed),
        npu_macs: m.npu_macs.load(Ordering::Relaxed),
        npu_dep_stall_cycles: m.npu_dep_stall_cycles.load(Ordering::Relaxed),
        npu_resource_stall_cycles: m.npu_resource_stall_cycles.load(Ordering::Relaxed),
        queue_wait: m.queue_wait.lock().summary(),
        service: m.service.lock().summary(),
        network: m.network.lock().summary(),
    }
}

/// Renders the whole server's live metrics as a Prometheus text
/// exposition (format 0.0.4). Counter families carry one series per
/// model; request-time histograms render the live bucket layout.
type CounterCol = (&'static str, &'static str, fn(&ModelMetrics) -> u64);
type HistogramCol = (
    &'static str,
    &'static str,
    fn(&ModelMetrics) -> &Mutex<Histogram>,
);

pub(crate) fn render_prometheus(
    models: &[(&str, &ModelMetrics)],
    workers: &[WorkerRow],
    links: &[LinkRow],
) -> String {
    use bw_trace::Exposition;
    let mut e = Exposition::new();
    let counters: [CounterCol; 11] = [
        ("bw_requests_submitted_total", "Requests admitted.", |m| {
            m.submitted.load(Ordering::Relaxed)
        }),
        (
            "bw_requests_completed_total",
            "Requests answered with an output.",
            |m| m.completed.load(Ordering::Relaxed),
        ),
        (
            "bw_requests_shed_total",
            "Requests shed at admission.",
            |m| m.shed.load(Ordering::Relaxed),
        ),
        (
            "bw_requests_failed_total",
            "Requests failed after admission.",
            |m| m.failed.load(Ordering::Relaxed),
        ),
        (
            "bw_requests_retries_total",
            "Failover retries dispatched.",
            |m| m.retries.load(Ordering::Relaxed),
        ),
        (
            "bw_batches_total",
            "Coalesced multi-column dispatches issued.",
            |m| m.batches.load(Ordering::Relaxed),
        ),
        (
            "bw_batched_requests_total",
            "Requests served inside a coalesced dispatch.",
            |m| m.batched_requests.load(Ordering::Relaxed),
        ),
        (
            "bw_npu_cycles_total",
            "NPU cycles attributed to completed requests.",
            |m| m.npu_cycles.load(Ordering::Relaxed),
        ),
        (
            "bw_npu_macs_total",
            "MVM multiply-accumulates attributed to completed requests.",
            |m| m.npu_macs.load(Ordering::Relaxed),
        ),
        (
            "bw_npu_dep_stall_cycles_total",
            "Dependency-stall cycles attributed to completed requests.",
            |m| m.npu_dep_stall_cycles.load(Ordering::Relaxed),
        ),
        (
            "bw_npu_resource_stall_cycles_total",
            "Resource-stall cycles attributed to completed requests.",
            |m| m.npu_resource_stall_cycles.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, read) in counters {
        e.counter(name, help);
        for &(model, m) in models {
            e.sample(name, &[("model", model)], read(m) as f64);
        }
    }
    let histograms: [HistogramCol; 4] = [
        (
            "bw_request_latency_seconds",
            "End-to-end latency of completed requests.",
            |m| &m.latency,
        ),
        (
            "bw_request_queue_wait_seconds",
            "Queue wait of completed requests (winning attempt).",
            |m| &m.queue_wait,
        ),
        (
            "bw_request_service_seconds",
            "NPU service time of completed requests.",
            |m| &m.service,
        ),
        (
            "bw_request_network_seconds",
            "Modeled network time of completed requests.",
            |m| &m.network,
        ),
    ];
    for (name, help, pick) in &histograms {
        let mut first = true;
        for &(model, m) in models {
            let h = pick(m).lock();
            if first {
                e.histogram(
                    name,
                    help,
                    &[("model", model)],
                    &h.cumulative_buckets(),
                    h.sum_s(),
                    h.count(),
                );
                first = false;
            } else {
                e.histogram_series(
                    name,
                    &[("model", model)],
                    &h.cumulative_buckets(),
                    h.sum_s(),
                    h.count(),
                );
            }
        }
    }
    e.gauge("bw_worker_queue_depth", "Jobs queued or executing.");
    for w in workers {
        let id = w.id.to_string();
        e.sample(
            "bw_worker_queue_depth",
            &[("worker", id.as_str())],
            w.queue_depth as f64,
        );
    }
    e.gauge("bw_worker_alive", "Worker liveness (1 = accepting work).");
    for w in workers {
        let id = w.id.to_string();
        e.sample(
            "bw_worker_alive",
            &[("worker", id.as_str())],
            if w.alive { 1.0 } else { 0.0 },
        );
    }
    e.counter("bw_worker_processed_total", "Jobs fully processed.");
    for w in workers {
        let id = w.id.to_string();
        e.sample(
            "bw_worker_processed_total",
            &[("worker", id.as_str())],
            w.processed as f64,
        );
    }
    e.gauge(
        "bw_worker_model_pinned",
        "Model residency (1 = pinned on the worker).",
    );
    for w in workers {
        let id = w.id.to_string();
        for r in &w.resident {
            e.sample(
                "bw_worker_model_pinned",
                &[("worker", id.as_str()), ("model", r.model.as_str())],
                1.0,
            );
        }
    }
    e.gauge(
        "bw_worker_pin_age_seconds",
        "Seconds each pinned model has been resident on the worker.",
    );
    for w in workers {
        let id = w.id.to_string();
        for r in &w.resident {
            e.sample(
                "bw_worker_pin_age_seconds",
                &[("worker", id.as_str()), ("model", r.model.as_str())],
                r.pinned_for_s,
            );
        }
    }
    e.counter(
        "bw_link_transfers_total",
        "Modeled network transfer legs charged per client-worker link.",
    );
    for l in links {
        let id = l.id.to_string();
        e.sample(
            "bw_link_transfers_total",
            &[("link", id.as_str())],
            l.transfers as f64,
        );
    }
    e.counter(
        "bw_link_bytes_total",
        "Payload bytes moved per client-worker link.",
    );
    for l in links {
        let id = l.id.to_string();
        e.sample(
            "bw_link_bytes_total",
            &[("link", id.as_str())],
            l.bytes as f64,
        );
    }
    e.counter(
        "bw_link_busy_seconds_total",
        "Modeled busy time per client-worker link.",
    );
    for l in links {
        let id = l.id.to_string();
        e.sample(
            "bw_link_busy_seconds_total",
            &[("link", id.as_str())],
            l.busy_s,
        );
    }
    e.finish()
}

/// One worker's gauge readings for the Prometheus exposition.
pub(crate) struct WorkerRow {
    pub id: usize,
    pub queue_depth: usize,
    pub alive: bool,
    pub processed: u64,
    pub resident: Vec<ModelResidency>,
}

/// One client↔worker link's counter readings for the Prometheus
/// exposition.
pub(crate) struct LinkRow {
    pub id: usize,
    pub transfers: u64,
    pub bytes: u64,
    pub busy_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_resolution() {
        let mut h = Histogram::default();
        for _ in 0..990 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(50e-3);
        }
        // p50 within one bucket (±25%) of 1 ms; p999 near 50 ms.
        let p50 = h.quantile(0.50);
        assert!((0.75e-3..=1.3e-3).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!((35e-3..=65e-3).contains(&p999), "p999 {p999}");
        assert_eq!(h.quantile(0.0), 1e-3);
        assert_eq!(h.quantile(1.0), 50e-3);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_summary_matches_quantiles() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 50.5e-4).abs() < 1e-9);
        assert_eq!(s.p50_s, h.quantile(0.5));
        assert_eq!(s.max_s, 1e-2);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn quantile_edges_are_documented_sentinels() {
        // Empty histogram: the 0.0 sentinel for every q, NaN included.
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0, -2.0, 3.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0.0, "empty at q={q}");
        }
        assert!(h.cumulative_buckets().is_empty());
        assert_eq!((h.min_s(), h.max_s(), h.sum_s()), (0.0, 0.0, 0.0));
        // Non-empty: q clamps to [0,1] (exact min/max at the extremes)
        // and NaN is treated as 0.0.
        let mut h = Histogram::default();
        h.record(2e-3);
        h.record(7e-3);
        assert_eq!(h.quantile(0.0), 2e-3);
        assert_eq!(h.quantile(-5.0), 2e-3);
        assert_eq!(h.quantile(f64::NAN), 2e-3);
        assert_eq!(h.quantile(1.0), 7e-3);
        assert_eq!(h.quantile(9.0), 7e-3);
        assert_eq!((h.min_s(), h.max_s()), (2e-3, 7e-3));
        assert!((h.sum_s() - 9e-3).abs() < 1e-12);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for s in [0.5e-6, 3e-6, 3e-6, 1e-3] {
            h.record(s);
        }
        let b = h.cumulative_buckets();
        assert_eq!(b.last().map(|&(_, c)| c), Some(4));
        for w in b.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds increase");
            assert!(w[0].1 <= w[1].1, "counts cumulative");
        }
        // Every recorded sample is ≤ its covering bound's bucket edge.
        assert!(b[0].0 >= 1e-6);
    }

    #[test]
    fn attribution_accumulates_counters_and_split_histograms() {
        let m = ModelMetrics::default();
        let mut stats = bw_core::RunStats {
            cycles: 1000,
            mvm_macs: 4096,
            dep_stall_cycles: 100,
            resource_stall_cycles: 50,
            ..Default::default()
        };
        m.record_attribution(1e-3, 4e-3, 0.0, &stats);
        stats.cycles = 500;
        m.record_attribution(2e-3, 2e-3, 3e-4, &stats);
        let s = snapshot_model("m", &m);
        assert_eq!(s.npu_cycles, 1500);
        assert_eq!(s.npu_macs, 8192);
        assert_eq!(s.npu_dep_stall_cycles, 200);
        assert_eq!(s.npu_resource_stall_cycles, 100);
        assert_eq!(s.queue_wait.count, 2);
        assert_eq!(s.service.count, 2);
        assert_eq!(s.queue_wait.max_s, 2e-3);
        assert_eq!(s.service.max_s, 4e-3);
        assert_eq!(s.network.count, 2);
        assert_eq!(s.network.max_s, 3e-4);
    }

    #[test]
    fn prometheus_exposition_round_trips_the_validator() {
        let m = ModelMetrics::default();
        m.submitted.store(2, Ordering::Relaxed);
        m.record_completed(2e-3);
        m.record_attribution(1e-4, 19e-4, 2e-4, &bw_core::RunStats::default());
        let workers = [
            WorkerRow {
                id: 0,
                queue_depth: 1,
                alive: true,
                processed: 2,
                resident: vec![ModelResidency {
                    model: "mlp".to_owned(),
                    pinned_for_s: 12.5,
                }],
            },
            WorkerRow {
                id: 1,
                queue_depth: 0,
                alive: false,
                processed: 0,
                resident: Vec::new(),
            },
        ];
        let links = [
            LinkRow {
                id: 0,
                transfers: 4,
                bytes: 1024,
                busy_s: 2e-4,
            },
            LinkRow {
                id: 1,
                transfers: 0,
                bytes: 0,
                busy_s: 0.0,
            },
        ];
        let text = render_prometheus(&[("mlp", &m)], &workers, &links);
        let n = bw_trace::validate_exposition(&text).expect("valid exposition");
        assert!(n >= 9 + 6, "sample lines: {n}");
        assert!(text.contains("bw_requests_submitted_total{model=\"mlp\"} 2"));
        assert!(text.contains("bw_batches_total{model=\"mlp\"} 0"));
        assert!(text.contains("bw_batched_requests_total{model=\"mlp\"} 0"));
        assert!(text.contains("# TYPE bw_request_latency_seconds histogram"));
        assert!(text.contains("bw_request_latency_seconds_count{model=\"mlp\"} 1"));
        assert!(text.contains("bw_request_network_seconds_count{model=\"mlp\"} 1"));
        assert!(text.contains("bw_worker_alive{worker=\"1\"} 0"));
        assert!(text.contains("bw_worker_model_pinned{worker=\"0\",model=\"mlp\"} 1"));
        assert!(text.contains("bw_worker_pin_age_seconds{worker=\"0\",model=\"mlp\"} 12.5"));
        assert!(text.contains("bw_link_transfers_total{link=\"0\"} 4"));
        assert!(text.contains("bw_link_bytes_total{link=\"0\"} 1024"));
        assert!(text.contains("bw_link_busy_seconds_total{link=\"1\"} 0"));
    }

    #[test]
    fn diff_recovers_the_window_distribution() {
        // Record a "before" epoch, snapshot, record a second epoch with a
        // very different shape, snapshot again: the diff must describe
        // only the second epoch.
        let mut live = Histogram::default();
        for _ in 0..100 {
            live.record(1e-3);
        }
        let before = live.clone();
        for _ in 0..50 {
            live.record(20e-3);
        }
        let window = Histogram::diff(&live, &before);
        assert_eq!(window.count(), 50);
        // Every window sample was 20 ms; the p50 must resolve there
        // (within bucket resolution), unpolluted by the 1 ms epoch.
        let p50 = window.quantile(0.5);
        assert!((15e-3..=25e-3).contains(&p50), "p50 {p50}");
        assert!((window.sum_s() - 50.0 * 20e-3).abs() < 1e-6);
        assert_eq!(window.count_over(10e-3), 50);
        assert_eq!(window.count_over(30e-3), 0);
    }

    #[test]
    fn diff_and_merge_edge_cases() {
        let mut a = Histogram::default();
        a.record(2e-3);
        a.record(8e-3);
        // Identical snapshots diff to an empty histogram with the
        // documented empty sentinels.
        let empty = Histogram::diff(&a, &a);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(
            (empty.min_s(), empty.max_s(), empty.sum_s()),
            (0.0, 0.0, 0.0)
        );
        // Diff against a fresh histogram is the identity on counts.
        let same = Histogram::diff(&a, &Histogram::default());
        assert_eq!(same.count(), 2);
        assert_eq!(same.cumulative_buckets(), a.cumulative_buckets());
        // Merge with empty is a no-op in both directions.
        let mut b = a.clone();
        b.merge(&Histogram::default());
        assert_eq!(b, a);
        let mut e = Histogram::default();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!((e.min_s(), e.max_s()), (a.min_s(), a.max_s()));
        // Merging two windows is equivalent to recording both streams.
        let mut w1 = Histogram::default();
        let mut w2 = Histogram::default();
        let mut all = Histogram::default();
        for s in [1e-4, 5e-4, 2e-3] {
            w1.record(s);
            all.record(s);
        }
        for s in [7e-3, 9e-2] {
            w2.record(s);
            all.record(s);
        }
        w1.merge(&w2);
        // Sums can differ by an ulp from addition order; everything else
        // must match exactly.
        assert!((w1.sum_s() - all.sum_s()).abs() < 1e-12);
        assert_eq!(w1.cumulative_buckets(), all.cumulative_buckets());
        assert_eq!(
            (w1.count(), w1.min_s(), w1.max_s()),
            (all.count(), all.min_s(), all.max_s())
        );
    }

    #[test]
    fn count_over_respects_bucket_resolution() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(1e-3);
        }
        for _ in 0..3 {
            h.record(100e-3);
        }
        // Thresholds far from any bucket edge are exact.
        assert_eq!(h.count_over(10e-3), 3);
        assert_eq!(h.count_over(500e-3), 0);
        assert_eq!(h.count_over(1e-7), 13);
        // An empty histogram has nothing over any threshold.
        assert_eq!(Histogram::default().count_over(0.0), 0);
    }

    #[test]
    fn out_of_range_latencies_clamp_to_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 1e9);
    }

    #[test]
    fn snapshot_json_shape() {
        let m = ModelMetrics::default();
        m.submitted.store(3, Ordering::Relaxed);
        m.record_completed(2e-3);
        m.shed.fetch_add(1, Ordering::Relaxed);
        m.failed.fetch_add(1, Ordering::Relaxed);
        let snap = MetricsSnapshot {
            models: vec![snapshot_model("mlp \"a\"", &m)],
            queue_depths: vec![0, 2],
            workers_alive: vec![true, false],
            worker_processed: vec![5, 0],
            worker_models: vec![
                vec![ModelResidency {
                    model: "mlp \"a\"".to_owned(),
                    pinned_for_s: 3.25,
                }],
                Vec::new(),
            ],
            link_transfers: vec![3, 0],
            link_bytes: vec![256, 0],
            link_busy_s: vec![1.5e-4, 0.0],
        };
        assert_eq!(snap.models[0].accounted(), 3);
        let j = snap.to_json();
        assert!(j.contains("\"submitted\":3"));
        assert!(j.contains("\"batches\":0"));
        assert!(j.contains("\"batched_requests\":0"));
        assert!(j.contains("\\\"a\\\""));
        assert!(j.contains("\"queue_depths\":[0,2]"));
        assert!(j.contains("\"workers_alive\":[true,false]"));
        assert!(j.contains("\"worker_processed\":[5,0]"));
        assert!(j.contains("\"pinned_for_s\":3.25"));
        assert!(j.contains("],[]]"));
        assert!(j.contains("\"link_transfers\":[3,0]"));
        assert!(j.contains("\"link_bytes\":[256,0]"));
        assert!(j.contains("\"link_busy_s\":[0.00015,0]"));
        assert!(j.contains("\"network\""));
        assert!(j.contains("\"p99_s\""));
    }
}
