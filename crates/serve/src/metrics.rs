//! The serving metrics layer: per-model counters and latency histograms
//! with tail percentiles, queue-depth gauges, and a JSON snapshot — the
//! observability §II-A's resource manager relies on to publish healthy
//! instances.

use std::sync::atomic::{AtomicU64, Ordering};

use bw_system::LatencySummary;
use parking_lot::Mutex;

/// Histogram bucket layout: geometric buckets from 1 µs upward, ×1.25 per
/// bucket. 96 buckets reach past 2000 s — far beyond any deadline this
/// runtime accepts — with ≤ 12% quantile resolution error.
const BUCKET_FLOOR_S: f64 = 1e-6;
const BUCKET_GROWTH: f64 = 1.25;
const BUCKETS: usize = 96;

/// A log-bucketed latency histogram. Records are seconds; quantiles come
/// back as the geometric midpoint of the owning bucket, so resolution is
/// bounded by the bucket growth factor, not sample count.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    min_s: f64,
    max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }
}

impl Histogram {
    fn bucket(latency_s: f64) -> usize {
        if latency_s <= BUCKET_FLOOR_S {
            return 0;
        }
        let idx = (latency_s / BUCKET_FLOOR_S).ln() / BUCKET_GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, latency_s: f64) {
        self.counts[Self::bucket(latency_s)] += 1;
        self.count += 1;
        self.sum_s += latency_s;
        self.min_s = self.min_s.min(latency_s);
        self.max_s = self.max_s.max(latency_s);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile (`0 ≤ q ≤ 1`), resolved to the geometric
    /// midpoint of the owning bucket (exact min/max at the extremes).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min_s;
        }
        if q >= 1.0 {
            return self.max_s;
        }
        let rank = ((self.count - 1) as f64 * q) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let lo = BUCKET_FLOOR_S * BUCKET_GROWTH.powi(i as i32);
                let hi = lo * BUCKET_GROWTH;
                return (lo * hi).sqrt().clamp(self.min_s, self.max_s);
            }
        }
        self.max_s
    }

    /// Summarizes the histogram in the shared `bw-system` vocabulary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count as usize,
            mean_s: if self.count == 0 {
                0.0
            } else {
                self.sum_s / self.count as f64
            },
            p50_s: self.quantile(0.50),
            p95_s: self.quantile(0.95),
            p99_s: self.quantile(0.99),
            p999_s: self.quantile(0.999),
            max_s: if self.count == 0 { 0.0 } else { self.max_s },
        }
    }
}

/// Live counters for one registered model. All increments are lock-free;
/// the histogram takes a short uncontended lock per completion.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Requests admitted (past validation).
    pub submitted: AtomicU64,
    /// Requests answered with an output.
    pub completed: AtomicU64,
    /// Requests shed at admission (every replica queue full).
    pub shed: AtomicU64,
    /// Requests that failed after admission (deadline, faults, shutdown).
    pub failed: AtomicU64,
    /// Failover retries dispatched (attempts beyond each first).
    pub retries: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: Mutex<Histogram>,
}

impl ModelMetrics {
    /// Records a completion with its end-to-end latency.
    pub fn record_completed(&self, latency_s: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().record(latency_s);
    }
}

/// A point-in-time reading of one model's metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSnapshot {
    /// The model name.
    pub model: String,
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests failed after admission.
    pub failed: u64,
    /// Failover retries dispatched.
    pub retries: u64,
    /// Latency distribution of completed requests.
    pub latency: LatencySummary,
}

impl ModelSnapshot {
    /// Requests the metrics account for: `completed + shed + failed`.
    /// Equals `submitted` whenever no request is still in flight.
    pub fn accounted(&self) -> u64 {
        self.completed + self.shed + self.failed
    }
}

/// A point-in-time reading of the whole server.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-model readings, in registry order.
    pub models: Vec<ModelSnapshot>,
    /// Per-worker outstanding requests (queued + executing), in worker
    /// order.
    pub queue_depths: Vec<usize>,
    /// Per-worker liveness, in worker order.
    pub workers_alive: Vec<bool>,
    /// Per-worker jobs fully processed, in worker order.
    pub worker_processed: Vec<u64>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a JSON object (no external
    /// dependencies; strings escaped per RFC 8259).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"models\":[");
        for (i, m) in self.models.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"model\":\"{}\",\"submitted\":{},\"completed\":{},\"shed\":{},\
                 \"failed\":{},\"retries\":{},\"latency\":{}}}",
                json_escape(&m.model),
                m.submitted,
                m.completed,
                m.shed,
                m.failed,
                m.retries,
                m.latency.to_json()
            ));
        }
        out.push_str("],\"queue_depths\":[");
        for (i, d) in self.queue_depths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],\"workers_alive\":[");
        for (i, a) in self.workers_alive.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(if *a { "true" } else { "false" });
        }
        out.push_str("],\"worker_processed\":[");
        for (i, p) in self.worker_processed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// Snapshots one model's live metrics.
pub(crate) fn snapshot_model(name: &str, m: &ModelMetrics) -> ModelSnapshot {
    ModelSnapshot {
        model: name.to_owned(),
        submitted: m.submitted.load(Ordering::Relaxed),
        completed: m.completed.load(Ordering::Relaxed),
        shed: m.shed.load(Ordering::Relaxed),
        failed: m.failed.load(Ordering::Relaxed),
        retries: m.retries.load(Ordering::Relaxed),
        latency: m.latency.lock().summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_resolution() {
        let mut h = Histogram::default();
        for _ in 0..990 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(50e-3);
        }
        // p50 within one bucket (±25%) of 1 ms; p999 near 50 ms.
        let p50 = h.quantile(0.50);
        assert!((0.75e-3..=1.3e-3).contains(&p50), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!((35e-3..=65e-3).contains(&p999), "p999 {p999}");
        assert_eq!(h.quantile(0.0), 1e-3);
        assert_eq!(h.quantile(1.0), 50e-3);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_summary_matches_quantiles() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 50.5e-4).abs() < 1e-9);
        assert_eq!(s.p50_s, h.quantile(0.5));
        assert_eq!(s.max_s, 1e-2);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn out_of_range_latencies_clamp_to_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 1e9);
    }

    #[test]
    fn snapshot_json_shape() {
        let m = ModelMetrics::default();
        m.submitted.store(3, Ordering::Relaxed);
        m.record_completed(2e-3);
        m.shed.fetch_add(1, Ordering::Relaxed);
        m.failed.fetch_add(1, Ordering::Relaxed);
        let snap = MetricsSnapshot {
            models: vec![snapshot_model("mlp \"a\"", &m)],
            queue_depths: vec![0, 2],
            workers_alive: vec![true, false],
            worker_processed: vec![5, 0],
        };
        assert_eq!(snap.models[0].accounted(), 3);
        let j = snap.to_json();
        assert!(j.contains("\"submitted\":3"));
        assert!(j.contains("\\\"a\\\""));
        assert!(j.contains("\"queue_depths\":[0,2]"));
        assert!(j.contains("\"workers_alive\":[true,false]"));
        assert!(j.contains("\"worker_processed\":[5,0]"));
        assert!(j.contains("\"p99_s\""));
    }
}
