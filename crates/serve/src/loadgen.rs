//! Open-loop load generation against a live server.
//!
//! Replays an [`ArrivalProcess`] (the same arrival model `bw-system`
//! simulates analytically) against an in-process [`Client`]: requests are
//! issued at their scheduled arrival times *regardless of completions* —
//! the open-loop discipline that actually exposes queueing, shedding, and
//! tail latency.
//!
//! The generator pre-spawns a fixed pool of sender threads and stripes
//! the arrival schedule across them, so thread-spawn cost never sits on
//! the request path. A sender blocked on a slow request delays only its
//! own stripe's later arrivals (the standard fixed-concurrency
//! approximation of an open loop); with the pool sized well above the
//! expected in-flight count the approximation error is negligible.
//! Results fold into a [`LoadgenReport`] whose latency summary shares its
//! vocabulary ([`LatencySummary`]) with the analytical simulator, so the
//! two are comparable field-for-field.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bw_system::{ArrivalProcess, LatencySummary, LoadSchedule};
use parking_lot::Mutex;

use crate::server::Client;

/// One load-generation run's shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Registered model to drive.
    pub model: String,
    /// The arrival process replayed on the wall clock (used when no
    /// `schedule` is set).
    pub arrivals: ArrivalProcess,
    /// Number of requests to issue (ignored when a `schedule` is set —
    /// the schedule's rate profile decides the count).
    pub requests: usize,
    /// Per-request end-to-end deadline.
    pub deadline: Duration,
    /// Seed for arrival-time generation (and input variation).
    pub seed: u64,
    /// Optional time-varying offered load: when set, arrivals follow
    /// this piecewise-linear rate profile (steps and ramps) instead of
    /// the stationary `arrivals`/`requests` pair.
    pub schedule: Option<LoadSchedule>,
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// The driven model.
    pub model: String,
    /// Requests issued (admitted or not).
    pub offered: usize,
    /// Requests that produced an output.
    pub completed: u64,
    /// Requests shed at admission (queues saturated).
    pub shed: u64,
    /// Requests that failed after admission (deadline, fault, no replica).
    pub failed: u64,
    /// Requests rejected before admission (unknown model, bad input).
    pub rejected: u64,
    /// Failover retries observed across completed requests.
    pub retries: u64,
    /// Wall-clock duration of the run in seconds.
    pub duration_s: f64,
    /// Completed requests per wall-clock second.
    pub goodput_rps: f64,
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
}

impl LoadgenReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"model\":\"{}\",\"offered\":{},\"completed\":{},",
                "\"shed\":{},\"failed\":{},\"rejected\":{},\"retries\":{},",
                "\"duration_s\":{:.6},\"goodput_rps\":{:.3},\"latency\":{}}}"
            ),
            self.model,
            self.offered,
            self.completed,
            self.shed,
            self.failed,
            self.rejected,
            self.retries,
            self.duration_s,
            self.goodput_rps,
            self.latency.to_json(),
        )
    }
}

/// Sender threads the generator stripes arrivals across: enough to keep
/// the expected in-flight count covered, capped so a small machine is not
/// drowned in scheduler churn.
fn sender_threads() -> usize {
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    (4 * ncpu + 8).min(48)
}

/// Replays `cfg` against `client`, blocking until every request settles.
pub fn run_loadgen(client: &Client, cfg: &LoadgenConfig) -> LoadgenReport {
    let offsets = match &cfg.schedule {
        Some(schedule) => schedule.generate(cfg.seed),
        None => cfg.arrivals.generate(cfg.requests, cfg.seed),
    };
    let offered = offsets.len();
    // Probe the model's input width once; an unknown model surfaces as
    // `rejected` on every request instead of a panic here.
    let input_dim = client.input_dim_of(&cfg.model).unwrap_or(0);

    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(offered)));

    let senders = sender_threads().min(offered.max(1));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(senders);
    for stripe in 0..senders {
        // Stripe `stripe` fires arrivals stripe, stripe+senders, ... —
        // the schedule is already ascending, so each stripe is too.
        let schedule: Vec<(usize, f64)> = offsets
            .iter()
            .enumerate()
            .skip(stripe)
            .step_by(senders)
            .map(|(i, &t)| (i, t))
            .collect();
        let client = client.clone();
        let model = cfg.model.clone();
        let deadline = cfg.deadline;
        let seed = cfg.seed;
        let completed = Arc::clone(&completed);
        let shed = Arc::clone(&shed);
        let failed = Arc::clone(&failed);
        let rejected = Arc::clone(&rejected);
        let retries = Arc::clone(&retries);
        let latencies = Arc::clone(&latencies);
        handles.push(std::thread::spawn(move || {
            for (i, offset_s) in schedule {
                // Open loop: fire at the scheduled arrival whether or not
                // earlier requests (on any stripe) have finished.
                let due = start + Duration::from_secs_f64(offset_s);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let input = crate::demo::demo_input(input_dim.max(1), seed + i as u64);
                match client.call(&model, &input, deadline) {
                    Ok(resp) => {
                        completed.fetch_add(1, Ordering::Relaxed);
                        retries.fetch_add(u64::from(resp.retries), Ordering::Relaxed);
                        latencies.lock().push(resp.latency.as_secs_f64());
                    }
                    Err(e) if e.is_shed() => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if !e.was_admitted() => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let duration_s = start.elapsed().as_secs_f64();

    let lat = latencies.lock();
    let completed = completed.load(Ordering::Relaxed);
    LoadgenReport {
        model: cfg.model.clone(),
        offered,
        completed,
        shed: shed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        duration_s,
        goodput_rps: if duration_s > 0.0 {
            completed as f64 / duration_s
        } else {
            0.0
        },
        latency: LatencySummary::from_unsorted(&lat),
    }
}
