//! The model registry: named, compiled artifacts a server publishes.
//!
//! §II-B compiles a model once into firmware + BFP weights; §II-A then
//! publishes it as a hardware microservice. The registry is that published
//! catalog: it owns the [`ModelArtifact`]s, assigns each a dense index
//! (the worker-side pin slot), and answers name lookups at admission.

use std::sync::Arc;

use bw_gir::ModelArtifact;

/// Error produced while building a registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// Two artifacts share a name.
    Duplicate(
        /// The colliding name.
        String,
    ),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => {
                write!(f, "model `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The published model catalog. Immutable once the server spawns — every
/// worker pins exactly this set.
#[derive(Clone, Debug, Default)]
pub struct ModelRegistry {
    models: Vec<Arc<ModelArtifact>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers an artifact under its own name, returning its dense
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] if the name is taken.
    pub fn register(&mut self, artifact: ModelArtifact) -> Result<usize, RegistryError> {
        if self.index_of(artifact.name()).is_some() {
            return Err(RegistryError::Duplicate(artifact.name().to_owned()));
        }
        self.models.push(Arc::new(artifact));
        Ok(self.models.len() - 1)
    }

    /// The dense index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name() == name)
    }

    /// The artifact at a dense index.
    pub fn get(&self, index: usize) -> Option<&Arc<ModelArtifact>> {
        self.models.get(index)
    }

    /// The artifact registered under `name`.
    pub fn lookup(&self, name: &str) -> Option<&Arc<ModelArtifact>> {
        self.index_of(name).and_then(|i| self.get(i))
    }

    /// Registered artifacts, in index order.
    pub fn artifacts(&self) -> &[Arc<ModelArtifact>] {
        &self.models
    }

    /// Registered names, in index order.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::mlp_artifact;

    #[test]
    fn register_lookup_round_trip() {
        let mut reg = ModelRegistry::new();
        let a = mlp_artifact("a", &[8, 8], 0);
        let b = mlp_artifact("b", &[8, 4], 1);
        assert_eq!(reg.register(a).unwrap(), 0);
        assert_eq!(reg.register(b).unwrap(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.index_of("b"), Some(1));
        assert_eq!(reg.lookup("a").unwrap().output_dim(), 8);
        assert!(reg.lookup("c").is_none());
        assert_eq!(reg.names(), vec!["a", "b"]);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register(mlp_artifact("m", &[8, 8], 0)).unwrap();
        assert_eq!(
            reg.register(mlp_artifact("m", &[8, 4], 1)).unwrap_err(),
            RegistryError::Duplicate("m".into())
        );
        assert_eq!(reg.len(), 1);
    }
}
