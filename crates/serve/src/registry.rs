//! The model registry: named, compiled artifacts a server publishes.
//!
//! §II-B compiles a model once into firmware + BFP weights; §II-A then
//! publishes it as a hardware microservice. The registry is that published
//! catalog: it owns the [`ModelArtifact`]s, assigns each a dense index
//! (the worker-side pin slot), and answers name lookups at admission.
//!
//! A *sharded* model ([`bw_gir::ShardedArtifact`]) registers as a
//! [`ShardGroup`]: its member artifacts become ordinary registry slots
//! (named `model#g0s1`, `model#seg0`, …) so they pin, dispatch, and meter
//! like any model, while the group itself owns the published name clients
//! address. Admission of the group name drives the scatter/gather
//! coordinator over the member slots.

use std::sync::Arc;

use bw_gir::{ModelArtifact, ShardSegment, ShardedArtifact};

/// Error produced while building a registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// Two artifacts share a name.
    Duplicate(
        /// The colliding name.
        String,
    ),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => {
                write!(f, "model `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One segment of a shard group's execution plan, holding dense registry
/// indices of the member artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupSegment {
    /// A whole sub-model served by one worker per attempt.
    Single(
        /// The member's registry index.
        usize,
    ),
    /// A scatter/gather shard set: one dispatch per member, to distinct
    /// workers, outputs concatenated in member order.
    Sharded(
        /// Member registry indices, in shard order.
        Vec<usize>,
    ),
}

impl GroupSegment {
    /// Member registry indices in execution order.
    pub fn members(&self) -> Vec<usize> {
        match self {
            GroupSegment::Single(m) => vec![*m],
            GroupSegment::Sharded(v) => v.clone(),
        }
    }
}

/// A published sharded model: the client-visible name plus the ordered
/// segment plan over member registry slots.
#[derive(Clone, Debug)]
pub struct ShardGroup {
    /// The published name clients address.
    pub name: String,
    /// Input dimension one request consumes.
    pub input_dim: usize,
    /// Output dimension one request produces.
    pub output_dim: usize,
    /// Execution plan, in pipeline order.
    pub segments: Vec<GroupSegment>,
}

impl ShardGroup {
    /// The widest segment: distinct workers one request needs at once.
    pub fn max_width(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                GroupSegment::Single(_) => 1,
                GroupSegment::Sharded(v) => v.len(),
            })
            .max()
            .unwrap_or(1)
    }
}

/// The published model catalog. Immutable once the server spawns — every
/// worker pins exactly this set.
#[derive(Clone, Debug, Default)]
pub struct ModelRegistry {
    models: Vec<Arc<ModelArtifact>>,
    groups: Vec<ShardGroup>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers an artifact under its own name, returning its dense
    /// index.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] if the name is taken.
    pub fn register(&mut self, artifact: ModelArtifact) -> Result<usize, RegistryError> {
        if self.name_taken(artifact.name()) {
            return Err(RegistryError::Duplicate(artifact.name().to_owned()));
        }
        self.models.push(Arc::new(artifact));
        Ok(self.models.len() - 1)
    }

    /// Registers a sharded model: its member artifacts become ordinary
    /// registry slots (pinned asymmetrically by the server) and the group
    /// itself is published under the sharded artifact's name. Returns the
    /// group's dense index.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::Duplicate`] if the group name or any
    /// member name is taken; nothing is registered on error.
    pub fn register_sharded(&mut self, sharded: ShardedArtifact) -> Result<usize, RegistryError> {
        if self.name_taken(sharded.name()) {
            return Err(RegistryError::Duplicate(sharded.name().to_owned()));
        }
        for segment in sharded.segments() {
            for member in segment.members() {
                if self.name_taken(member.name()) {
                    return Err(RegistryError::Duplicate(member.name().to_owned()));
                }
            }
        }
        let mut segments = Vec::with_capacity(sharded.segments().len());
        for segment in sharded.segments() {
            segments.push(match segment {
                ShardSegment::Single(a) => {
                    GroupSegment::Single(self.register(a.clone()).expect("names pre-checked"))
                }
                ShardSegment::Sharded(members) => GroupSegment::Sharded(
                    members
                        .iter()
                        .map(|a| self.register(a.clone()).expect("names pre-checked"))
                        .collect(),
                ),
            });
        }
        self.groups.push(ShardGroup {
            name: sharded.name().to_owned(),
            input_dim: sharded.input_dim(),
            output_dim: sharded.output_dim(),
            segments,
        });
        Ok(self.groups.len() - 1)
    }

    /// Whether `name` names a registered model or group.
    fn name_taken(&self, name: &str) -> bool {
        self.index_of(name).is_some() || self.group_index_of(name).is_some()
    }

    /// The dense index of the group published as `name`, if any.
    pub fn group_index_of(&self, name: &str) -> Option<usize> {
        self.groups.iter().position(|g| g.name == name)
    }

    /// The group at a dense index.
    pub fn group(&self, index: usize) -> Option<&ShardGroup> {
        self.groups.get(index)
    }

    /// Published shard groups, in index order.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// The dense index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name() == name)
    }

    /// The artifact at a dense index.
    pub fn get(&self, index: usize) -> Option<&Arc<ModelArtifact>> {
        self.models.get(index)
    }

    /// The artifact registered under `name`.
    pub fn lookup(&self, name: &str) -> Option<&Arc<ModelArtifact>> {
        self.index_of(name).and_then(|i| self.get(i))
    }

    /// Registered artifacts, in index order.
    pub fn artifacts(&self) -> &[Arc<ModelArtifact>] {
        &self.models
    }

    /// Registered names, in index order.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty() && self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::mlp_artifact;

    #[test]
    fn register_lookup_round_trip() {
        let mut reg = ModelRegistry::new();
        let a = mlp_artifact("a", &[8, 8], 0);
        let b = mlp_artifact("b", &[8, 4], 1);
        assert_eq!(reg.register(a).unwrap(), 0);
        assert_eq!(reg.register(b).unwrap(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.index_of("b"), Some(1));
        assert_eq!(reg.lookup("a").unwrap().output_dim(), 8);
        assert!(reg.lookup("c").is_none());
        assert_eq!(reg.names(), vec!["a", "b"]);
    }

    #[test]
    fn sharded_registration_publishes_group_and_members() {
        use crate::demo::{demo_config, mlp_graph};
        use bw_gir::{LowerOptions, ShardedArtifact};
        let graph = mlp_graph(&[16, 64, 8], 5);
        // 64x16=1024 params over a 600 budget -> 2 shards; the 8x64=512
        // tail layer fits whole -> one trailing Single segment.
        let sharded =
            ShardedArtifact::compile("big", &graph, 600, &demo_config(), &LowerOptions::default())
                .unwrap();
        assert!(sharded.is_sharded());
        let mut reg = ModelRegistry::new();
        reg.register(mlp_artifact("plain", &[8, 8], 0)).unwrap();
        let gidx = reg.register_sharded(sharded.clone()).unwrap();
        assert_eq!(gidx, 0);
        let group = reg.group(gidx).unwrap();
        assert_eq!(group.name, "big");
        assert_eq!((group.input_dim, group.output_dim), (16, 8));
        assert_eq!(group.max_width(), 2);
        // Members are ordinary registry slots with their shard names.
        assert!(reg.index_of("big#g0s0").is_some());
        assert!(reg.index_of("big#g0s1").is_some());
        assert!(reg.index_of("big#seg0").is_some());
        // The group name itself is not a model slot.
        assert!(reg.index_of("big").is_none());
        assert!(reg.group_index_of("big").is_some());
        // Re-registering collides on the group name.
        assert_eq!(
            reg.register_sharded(sharded).unwrap_err(),
            RegistryError::Duplicate("big".into())
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.register(mlp_artifact("m", &[8, 8], 0)).unwrap();
        assert_eq!(
            reg.register(mlp_artifact("m", &[8, 4], 1)).unwrap_err(),
            RegistryError::Duplicate("m".into())
        );
        assert_eq!(reg.len(), 1);
    }
}
