//! Worker threads: each owns one live NPU pool per pinned model.
//!
//! A worker is one disaggregated instance of the published hardware
//! microservices (§II-A): at spawn it pins registry artifacts onto its
//! own `bw-core` NPUs (fast kernels) and then drains a *bounded* request
//! queue, one batch-1 inference at a time — the BW service discipline.
//! Ordinary models pin on every worker; shard members of a scatter/gather
//! group pin only on their owning workers (distinct per shard), so the
//! pin table is sparse — a job for an unpinned slot faults and fails over.
//! Bounding the queue is what makes load shedding possible: admission
//! fails fast instead of building an unbounded backlog.
//!
//! Fault injection: a worker can be killed. The kill takes effect
//! immediately for routing (the liveness flag drops, so no new work is
//! admitted to it) and at the next queue pop for the thread, which exits
//! *without* draining — every queued job is dropped, its reply channel
//! disconnects, and the request lifecycle fails over to a replica.
//!
//! # Control plane
//!
//! The pin table is *dynamic*: the server can pin a new model replica
//! onto a running worker (paying a modeled weight-preload time), unpin
//! one, or insert a drain barrier — all via [`Control`] messages that
//! travel the same bounded FIFO queue as jobs. FIFO ordering is the
//! correctness lever: an `Unpin` enqueued after the routing flag is
//! cleared drains every job already queued for the slot before the model
//! is actually dropped, so cutover loses nothing; the ack channel turns
//! any control message into a barrier.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bw_core::{RunStats, SpanRecord};
use bw_gir::PinnedModel;
use parking_lot::{Mutex, RwLock};

/// What a worker reports back for one attempt.
#[derive(Clone, Debug)]
pub(crate) enum Completion {
    /// The attempt produced an output.
    Done {
        /// Attempt number (monotone per request).
        attempt: u32,
        /// Worker that served it.
        worker: usize,
        /// The model output.
        output: Vec<f32>,
        /// Time the job waited in the queue before this worker popped it.
        queue_wait_s: f64,
        /// Wall time the inference spent executing.
        service_s: f64,
        /// Accelerator statistics of the inference.
        stats: RunStats,
        /// NPU spans, when the job asked for span collection (empty
        /// otherwise).
        spans: Vec<SpanRecord>,
    },
    /// A coalesced batch attempt produced one output per column.
    BatchDone {
        /// Attempt number (monotone per batch).
        attempt: u32,
        /// Worker that served it.
        worker: usize,
        /// Per-column model outputs, in input order.
        outputs: Vec<Vec<f32>>,
        /// Time the batch waited in the queue before this worker popped
        /// it.
        queue_wait_s: f64,
        /// Wall time the whole multi-column inference spent executing.
        service_s: f64,
        /// Accelerator statistics accumulated over every column.
        stats: RunStats,
        /// NPU spans, when the job asked for span collection (empty
        /// otherwise).
        spans: Vec<SpanRecord>,
    },
    /// The attempt failed in the simulator.
    Fault {
        /// Attempt number.
        attempt: u32,
        /// Worker that faulted.
        worker: usize,
        /// The simulator error.
        message: String,
    },
    /// The worker popped the job after its deadline had already passed.
    Expired {
        /// Attempt number.
        attempt: u32,
    },
}

/// What one queued attempt carries: a single request's input, or a
/// coalesced micro-batch of same-model inputs that the worker dispatches
/// as one multi-column run.
#[derive(Clone)]
pub(crate) enum Payload {
    /// One request (batch-1, the BW default).
    Single(Arc<Vec<f32>>),
    /// A coalesced batch, one column per member request, in admission
    /// order.
    Batch(Arc<Vec<Vec<f32>>>),
}

/// One queued attempt.
pub(crate) struct Job {
    pub attempt: u32,
    /// Dense registry index of the model.
    pub model: usize,
    pub payload: Payload,
    pub deadline: Instant,
    pub reply: Sender<Completion>,
    /// Trace id stamped on emitted spans (the request id).
    pub trace_id: u64,
    /// When the job entered the queue (for queue-wait measurement).
    pub enqueued_at: Instant,
    /// Whether to collect NPU spans for this attempt.
    pub collect_spans: bool,
}

/// A control-plane operation on a running worker. Travels the same FIFO
/// queue as jobs; each carries an ack channel the server can block on.
pub(crate) enum Control {
    /// Install a pinned replica into `slot`, first sleeping the modeled
    /// weight-preload time (network ship + MRF fill + setup).
    Pin {
        /// The registry slot to install into.
        slot: usize,
        /// The already-pinned model instance.
        model: Box<PinnedModel>,
        /// Modeled preload seconds to sleep before the replica serves.
        preload_s: f64,
    },
    /// Drop the replica in `slot`. Jobs already queued ahead of this
    /// message still execute (FIFO drain); jobs that race in behind it
    /// fault and fail over.
    Unpin {
        /// The registry slot to clear.
        slot: usize,
    },
    /// No-op: the ack alone is the point — a barrier past everything
    /// queued before it.
    Flush,
}

/// A message on the worker queue.
enum WorkerMsg {
    Work(Box<Job>),
    Control(Control, Sender<()>),
    Stop,
}

/// The server-side handle to one worker thread.
pub(crate) struct WorkerHandle {
    tx: SyncSender<WorkerMsg>,
    /// Jobs queued or executing on this worker.
    pub outstanding: Arc<AtomicUsize>,
    /// Cleared on kill or thread exit; routing skips dead workers.
    pub alive: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    /// Jobs the worker has fully processed (for tests and metrics).
    pub processed: Arc<AtomicU64>,
    /// Which registry slots this worker pins (`true` = can serve).
    /// Shared with the worker thread: the thread sets a slot after
    /// applying a `Pin`; the server clears it *before* enqueueing an
    /// `Unpin` so routing stops first and the queue drains.
    pins: Arc<RwLock<Vec<bool>>>,
    /// When each pinned slot became resident (`None` = not pinned).
    pinned_since: Arc<Mutex<Vec<Option<Instant>>>>,
    join: Mutex<Option<JoinHandle<()>>>,
}

/// Why a dispatch to this worker was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DispatchRefused {
    /// The bounded queue is full.
    QueueFull,
    /// The worker is dead.
    Dead,
}

/// Why a control operation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ControlRefused {
    /// The worker is dead (or died before acking).
    Dead,
}

impl WorkerHandle {
    /// Attempts to enqueue a job without blocking.
    pub fn try_dispatch(&self, job: Job) -> Result<(), DispatchRefused> {
        if !self.alive.load(Ordering::Acquire) {
            return Err(DispatchRefused::Dead);
        }
        match self.tx.try_send(WorkerMsg::Work(Box::new(job))) {
            Ok(()) => {
                self.outstanding.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(DispatchRefused::QueueFull),
            Err(TrySendError::Disconnected(_)) => {
                self.alive.store(false, Ordering::Release);
                Err(DispatchRefused::Dead)
            }
        }
    }

    /// Jobs queued or executing.
    pub fn queue_depth(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Whether the worker accepts work.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Jobs this worker has fully processed.
    pub fn processed_count(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Whether this worker pins registry slot `model`.
    pub fn pins(&self, model: usize) -> bool {
        self.pins.read().get(model).copied().unwrap_or(false)
    }

    /// Clears the routing flag for `slot` immediately, so no new work is
    /// dispatched there while an `Unpin` drains the queue behind it.
    pub fn clear_pin(&self, slot: usize) {
        let mut pins = self.pins.write();
        if let Some(flag) = pins.get_mut(slot) {
            *flag = false;
        }
    }

    /// `(slot, resident_for)` for every model currently pinned here, in
    /// slot order.
    pub fn resident_slots(&self) -> Vec<(usize, Duration)> {
        let now = Instant::now();
        self.pinned_since
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(slot, since)| since.map(|t| (slot, now.saturating_duration_since(t))))
            .collect()
    }

    /// Sends a control message and blocks until the worker acks it —
    /// i.e. until everything queued ahead of it has been served. Errors
    /// if the worker is dead (or dies mid-wait).
    pub fn control(&self, op: Control) -> Result<(), ControlRefused> {
        if !self.alive.load(Ordering::Acquire) {
            return Err(ControlRefused::Dead);
        }
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        // A blocking send: control ops may wait behind a full job queue,
        // which is exactly the drain semantics we want. A dying worker
        // drops its receiver, erroring the send instead of deadlocking.
        self.tx
            .send(WorkerMsg::Control(op, ack_tx))
            .map_err(|_| ControlRefused::Dead)?;
        ack_rx.recv().map_err(|_| ControlRefused::Dead)
    }

    /// Injects a fault: the worker stops accepting work immediately and
    /// its thread exits at the next queue pop, dropping queued jobs.
    pub fn kill(&self) {
        self.kill.store(true, Ordering::Release);
        self.alive.store(false, Ordering::Release);
    }

    /// Graceful shutdown: asks the thread to stop after the work already
    /// queued, then joins it. Safe to call on killed workers (the blocked
    /// stop message unblocks when the dying thread drops its receiver).
    pub fn stop_and_join(&self) {
        let _ = self.tx.send(WorkerMsg::Stop);
        if let Some(handle) = self.join.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Spawns a worker that serves `models` (registry order; `None` = not
/// pinned here) from a bounded queue of `queue_cap` jobs.
pub(crate) fn spawn_worker(
    id: usize,
    mut models: Vec<Option<PinnedModel>>,
    queue_cap: usize,
) -> WorkerHandle {
    let (tx, rx): (SyncSender<WorkerMsg>, Receiver<WorkerMsg>) =
        std::sync::mpsc::sync_channel(queue_cap.max(1));
    let now = Instant::now();
    let pins = Arc::new(RwLock::new(
        models.iter().map(Option::is_some).collect::<Vec<bool>>(),
    ));
    let pinned_since = Arc::new(Mutex::new(
        models
            .iter()
            .map(|m| m.as_ref().map(|_| now))
            .collect::<Vec<Option<Instant>>>(),
    ));
    let outstanding = Arc::new(AtomicUsize::new(0));
    let alive = Arc::new(AtomicBool::new(true));
    let kill = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicU64::new(0));

    let t_outstanding = Arc::clone(&outstanding);
    let t_alive = Arc::clone(&alive);
    let t_kill = Arc::clone(&kill);
    let t_processed = Arc::clone(&processed);
    let t_pins = Arc::clone(&pins);
    let t_pinned_since = Arc::clone(&pinned_since);
    let join = std::thread::Builder::new()
        .name(format!("bw-serve-worker-{id}"))
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                if t_kill.load(Ordering::Acquire) {
                    // Injected fault: exit without serving or draining.
                    // Dropping `rx` disconnects every queued job's reply
                    // channel, which the lifecycle treats as worker loss.
                    break;
                }
                let job = match msg {
                    WorkerMsg::Work(job) => job,
                    WorkerMsg::Control(op, ack) => {
                        match op {
                            Control::Pin {
                                slot,
                                model,
                                preload_s,
                            } => {
                                // The device is busy streaming weights
                                // for the modeled preload window.
                                if preload_s > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(preload_s));
                                }
                                if models.len() <= slot {
                                    models.resize_with(slot + 1, || None);
                                }
                                models[slot] = Some(*model);
                                {
                                    let mut p = t_pins.write();
                                    if p.len() <= slot {
                                        p.resize(slot + 1, false);
                                    }
                                    p[slot] = true;
                                }
                                let mut since = t_pinned_since.lock();
                                if since.len() <= slot {
                                    since.resize(slot + 1, None);
                                }
                                since[slot] = Some(Instant::now());
                            }
                            Control::Unpin { slot } => {
                                if let Some(m) = models.get_mut(slot) {
                                    *m = None;
                                }
                                if let Some(flag) = t_pins.write().get_mut(slot) {
                                    *flag = false;
                                }
                                if let Some(s) = t_pinned_since.lock().get_mut(slot) {
                                    *s = None;
                                }
                            }
                            Control::Flush => {}
                        }
                        let _ = ack.send(());
                        continue;
                    }
                    WorkerMsg::Stop => break,
                };
                let popped = Instant::now();
                let completion = if popped >= job.deadline {
                    Completion::Expired {
                        attempt: job.attempt,
                    }
                } else if models.get(job.model).is_none_or(Option::is_none) {
                    // A mis-routed job for a slot this worker does not
                    // pin: fault so the request fails over to an owner.
                    Completion::Fault {
                        attempt: job.attempt,
                        worker: id,
                        message: format!("model slot {} not pinned on worker {id}", job.model),
                    }
                } else {
                    let queue_wait_s = (popped - job.enqueued_at).as_secs_f64();
                    let model = models[job.model].as_mut().expect("pinned slot");
                    serve_payload(model, &job, id, queue_wait_s, popped)
                };
                t_outstanding.fetch_sub(1, Ordering::AcqRel);
                t_processed.fetch_add(1, Ordering::Relaxed);
                // The requester may have moved on (failover); that drops
                // the receiver and this send becomes a no-op.
                let _ = job.reply.send(completion);
            }
            t_alive.store(false, Ordering::Release);
        })
        .expect("worker thread spawns");

    WorkerHandle {
        tx,
        outstanding,
        alive,
        kill,
        processed,
        pins,
        pinned_since,
        join: Mutex::new(Some(join)),
    }
}

/// Runs one popped job's payload on its pinned model: a single-column
/// inference for [`Payload::Single`], one multi-column dispatch for
/// [`Payload::Batch`].
fn serve_payload(
    model: &mut PinnedModel,
    job: &Job,
    worker: usize,
    queue_wait_s: f64,
    popped: Instant,
) -> Completion {
    match &job.payload {
        Payload::Single(input) => {
            let result = if job.collect_spans {
                model.infer_traced(input, job.trace_id)
            } else {
                model
                    .infer_with_stats(input)
                    .map(|(output, stats)| (output, stats, Vec::new()))
            };
            let service_s = popped.elapsed().as_secs_f64();
            match result {
                Ok((output, stats, spans)) => Completion::Done {
                    attempt: job.attempt,
                    worker,
                    output,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                },
                Err(e) => Completion::Fault {
                    attempt: job.attempt,
                    worker,
                    message: e.to_string(),
                },
            }
        }
        Payload::Batch(inputs) => {
            let result = if job.collect_spans {
                model.infer_batch_traced(inputs, job.trace_id)
            } else {
                model
                    .infer_batch(inputs)
                    .map(|(outputs, stats)| (outputs, stats, Vec::new()))
            };
            let service_s = popped.elapsed().as_secs_f64();
            match result {
                Ok((outputs, stats, spans)) => Completion::BatchDone {
                    attempt: job.attempt,
                    worker,
                    outputs,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                },
                Err(e) => Completion::Fault {
                    attempt: job.attempt,
                    worker,
                    message: e.to_string(),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_input, mlp_artifact};
    use std::time::Duration;

    fn worker_with(queue_cap: usize) -> WorkerHandle {
        let artifact = mlp_artifact("m", &[16, 8], 3);
        spawn_worker(0, vec![Some(artifact.pin().unwrap())], queue_cap)
    }

    fn job(attempt: u32, reply: Sender<Completion>) -> Job {
        Job {
            attempt,
            model: 0,
            payload: Payload::Single(Arc::new(demo_input(16, 0))),
            deadline: Instant::now() + Duration::from_secs(5),
            reply,
            trace_id: 7,
            enqueued_at: Instant::now(),
            collect_spans: false,
        }
    }

    #[test]
    fn worker_serves_jobs() {
        let w = worker_with(4);
        let (tx, rx) = std::sync::mpsc::channel();
        w.try_dispatch(job(0, tx)).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Done {
                attempt,
                worker,
                output,
                queue_wait_s,
                service_s,
                stats,
                spans,
            } => {
                assert_eq!((attempt, worker), (0, 0));
                assert_eq!(output.len(), 8);
                assert!(queue_wait_s >= 0.0 && service_s > 0.0);
                assert!(stats.cycles > 0);
                assert!(spans.is_empty(), "no spans unless requested");
            }
            other => panic!("unexpected completion {other:?}"),
        }
        assert_eq!(w.processed.load(Ordering::Relaxed), 1);
        assert_eq!(w.queue_depth(), 0);
        w.stop_and_join();
        assert!(!w.is_alive());
    }

    #[test]
    fn traced_jobs_carry_stamped_spans() {
        let w = worker_with(4);
        let (tx, rx) = std::sync::mpsc::channel();
        let mut j = job(0, tx);
        j.collect_spans = true;
        j.trace_id = 99;
        w.try_dispatch(j).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Completion::Done { stats, spans, .. } => {
                assert!(!spans.is_empty());
                assert!(spans.iter().all(|s| s.trace_id == 99));
                // The Run spans' cycles reconcile with the stats.
                let run_cycles: u64 = spans
                    .iter()
                    .filter(|s| s.kind == bw_core::SpanKind::Run)
                    .map(|s| s.cycles())
                    .sum();
                assert_eq!(run_cycles, stats.cycles);
            }
            other => panic!("unexpected completion {other:?}"),
        }
        w.stop_and_join();
    }

    #[test]
    fn expired_jobs_are_reported_not_served() {
        let w = worker_with(4);
        let (tx, rx) = std::sync::mpsc::channel();
        let mut j = job(2, tx);
        j.deadline = Instant::now() - Duration::from_millis(1);
        w.try_dispatch(j).unwrap();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Completion::Expired { attempt: 2, .. }
        ));
        w.stop_and_join();
    }

    #[test]
    fn killed_worker_refuses_and_drops_queued_jobs() {
        let w = worker_with(8);
        // Queue several jobs, then kill: queued replies must disconnect
        // (or complete, if the worker raced past them before the kill).
        let receivers: Vec<_> = (0..4)
            .map(|i| {
                let (tx, rx) = std::sync::mpsc::channel();
                w.try_dispatch(job(i, tx)).unwrap();
                rx
            })
            .collect();
        w.kill();
        assert!(!w.is_alive());
        let (tx, _rx) = std::sync::mpsc::channel();
        assert_eq!(w.try_dispatch(job(9, tx)), Err(DispatchRefused::Dead));
        for rx in receivers {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(_) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {}
                Err(e) => panic!("queued job left hanging: {e:?}"),
            }
        }
        w.stop_and_join();
    }

    #[test]
    fn full_queue_refuses_with_queue_full() {
        let artifact = mlp_artifact("m", &[16, 8], 3);
        let w = spawn_worker(0, vec![Some(artifact.pin().unwrap())], 1);
        // The worker may already be executing the first job; keep
        // dispatching until the bounded queue refuses.
        let (tx, rx) = std::sync::mpsc::channel();
        let mut refused = None;
        for i in 0..16 {
            match w.try_dispatch(job(i, tx.clone())) {
                Ok(()) => {}
                Err(r) => {
                    refused = Some(r);
                    break;
                }
            }
        }
        assert_eq!(refused, Some(DispatchRefused::QueueFull));
        drop(tx);
        while rx.recv_timeout(Duration::from_secs(10)).is_ok() {}
        w.stop_and_join();
    }
}
