//! Ready-made demo artifacts: small MLPs compiled through the full
//! toolflow, used by the crate's tests, the `bw-bench` load generator,
//! and the README quickstart. Not a test-only module on purpose — a
//! serving runtime without a model to serve demos nothing.

use bw_bfp::BfpFormat;
use bw_core::NpuConfig;
use bw_gir::{ActFn, GirGraph, GirOp, LowerOptions, ModelArtifact, ShardedArtifact};

/// A small NPU configuration every demo artifact targets: 16-wide native
/// vectors, enough register file for the demo MLPs, fast to instantiate
/// per worker.
pub fn demo_config() -> NpuConfig {
    NpuConfig::builder()
        .name("BW_DEMO")
        .native_dim(16)
        .lanes(4)
        .tile_engines(4)
        .mrf_entries(2048)
        .vrf_entries(512)
        .clock_mhz(250.0)
        .matrix_format(BfpFormat::BFP_1S_5E_5M)
        .build()
        .expect("demo configuration is valid")
}

/// Builds the GIR graph of a tanh MLP with the given layer `widths`
/// (first = input dimension), deterministically weighted by `seed`.
///
/// # Panics
///
/// Panics if `widths` has fewer than two entries.
pub fn mlp_graph(widths: &[usize], seed: u64) -> GirGraph {
    assert!(widths.len() >= 2, "an MLP needs input and output widths");
    let mut g = GirGraph::new();
    let mut prev = g
        .add(GirOp::Input { dim: widths[0] }, &[])
        .expect("input node");
    for (li, w) in widths.windows(2).enumerate() {
        let weights: Vec<f32> = (0..w[0] * w[1])
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed ^ (li as u64) << 32);
                // Map to [-0.5, 0.5) scaled down for stable activations.
                (((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.4
            })
            .collect();
        let m = g
            .add(
                GirOp::MatMul {
                    rows: w[1],
                    cols: w[0],
                    weights,
                },
                &[prev],
            )
            .expect("matmul node");
        let b = g
            .add(
                GirOp::BiasAdd {
                    bias: vec![0.02; w[1]],
                },
                &[m],
            )
            .expect("bias node");
        prev = g
            .add(GirOp::Activation(ActFn::Tanh), &[b])
            .expect("activation node");
    }
    g.add(GirOp::Output, &[prev]).expect("output node");
    g
}

/// Compiles an MLP demo artifact named `name` through fuse → partition →
/// lower (linter-gated) against [`demo_config`].
///
/// # Panics
///
/// Panics if compilation fails — demo shapes are sized to make that a
/// bug, not a runtime condition.
pub fn mlp_artifact(name: &str, widths: &[usize], seed: u64) -> ModelArtifact {
    let graph = mlp_graph(widths, seed);
    ModelArtifact::compile(
        name,
        &graph,
        1 << 24,
        &demo_config(),
        &LowerOptions::default(),
    )
    .expect("demo MLP compiles")
}

/// Compiles an MLP as a [`ShardedArtifact`] whose dense stages split
/// wherever they exceed `param_budget` weights per worker — the demo
/// entry point for scale-out serving. With a generous budget the result
/// degenerates to one `Single` segment.
///
/// # Panics
///
/// Panics if compilation fails (a row wider than the budget cannot be
/// sharded; pick `widths` and `param_budget` accordingly).
pub fn sharded_mlp(name: &str, widths: &[usize], seed: u64, param_budget: u64) -> ShardedArtifact {
    let graph = mlp_graph(widths, seed);
    ShardedArtifact::compile(
        name,
        &graph,
        param_budget,
        &demo_config(),
        &LowerOptions::default(),
    )
    .expect("demo sharded MLP compiles")
}

/// A deterministic input vector for a demo artifact.
pub fn demo_input(dim: usize, seed: u64) -> Vec<f32> {
    (0..dim)
        .map(|i| (((i as u64 + seed * 977) % 41) as f32 / 41.0 - 0.5) * 0.8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_artifact_compiles_and_serves() {
        let artifact = mlp_artifact("demo", &[32, 64, 16], 7);
        assert_eq!(artifact.input_dim(), 32);
        assert_eq!(artifact.output_dim(), 16);
        let mut pinned = artifact.pin().unwrap();
        let y = pinned.infer(&demo_input(32, 0)).unwrap();
        assert_eq!(y.len(), 16);
        assert!(y.iter().all(|v| v.is_finite()));
        // Same seed, same weights: a second build serves identically.
        let mut again = mlp_artifact("demo", &[32, 64, 16], 7).pin().unwrap();
        assert_eq!(again.infer(&demo_input(32, 0)).unwrap(), y);
    }
}
