//! # bw-serve: hardware microservices over simulated NPUs
//!
//! The Brainwave paper's deployment story (§II-A) is not "a DNN on an
//! accelerator" but "DNNs as *hardware microservices*": models are
//! compiled once, pinned onto FPGA instances, published behind a router,
//! and served batch-1 under millisecond SLOs. The rest of this workspace
//! builds the device (`bw-core`), the toolflow (`bw-gir`), and the
//! analytical serving model (`bw-system`); this crate builds the serving
//! *runtime* that drives real simulated NPUs:
//!
//! - [`ModelRegistry`] — the published catalog of compiled
//!   [`ModelArtifact`]s (firmware + BFP weights, via `bw-gir`);
//! - worker threads — each pins every registered model onto its own
//!   `bw-core` NPUs (fast kernels) and drains a bounded queue, one
//!   batch-1 inference at a time;
//! - a router — the same three policies `bw-system` models analytically
//!   (round-robin / random / least-outstanding), applied to live queues;
//! - a request lifecycle — deadlines, retry-with-failover onto replicas
//!   on timeout or injected worker fault, and load shedding when every
//!   replica's queue is full;
//! - scale-out — a model too large for one device registers as a shard
//!   group ([`ServerBuilder::sharded_model`] over
//!   [`bw_gir::ShardedArtifact`]): shards pin on disjoint worker sets
//!   and a scatter/gather coordinator serves the group name
//!   bit-identically to single-device execution, charging every
//!   transfer leg against a configurable [`NetworkModel`];
//! - [`MetricsSnapshot`] — per-model counters and log-bucketed latency
//!   histograms (p50/p99/p99.9) with the accounting identity
//!   `completed + shed + failed == submitted`, plus per-link network
//!   counters;
//! - a tail-sampling flight recorder
//!   ([`ServerBuilder::flight_recorder`]) — a bounded ring of full
//!   [`RequestTrace`] span trees retained only for requests that
//!   breached the latency objective or failed, so a p99.9 outlier can
//!   be diagnosed after the fact without head-sampling every request
//!   into the trace log;
//! - a TCP front end ([`TcpFrontend`] / [`TcpClient`]) speaking a
//!   length-prefixed binary protocol ([`WireRequest`] / [`WireResponse`]);
//! - an open-loop load generator ([`run_loadgen`]) replaying
//!   `bw_system::ArrivalProcess` traffic against the live pool.
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//! use bw_serve::demo::{demo_input, mlp_artifact};
//! use bw_serve::Server;
//!
//! let server = Server::builder()
//!     .model(mlp_artifact("mlp", &[16, 32, 8], 7))
//!     .replicas(2)
//!     .spawn()
//!     .unwrap();
//! let client = server.client();
//! let resp = client
//!     .call("mlp", &demo_input(16, 0), Duration::from_secs(5))
//!     .unwrap();
//! assert_eq!(resp.output.len(), 8);
//! let m = client.metrics();
//! assert_eq!(m.models[0].completed, 1);
//! ```

mod batch;
pub mod demo;
mod metrics;
mod registry;
mod request;
mod router;
mod server;
mod tcp;
mod wire;
mod worker;

pub mod loadgen;

pub use batch::{BatchConfig, Batcher};
pub use metrics::{Histogram, LinkMetrics, MetricsSnapshot, ModelResidency, ModelSnapshot};
pub use registry::{GroupSegment, ModelRegistry, RegistryError, ShardGroup};
pub use request::{
    Attribution, FlightOutcome, FlightRecord, RequestId, RequestTrace, Response, ServeError,
};
pub use server::{
    BatchItem, Client, FlightRecorderConfig, Pending, PinError, Server, ServerBuilder,
    ServerConfig, SpawnError,
};
pub use tcp::{TcpClient, TcpFrontend, TcpFrontendConfig};
pub use wire::{read_frame, try_extract_frame, write_frame, WireError, WireRequest, WireResponse};

pub use bw_gir::{ModelArtifact, PinnedModel, ShardedArtifact};
pub use bw_system::{
    ArrivalProcess, LatencySummary, LoadPhase, LoadSchedule, NetworkModel, PreloadModel, Routing,
};

pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
