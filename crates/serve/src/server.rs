//! The serving runtime: a pool of NPU-backed workers behind a routing
//! policy, with deadlines, retry-with-failover, and load shedding.
//!
//! One [`Server`] is one published pool of hardware-microservice
//! instances (§II-A): every worker pins every registered model, a
//! [`Router`] picks replicas per request, and the [`Client`] drives the
//! request lifecycle:
//!
//! 1. **admission** — validate model and input, count `submitted`, pick a
//!    replica; if every live replica's queue is full, *shed* immediately;
//! 2. **attempt** — wait for the replica up to the attempt timeout (or
//!    the remaining deadline, whichever is sooner);
//! 3. **failover** — on worker fault, worker death, or attempt timeout,
//!    re-dispatch to a replica that has not served this request yet,
//!    up to `max_retries` times within the deadline;
//! 4. **termination** — exactly one of completed / shed / failed, always
//!    recorded in the metrics: `completed + shed + failed == submitted`
//!    once nothing is in flight.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bw_gir::ModelArtifact;
use bw_system::Routing;
use parking_lot::Mutex;

use crate::metrics::{render_prometheus, snapshot_model, MetricsSnapshot, ModelMetrics, WorkerRow};
use crate::registry::{ModelRegistry, RegistryError};
use crate::request::{Attribution, RequestId, RequestTrace, Response, ServeError};
use crate::router::Router;
use crate::worker::{spawn_worker, Completion, DispatchRefused, Job, WorkerHandle};

/// Sampled request traces retained before the oldest is dropped.
const TRACE_LOG_CAP: usize = 256;

/// Tunables of one server pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerConfig {
    /// Workers in the pool; every worker pins every registered model.
    pub replicas: usize,
    /// Bounded per-worker queue capacity (jobs).
    pub queue_cap: usize,
    /// The routing policy (shared vocabulary with `bw-system`).
    pub policy: Routing,
    /// Failover retries permitted per request beyond the first attempt.
    pub max_retries: u32,
    /// Per-attempt timeout. `None` gives each attempt the full remaining
    /// deadline (failover then only triggers on faults and death).
    pub attempt_timeout: Option<Duration>,
    /// Seed for the random routing policy.
    pub seed: u64,
    /// Span-trace sampling: collect full NPU span traces for one request
    /// in every `trace_sample` (by request id). `0` disables span
    /// collection entirely; `1` traces every request. Counter
    /// attribution (cycles, MACs, stalls, queue/service split) is always
    /// on regardless.
    pub trace_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            replicas: 2,
            queue_cap: 32,
            policy: Routing::RoundRobin,
            max_retries: 1,
            attempt_timeout: None,
            seed: 0,
            trace_sample: 0,
        }
    }
}

/// Error produced while spawning a server.
#[derive(Debug)]
pub enum SpawnError {
    /// The builder had no registered models.
    NoModels,
    /// A model name collided.
    Registry(RegistryError),
    /// Pinning an artifact onto a worker failed.
    Pin {
        /// The model that failed to pin.
        model: String,
        /// The deployment error.
        error: bw_gir::DeployError,
    },
    /// The configuration is unusable (zero replicas or queue capacity).
    BadConfig(
        /// What is wrong.
        String,
    ),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::NoModels => write!(f, "no models registered"),
            SpawnError::Registry(e) => write!(f, "{e}"),
            SpawnError::Pin { model, error } => write!(f, "pinning `{model}` failed: {error}"),
            SpawnError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<RegistryError> for SpawnError {
    fn from(e: RegistryError) -> Self {
        SpawnError::Registry(e)
    }
}

pub(crate) struct ServerInner {
    pub registry: ModelRegistry,
    pub workers: Vec<WorkerHandle>,
    pub metrics: Vec<ModelMetrics>,
    pub router: Router,
    pub cfg: ServerConfig,
    next_id: AtomicU64,
    /// Sampled request traces, oldest first, bounded at
    /// [`TRACE_LOG_CAP`].
    trace_log: Mutex<VecDeque<RequestTrace>>,
}

impl ServerInner {
    fn next_request_id(&self) -> RequestId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            models: self
                .registry
                .artifacts()
                .iter()
                .zip(&self.metrics)
                .map(|(a, m)| snapshot_model(a.name(), m))
                .collect(),
            queue_depths: self.workers.iter().map(WorkerHandle::queue_depth).collect(),
            workers_alive: self.workers.iter().map(WorkerHandle::is_alive).collect(),
            worker_processed: self
                .workers
                .iter()
                .map(WorkerHandle::processed_count)
                .collect(),
        }
    }

    fn push_trace(&self, trace: RequestTrace) {
        let mut log = self.trace_log.lock();
        if log.len() >= TRACE_LOG_CAP {
            log.pop_front();
        }
        log.push_back(trace);
    }

    fn prometheus(&self) -> String {
        let models: Vec<(&str, &ModelMetrics)> = self
            .registry
            .artifacts()
            .iter()
            .zip(&self.metrics)
            .map(|(a, m)| (a.name(), m))
            .collect();
        let workers: Vec<WorkerRow> = self
            .workers
            .iter()
            .enumerate()
            .map(|(id, w)| WorkerRow {
                id,
                queue_depth: w.queue_depth(),
                alive: w.is_alive(),
                processed: w.processed_count(),
            })
            .collect();
        render_prometheus(&models, &workers)
    }

    /// Walks the router's plan and enqueues the job on the first replica
    /// that accepts it. Returns the worker id, or what stopped dispatch.
    fn dispatch(
        &self,
        spec: &DispatchSpec,
        input: &Arc<Vec<f32>>,
        tried: &[usize],
    ) -> Result<(usize, Receiver<Completion>), DispatchStopped> {
        let plan = self.router.plan(&self.workers, tried);
        if plan.is_empty() {
            return Err(DispatchStopped::NoReplica);
        }
        let mut all_full = true;
        for worker in plan {
            let (tx, rx) = std::sync::mpsc::channel();
            let job = Job {
                attempt: spec.attempt,
                model: spec.model,
                input: Arc::clone(input),
                deadline: spec.deadline,
                reply: tx,
                trace_id: spec.trace_id,
                enqueued_at: Instant::now(),
                collect_spans: spec.collect_spans,
            };
            match self.workers[worker].try_dispatch(job) {
                Ok(()) => return Ok((worker, rx)),
                Err(DispatchRefused::QueueFull) => {}
                Err(DispatchRefused::Dead) => all_full = false,
            }
        }
        if all_full {
            Err(DispatchStopped::AllFull)
        } else {
            Err(DispatchStopped::NoReplica)
        }
    }
}

/// Per-attempt dispatch parameters (the request-constant ones plus the
/// attempt ordinal).
struct DispatchSpec {
    attempt: u32,
    model: usize,
    deadline: Instant,
    trace_id: u64,
    collect_spans: bool,
}

enum DispatchStopped {
    /// Every candidate's queue was full.
    AllFull,
    /// No live, untried candidate exists.
    NoReplica,
}

/// Builds a [`Server`]: register models, set the pool shape, spawn.
#[derive(Default)]
pub struct ServerBuilder {
    registry: ModelRegistry,
    cfg: ServerConfig,
    registry_error: Option<RegistryError>,
}

impl ServerBuilder {
    /// Registers a model artifact.
    pub fn model(mut self, artifact: ModelArtifact) -> Self {
        if self.registry_error.is_none() {
            if let Err(e) = self.registry.register(artifact) {
                self.registry_error = Some(e);
            }
        }
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: ServerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the worker count.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas;
        self
    }

    /// Sets the bounded per-worker queue capacity.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.cfg.queue_cap = cap;
        self
    }

    /// Sets the routing policy.
    pub fn policy(mut self, policy: Routing) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the failover retry budget.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Sets the per-attempt timeout.
    pub fn attempt_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.attempt_timeout = Some(timeout);
        self
    }

    /// Sets span-trace sampling: full NPU span traces for one request in
    /// every `n` (0 disables, 1 traces all).
    pub fn trace_sample(mut self, n: u64) -> Self {
        self.cfg.trace_sample = n;
        self
    }

    /// Spawns the pool: every worker pins every registered model.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] on an empty registry, a bad configuration,
    /// or a pin failure.
    pub fn spawn(self) -> Result<Server, SpawnError> {
        if let Some(e) = self.registry_error {
            return Err(e.into());
        }
        if self.registry.is_empty() {
            return Err(SpawnError::NoModels);
        }
        if self.cfg.replicas == 0 {
            return Err(SpawnError::BadConfig("replicas must be positive".into()));
        }
        if self.cfg.queue_cap == 0 {
            return Err(SpawnError::BadConfig("queue_cap must be positive".into()));
        }

        let mut workers = Vec::with_capacity(self.cfg.replicas);
        for id in 0..self.cfg.replicas {
            let mut pinned = Vec::with_capacity(self.registry.len());
            for artifact in self.registry.artifacts() {
                let pin = artifact.pin().map_err(|error| SpawnError::Pin {
                    model: artifact.name().to_owned(),
                    error,
                })?;
                pinned.push(pin);
            }
            workers.push(spawn_worker(id, pinned, self.cfg.queue_cap));
        }

        let metrics = (0..self.registry.len())
            .map(|_| ModelMetrics::default())
            .collect();
        Ok(Server {
            inner: Arc::new(ServerInner {
                router: Router::new(self.cfg.policy, self.cfg.seed),
                registry: self.registry,
                workers,
                metrics,
                cfg: self.cfg,
                next_id: AtomicU64::new(1),
                trace_log: Mutex::new(VecDeque::new()),
            }),
        })
    }
}

/// A running serving pool. Dropping the server stops every worker after
/// the work already queued (injected-fault workers stop immediately).
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Starts building a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// An in-process client for this server. Clients are cheap to clone
    /// and usable from any thread.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Number of workers (live or dead).
    pub fn worker_count(&self) -> usize {
        self.inner.workers.len()
    }

    /// Per-worker liveness, in worker order.
    pub fn workers_alive(&self) -> Vec<bool> {
        self.inner
            .workers
            .iter()
            .map(WorkerHandle::is_alive)
            .collect()
    }

    /// Injects a fault into worker `id`: it stops accepting work
    /// immediately and its thread dies at the next queue pop, dropping
    /// queued jobs (their requests fail over). Returns `false` for an
    /// unknown id.
    pub fn kill_worker(&self, id: usize) -> bool {
        match self.inner.workers.get(id) {
            Some(w) => {
                w.kill();
                true
            }
            None => false,
        }
    }

    /// A point-in-time metrics reading.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// The live metrics as a Prometheus text exposition (format 0.0.4).
    pub fn prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// Drains the sampled request traces collected so far (oldest
    /// first). Traces accumulate only when `trace_sample > 0`; the log
    /// keeps the most recent 256.
    pub fn take_traces(&self) -> Vec<RequestTrace> {
        self.inner.trace_log.lock().drain(..).collect()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        for worker in &self.inner.workers {
            worker.stop_and_join();
        }
    }
}

/// An in-process handle for submitting requests.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServerInner>,
}

impl Client {
    /// Validates, admits, and dispatches a request; the returned
    /// [`Pending`] drives the rest of the lifecycle. `deadline` is the
    /// total end-to-end budget from this call.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] / [`ServeError::BadInput`]
    /// before admission (not counted), or [`ServeError::Shed`] /
    /// [`ServeError::NoReplica`] at admission (counted).
    pub fn submit(
        &self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Pending, ServeError> {
        let inner = &self.inner;
        let Some(model_idx) = inner.registry.index_of(model) else {
            return Err(ServeError::UnknownModel(model.to_owned()));
        };
        let expected = inner
            .registry
            .get(model_idx)
            .expect("index valid")
            .input_dim();
        if input.len() != expected {
            return Err(ServeError::BadInput {
                expected,
                got: input.len(),
            });
        }

        let metrics = &inner.metrics[model_idx];
        metrics.submitted.fetch_add(1, Ordering::Relaxed);

        let submitted = Instant::now();
        let deadline_at = submitted + deadline;
        let request_id = inner.next_request_id();
        let input = Arc::new(input.to_vec());
        let collect_spans =
            inner.cfg.trace_sample > 0 && request_id.is_multiple_of(inner.cfg.trace_sample);
        let spec = DispatchSpec {
            attempt: 0,
            model: model_idx,
            deadline: deadline_at,
            trace_id: request_id,
            collect_spans,
        };

        match inner.dispatch(&spec, &input, &[]) {
            Ok((worker, rx)) => Ok(Pending {
                inner: Arc::clone(inner),
                request_id,
                model_idx,
                model: model.to_owned(),
                input,
                submitted,
                deadline: deadline_at,
                attempt: 0,
                tried: vec![worker],
                retries: 0,
                collect_spans,
                rx,
                settled: false,
            }),
            Err(DispatchStopped::AllFull) => {
                metrics.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Shed {
                    model: model.to_owned(),
                })
            }
            Err(DispatchStopped::NoReplica) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::NoReplica {
                    model: model.to_owned(),
                })
            }
        }
    }

    /// [`Client::submit`] + [`Pending::wait`] in one call.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Pending::wait`].
    pub fn call(
        &self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Response, ServeError> {
        self.submit(model, input, deadline)?.wait()
    }

    /// A point-in-time metrics reading (same as [`Server::metrics`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// The live metrics as a Prometheus text exposition (same as
    /// [`Server::prometheus`]).
    pub fn prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// The input width `model` expects, if registered.
    pub fn input_dim_of(&self, model: &str) -> Option<usize> {
        self.inner.registry.lookup(model).map(|a| a.input_dim())
    }

    /// Registered model names, in registry order.
    pub fn model_names(&self) -> Vec<String> {
        self.inner
            .registry
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }
}

/// An admitted, dispatched request. Call [`Pending::wait`] to drive
/// failover and obtain the outcome. Dropping an unwaited `Pending`
/// records the request as failed (abandoned), keeping the metrics
/// identity intact.
pub struct Pending {
    inner: Arc<ServerInner>,
    request_id: RequestId,
    model_idx: usize,
    model: String,
    input: Arc<Vec<f32>>,
    submitted: Instant,
    deadline: Instant,
    attempt: u32,
    tried: Vec<usize>,
    retries: u32,
    collect_spans: bool,
    rx: Receiver<Completion>,
    settled: bool,
}

impl Pending {
    /// The server-assigned request id.
    pub fn request_id(&self) -> RequestId {
        self.request_id
    }

    /// Drives the request to termination: waits on the current attempt,
    /// failing over to replicas on fault, death, or attempt timeout,
    /// until completion, the deadline, or the retry budget ends it.
    ///
    /// # Errors
    ///
    /// Returns the terminal [`ServeError`]; every error path is recorded
    /// in the metrics exactly once.
    pub fn wait(mut self) -> Result<Response, ServeError> {
        let cfg = self.inner.cfg;
        loop {
            let now = Instant::now();
            if now >= self.deadline {
                return Err(self.fail(ServeError::DeadlineExceeded {
                    model: self.model.clone(),
                    retries: self.retries,
                }));
            }
            let budget = self.deadline - now;
            let slice = cfg.attempt_timeout.map_or(budget, |t| t.min(budget));

            match self.rx.recv_timeout(slice) {
                Ok(Completion::Done {
                    attempt,
                    worker,
                    output,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                }) => {
                    if attempt != self.attempt {
                        continue; // stale attempt; keep waiting
                    }
                    let latency = self.submitted.elapsed();
                    self.settled = true;
                    let metrics = &self.inner.metrics[self.model_idx];
                    metrics.record_completed(latency.as_secs_f64());
                    metrics.record_attribution(queue_wait_s, service_s, &stats);
                    let attribution = Attribution {
                        queue_wait: Duration::from_secs_f64(queue_wait_s),
                        service: Duration::from_secs_f64(service_s),
                        npu_cycles: stats.cycles,
                        npu_macs: stats.mvm_macs,
                        dep_stall_cycles: stats.dep_stall_cycles,
                        resource_stall_cycles: stats.resource_stall_cycles,
                    };
                    if self.collect_spans && !spans.is_empty() {
                        self.inner.push_trace(RequestTrace {
                            request_id: self.request_id,
                            trace_id: self.request_id,
                            model: self.model.clone(),
                            worker,
                            attribution,
                            stats,
                            spans,
                        });
                    }
                    return Ok(Response {
                        request_id: self.request_id,
                        output,
                        latency,
                        worker,
                        retries: self.retries,
                        attribution,
                    });
                }
                Ok(Completion::Fault {
                    attempt,
                    worker,
                    message,
                }) => {
                    if attempt != self.attempt {
                        continue;
                    }
                    if let Some(err) = self.failover(Some(format!("worker {worker}: {message}"))) {
                        return Err(err);
                    }
                }
                Ok(Completion::Expired { attempt }) => {
                    if attempt != self.attempt {
                        continue;
                    }
                    // The worker saw the job after its deadline: terminal.
                    return Err(self.fail(ServeError::DeadlineExceeded {
                        model: self.model.clone(),
                        retries: self.retries,
                    }));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= self.deadline {
                        return Err(self.fail(ServeError::DeadlineExceeded {
                            model: self.model.clone(),
                            retries: self.retries,
                        }));
                    }
                    // Attempt timeout with budget left: fail over.
                    if let Some(err) = self.failover(None) {
                        return Err(err);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The worker died with our job (injected fault or
                    // shutdown): fail over immediately.
                    if let Some(err) = self.failover(None) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Re-dispatches to an untried replica. Returns `Some(error)` if the
    /// request is terminal instead.
    fn failover(&mut self, fault: Option<String>) -> Option<ServeError> {
        if self.retries >= self.inner.cfg.max_retries {
            let err = match fault {
                Some(message) => ServeError::WorkerFault {
                    model: self.model.clone(),
                    message,
                    retries: self.retries,
                },
                None => ServeError::DeadlineExceeded {
                    model: self.model.clone(),
                    retries: self.retries,
                },
            };
            return Some(self.fail(err));
        }
        self.retries += 1;
        self.attempt += 1;
        self.inner.metrics[self.model_idx]
            .retries
            .fetch_add(1, Ordering::Relaxed);
        let spec = DispatchSpec {
            attempt: self.attempt,
            model: self.model_idx,
            deadline: self.deadline,
            trace_id: self.request_id,
            collect_spans: self.collect_spans,
        };
        let dispatched = self.inner.dispatch(&spec, &self.input, &self.tried);
        match dispatched {
            Ok((worker, rx)) => {
                self.tried.push(worker);
                self.rx = rx;
                None
            }
            Err(DispatchStopped::AllFull) | Err(DispatchStopped::NoReplica) => {
                let err = match fault {
                    Some(message) => ServeError::WorkerFault {
                        model: self.model.clone(),
                        message,
                        retries: self.retries,
                    },
                    None => ServeError::NoReplica {
                        model: self.model.clone(),
                    },
                };
                Some(self.fail(err))
            }
        }
    }

    /// Marks the request failed in the metrics (exactly once) and hands
    /// the error back.
    fn fail(&mut self, err: ServeError) -> ServeError {
        if !self.settled {
            self.settled = true;
            self.inner.metrics[self.model_idx]
                .failed
                .fetch_add(1, Ordering::Relaxed);
        }
        err
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if !self.settled {
            // Abandoned without waiting: account it as failed so the
            // metrics identity holds.
            self.settled = true;
            self.inner.metrics[self.model_idx]
                .failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}
