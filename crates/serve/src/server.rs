//! The serving runtime: a pool of NPU-backed workers behind a routing
//! policy, with deadlines, retry-with-failover, load shedding, and
//! network-partitioned (sharded) model execution.
//!
//! One [`Server`] is one published pool of hardware-microservice
//! instances (§II-A): every worker pins every registered whole model, a
//! [`Router`] picks replicas per request, and the [`Client`] drives the
//! request lifecycle:
//!
//! 1. **admission** — validate model and input, count `submitted`, pick a
//!    replica; if every live replica's queue is full, *shed* immediately;
//! 2. **attempt** — wait for the replica up to the attempt timeout (or
//!    the remaining deadline, whichever is sooner);
//! 3. **failover** — on worker fault, worker death, or attempt timeout,
//!    re-dispatch to a replica that has not served this request yet,
//!    up to `max_retries` times within the deadline;
//! 4. **termination** — exactly one of completed / shed / failed, always
//!    recorded in the metrics: `completed + shed + failed == submitted`
//!    once nothing is in flight.
//!
//! # Scale-out: shard groups over the network
//!
//! A model registered via [`ServerBuilder::sharded_model`] spans
//! cooperating workers, reproducing §II-A's spatial distribution of one
//! model across accelerators on the datacenter network. Each shard of
//! each scatter/gather segment pins on a distinct owner set (worker `w`
//! owns shard `k` of a `K`-wide segment iff `w % K == k`); a request for
//! the group name runs segment by segment — scatter the segment input to
//! one owner per shard, gather, concatenate the row-shard outputs in
//! shard order, feed the next segment. Every transfer leg is charged
//! against the server's [`NetworkModel`] (and slept, so measured latency
//! reflects it); a lost shard fails over to another owner exactly like a
//! whole-model attempt. Row sharding keeps the result bit-identical to
//! single-device execution because BFP block exponents are shared only
//! along a row's column blocks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bw_core::{RunStats, SpanKind, SpanRecord};
use bw_gir::{ModelArtifact, ShardedArtifact};
use bw_system::{NetworkModel, PreloadModel, Routing};
use parking_lot::{Mutex, RwLock};

use crate::metrics::{
    render_prometheus, snapshot_model, LinkMetrics, LinkRow, MetricsSnapshot, ModelMetrics,
    ModelResidency, WorkerRow,
};
use crate::registry::{GroupSegment, ModelRegistry, RegistryError};
use crate::request::{
    Attribution, FlightOutcome, FlightRecord, RequestId, RequestTrace, Response, ServeError,
};
use crate::router::Router;
use crate::worker::{
    spawn_worker, Completion, Control, DispatchRefused, Job, Payload, WorkerHandle,
};

/// Sampled request traces retained before the oldest is dropped.
const TRACE_LOG_CAP: usize = 256;

/// Tail-sampling flight-recorder settings ([`ServerConfig::flight_recorder`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightRecorderConfig {
    /// Completed requests slower than this are retained with their full
    /// span tree.
    pub latency_objective: Duration,
    /// Bounded ring capacity: once full, the oldest record is dropped
    /// for each new one.
    pub capacity: usize,
}

/// Tunables of one server pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerConfig {
    /// Workers in the pool; every worker pins every registered model.
    pub replicas: usize,
    /// Bounded per-worker queue capacity (jobs).
    pub queue_cap: usize,
    /// The routing policy (shared vocabulary with `bw-system`).
    pub policy: Routing,
    /// Failover retries permitted per request beyond the first attempt.
    pub max_retries: u32,
    /// Per-attempt timeout. `None` gives each attempt the full remaining
    /// deadline (failover then only triggers on faults and death).
    pub attempt_timeout: Option<Duration>,
    /// Seed for the random routing policy.
    pub seed: u64,
    /// Span-trace sampling: collect full NPU span traces for one request
    /// in every `trace_sample` (by request id). `0` disables span
    /// collection entirely; `1` traces every request. Counter
    /// attribution (cycles, MACs, stalls, queue/service split) is always
    /// on regardless.
    pub trace_sample: u64,
    /// The datacenter network between the client and the workers: every
    /// request/response and scatter/gather leg is charged (and slept)
    /// per this model, and a down link makes its worker unreachable. The
    /// default ideal network charges nothing, preserving the
    /// single-machine behavior.
    pub network: NetworkModel,
    /// The weight-preload cost model: what pinning a replica at runtime
    /// costs in simulated time ([`Server::pin_model`]). The default free
    /// model preloads instantly, preserving pre-fleet behavior.
    pub preload: PreloadModel,
    /// Tail-sampling flight recorder: when set, every request is traced
    /// and the full span tree of each request that breached the latency
    /// objective or failed is retained in a bounded ring
    /// ([`Server::take_flight_records`]). Unlike `trace_sample` (head
    /// sampling, decided at admission), retention is decided at
    /// termination when the outcome is known. `None` (the default)
    /// disables the recorder.
    pub flight_recorder: Option<FlightRecorderConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            replicas: 2,
            queue_cap: 32,
            policy: Routing::RoundRobin,
            max_retries: 1,
            attempt_timeout: None,
            seed: 0,
            trace_sample: 0,
            network: NetworkModel::ideal(),
            preload: PreloadModel::free(),
            flight_recorder: None,
        }
    }
}

/// Error produced while spawning a server.
#[derive(Debug)]
pub enum SpawnError {
    /// The builder had no registered models.
    NoModels,
    /// A model name collided.
    Registry(RegistryError),
    /// Pinning an artifact onto a worker failed.
    Pin {
        /// The model that failed to pin.
        model: String,
        /// The deployment error.
        error: bw_gir::DeployError,
    },
    /// The configuration is unusable (zero replicas or queue capacity).
    BadConfig(
        /// What is wrong.
        String,
    ),
    /// A declared SLA budget is provably unmeetable: the model's static
    /// cycle lower bound already exceeds it, so no request could ever
    /// finish in time. The registry refuses to pin the model.
    SlaUnmeetable {
        /// The model whose budget cannot be met.
        model: String,
        /// The static lower bound on one inference, in microseconds.
        bound_us: u64,
        /// The declared budget, in microseconds.
        budget_us: u64,
    },
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::NoModels => write!(f, "no models registered"),
            SpawnError::Registry(e) => write!(f, "{e}"),
            SpawnError::Pin { model, error } => write!(f, "pinning `{model}` failed: {error}"),
            SpawnError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            SpawnError::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            } => write!(
                f,
                "sla unmeetable: `{model}` has a static lower bound of \
                 {bound_us}us against a {budget_us}us budget"
            ),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<RegistryError> for SpawnError {
    fn from(e: RegistryError) -> Self {
        SpawnError::Registry(e)
    }
}

/// Pre-admission SLA gate: a request whose deadline budget the model's
/// static lower bound already exceeds is dead on arrival — reject it
/// before it is counted as submitted.
fn check_sla(model: &str, bound: Option<u64>, deadline: Duration) -> Result<(), ServeError> {
    if let Some(bound_us) = bound {
        let budget_us = u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX);
        if bound_us > budget_us {
            return Err(ServeError::SlaUnmeetable {
                model: model.to_owned(),
                bound_us,
                budget_us,
            });
        }
    }
    Ok(())
}

/// Whether `trace_sample` head sampling selects this request for the
/// trace log.
fn head_sampled(cfg: &ServerConfig, request_id: RequestId) -> bool {
    cfg.trace_sample > 0 && request_id.is_multiple_of(cfg.trace_sample)
}

/// Ceil-converts a cycle count into whole microseconds on `clock_hz`.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn cycles_to_us_ceil(cycles: u64, clock_hz: f64) -> u64 {
    #[allow(clippy::cast_precision_loss)]
    let us = (cycles as f64) * 1e6 / clock_hz;
    if !us.is_finite() {
        return u64::MAX;
    }
    us.ceil() as u64
}

pub(crate) struct ServerInner {
    /// The model registry. Behind a lock because models can be
    /// registered at runtime ([`Server::register_model`]); shard groups
    /// are fixed at spawn.
    pub registry: RwLock<ModelRegistry>,
    /// Static lower bound on one inference in microseconds per model
    /// slot (`None` where no bound is provable); grows in lockstep with
    /// the registry. Admission rejects requests whose deadline budget
    /// the bound already exceeds. Lock order: `registry` before
    /// `slot_bounds` / `model_metrics`.
    pub slot_bounds: RwLock<Vec<Option<u64>>>,
    /// Static lower bound per shard group, fixed at spawn.
    pub group_bounds: Vec<Option<u64>>,
    pub workers: Vec<WorkerHandle>,
    /// One metrics row per registry model slot; grows in lockstep with
    /// the registry. Rows are `Arc` so the request lifecycle resolves
    /// its row once at admission and never re-locks.
    pub model_metrics: RwLock<Vec<Arc<ModelMetrics>>>,
    /// One metrics row per shard group, fixed at spawn.
    pub group_metrics: Vec<Arc<ModelMetrics>>,
    /// One client↔worker link per worker, in worker order.
    pub links: Vec<LinkMetrics>,
    pub router: Router,
    pub cfg: ServerConfig,
    /// The live network model. Replaceable at runtime
    /// ([`Server::set_network`]) so a fleet controller can inject and
    /// repair link faults while traffic flows.
    pub net: RwLock<NetworkModel>,
    next_id: AtomicU64,
    /// Sampled request traces, oldest first, bounded at
    /// [`TRACE_LOG_CAP`].
    trace_log: Mutex<VecDeque<RequestTrace>>,
    /// Tail-sampled flight records, oldest first, bounded at
    /// `cfg.flight_recorder.capacity`. Empty unless the recorder is
    /// configured.
    flight_log: Mutex<VecDeque<FlightRecord>>,
    /// Extra Prometheus renderers appended to the server's own
    /// exposition — how higher layers (fleet counters, SLO/alert gauges)
    /// publish through the one TAG_PROM scrape target. Each must render
    /// a complete, valid text exposition with family names disjoint from
    /// every other contributor's.
    extra_prom: RwLock<Vec<Arc<dyn Fn() -> String + Send + Sync>>>,
}

impl ServerInner {
    fn next_request_id(&self) -> RequestId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// A copy of the live network model.
    fn network(&self) -> NetworkModel {
        *self.net.read()
    }

    /// The metrics row for model slot `slot`.
    fn model_metric(&self, slot: usize) -> Arc<ModelMetrics> {
        Arc::clone(&self.model_metrics.read()[slot])
    }

    /// `(name, metrics)` rows: registry models first, then shard groups.
    fn metric_rows(&self) -> Vec<(String, Arc<ModelMetrics>)> {
        let registry = self.registry.read();
        let models = self.model_metrics.read();
        let mut rows: Vec<(String, Arc<ModelMetrics>)> = registry
            .artifacts()
            .iter()
            .zip(models.iter())
            .map(|(a, m)| (a.name().to_owned(), Arc::clone(m)))
            .collect();
        rows.extend(
            registry
                .groups()
                .iter()
                .zip(&self.group_metrics)
                .map(|(g, m)| (g.name.clone(), Arc::clone(m))),
        );
        rows
    }

    /// Per-worker model residency: `(model name, seconds pinned)` for
    /// every slot currently pinned on the worker.
    fn residency(&self) -> Vec<Vec<ModelResidency>> {
        let names: Vec<String> = {
            let registry = self.registry.read();
            registry.names().into_iter().map(str::to_owned).collect()
        };
        self.workers
            .iter()
            .map(|w| {
                w.resident_slots()
                    .into_iter()
                    .filter_map(|(slot, age)| {
                        names.get(slot).map(|n| ModelResidency {
                            model: n.clone(),
                            pinned_for_s: age.as_secs_f64(),
                        })
                    })
                    .collect()
            })
            .collect()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            models: self
                .metric_rows()
                .into_iter()
                .map(|(name, m)| snapshot_model(&name, &m))
                .collect(),
            queue_depths: self.workers.iter().map(WorkerHandle::queue_depth).collect(),
            workers_alive: self.workers.iter().map(WorkerHandle::is_alive).collect(),
            worker_processed: self
                .workers
                .iter()
                .map(WorkerHandle::processed_count)
                .collect(),
            worker_models: self.residency(),
            link_transfers: self
                .links
                .iter()
                .map(|l| l.transfers.load(Ordering::Relaxed))
                .collect(),
            link_bytes: self
                .links
                .iter()
                .map(|l| l.bytes.load(Ordering::Relaxed))
                .collect(),
            link_busy_s: self
                .links
                .iter()
                .map(|l| l.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9)
                .collect(),
        }
    }

    fn push_trace(&self, trace: RequestTrace) {
        let mut log = self.trace_log.lock();
        if log.len() >= TRACE_LOG_CAP {
            log.pop_front();
        }
        log.push_back(trace);
    }

    /// Retains one flight record, bounded at the configured capacity
    /// (oldest dropped first). No-op when the recorder is off.
    fn push_flight(&self, record: FlightRecord) {
        let Some(fr) = self.cfg.flight_recorder else {
            return;
        };
        if fr.capacity == 0 {
            return;
        }
        let mut log = self.flight_log.lock();
        if log.len() >= fr.capacity {
            log.pop_front();
        }
        log.push_back(record);
    }

    /// Whether the flight recorder wants a failure record for a
    /// terminal error (shed requests never got capacity — they are an
    /// admission outcome, not a serving failure worth a span tree).
    fn flight_wants_failure(&self, err: &ServeError) -> bool {
        self.cfg.flight_recorder.is_some() && !err.is_shed()
    }

    fn prometheus(&self) -> String {
        let mut text = self.prometheus_base();
        for render in self.extra_prom.read().iter() {
            let extra = render();
            if !extra.is_empty() {
                text.push_str(&extra);
            }
        }
        text
    }

    fn prometheus_base(&self) -> String {
        let rows = self.metric_rows();
        let models: Vec<(&str, &ModelMetrics)> = rows
            .iter()
            .map(|(name, m)| (name.as_str(), m.as_ref()))
            .collect();
        let residency = self.residency();
        let workers: Vec<WorkerRow> = self
            .workers
            .iter()
            .zip(residency)
            .enumerate()
            .map(|(id, (w, resident))| WorkerRow {
                id,
                queue_depth: w.queue_depth(),
                alive: w.is_alive(),
                processed: w.processed_count(),
                resident,
            })
            .collect();
        let links: Vec<LinkRow> = self
            .links
            .iter()
            .enumerate()
            .map(|(id, l)| LinkRow {
                id,
                transfers: l.transfers.load(Ordering::Relaxed),
                bytes: l.bytes.load(Ordering::Relaxed),
                busy_s: l.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            })
            .collect();
        render_prometheus(&models, &workers, &links)
    }

    /// Records one modeled transfer leg of `bytes` over worker `worker`'s
    /// link, returning the leg's modeled seconds (zero on an ideal
    /// network). A degraded link multiplies the leg's cost. The caller
    /// decides how to sleep — parallel scatter legs overlap, so only the
    /// longest leg is slept.
    fn charge_leg(&self, worker: usize, bytes: usize) -> f64 {
        let net = self.network();
        if net.is_ideal() {
            return 0.0;
        }
        let s = net.one_way_on(worker, bytes);
        self.links[worker].record(bytes, s);
        s
    }

    /// Walks the router's plan and enqueues the job on the first replica
    /// that both pins the model slot and is reachable over a live link.
    /// Returns the worker id, or what stopped dispatch.
    fn dispatch(
        &self,
        spec: &DispatchSpec,
        input: &Arc<Vec<f32>>,
        tried: &[usize],
    ) -> Result<(usize, Receiver<Completion>), DispatchStopped> {
        self.dispatch_payload(spec, &Payload::Single(Arc::clone(input)), tried)
    }

    /// [`ServerInner::dispatch`] generalized over the payload shape: the
    /// batcher dispatches a whole coalesced [`Payload::Batch`] through
    /// the same routing, liveness, and bounded-queue admission as a
    /// single request.
    fn dispatch_payload(
        &self,
        spec: &DispatchSpec,
        payload: &Payload,
        tried: &[usize],
    ) -> Result<(usize, Receiver<Completion>), DispatchStopped> {
        let net = self.network();
        let plan = self.router.plan_eligible(&self.workers, tried, |w| {
            self.workers[w].pins(spec.model) && net.link_up(w)
        });
        if plan.is_empty() {
            return Err(DispatchStopped::NoReplica);
        }
        let mut all_full = true;
        for worker in plan {
            let (tx, rx) = std::sync::mpsc::channel();
            let job = Job {
                attempt: spec.attempt,
                model: spec.model,
                payload: payload.clone(),
                deadline: spec.deadline,
                reply: tx,
                trace_id: spec.trace_id,
                enqueued_at: Instant::now(),
                collect_spans: spec.collect_spans,
            };
            match self.workers[worker].try_dispatch(job) {
                Ok(()) => return Ok((worker, rx)),
                Err(DispatchRefused::QueueFull) => {}
                Err(DispatchRefused::Dead) => all_full = false,
            }
        }
        if all_full {
            Err(DispatchStopped::AllFull)
        } else {
            Err(DispatchStopped::NoReplica)
        }
    }
}

/// Per-attempt dispatch parameters (the request-constant ones plus the
/// attempt ordinal).
struct DispatchSpec {
    attempt: u32,
    model: usize,
    deadline: Instant,
    trace_id: u64,
    collect_spans: bool,
}

enum DispatchStopped {
    /// Every candidate's queue was full.
    AllFull,
    /// No live, untried candidate exists.
    NoReplica,
}

/// Builds a [`Server`]: register models, set the pool shape, spawn.
#[derive(Default)]
pub struct ServerBuilder {
    registry: ModelRegistry,
    cfg: ServerConfig,
    registry_error: Option<RegistryError>,
    sla_budgets: Vec<(String, Duration)>,
    placements: Vec<(String, Vec<usize>)>,
}

impl ServerBuilder {
    /// Registers a model artifact.
    pub fn model(mut self, artifact: ModelArtifact) -> Self {
        if self.registry_error.is_none() {
            if let Err(e) = self.registry.register(artifact) {
                self.registry_error = Some(e);
            }
        }
        self
    }

    /// Registers a sharded model: its member artifacts pin on disjoint
    /// owner sets and a request for the group name runs scatter/gather
    /// across them. Requires `replicas >=` the group's widest segment at
    /// spawn.
    pub fn sharded_model(mut self, sharded: ShardedArtifact) -> Self {
        if self.registry_error.is_none() {
            if let Err(e) = self.registry.register_sharded(sharded) {
                self.registry_error = Some(e);
            }
        }
        self
    }

    /// Declares a deadline budget the registry must prove `model` (a
    /// whole model or a shard group) can meet: spawn refuses with
    /// [`SpawnError::SlaUnmeetable`] if the model's static cycle lower
    /// bound already exceeds `budget`.
    pub fn sla_budget(mut self, model: impl Into<String>, budget: Duration) -> Self {
        self.sla_budgets.push((model.into(), budget));
        self
    }

    /// Sets the client↔worker network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.cfg.network = network;
        self
    }

    /// Sets the weight-preload cost model charged by
    /// [`Server::pin_model`].
    pub fn preload(mut self, preload: PreloadModel) -> Self {
        self.cfg.preload = preload;
        self
    }

    /// Restricts a whole model's boot-time placement to the given
    /// workers instead of pinning it everywhere. The fleet layer uses
    /// this to start a model at a small replica count and let the
    /// controller grow it. Shard-group members keep their ownership rule
    /// and cannot be placed.
    pub fn pin_on(mut self, model: impl Into<String>, workers: impl Into<Vec<usize>>) -> Self {
        self.placements.push((model.into(), workers.into()));
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: ServerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the worker count.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas;
        self
    }

    /// Sets the bounded per-worker queue capacity.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.cfg.queue_cap = cap;
        self
    }

    /// Sets the routing policy.
    pub fn policy(mut self, policy: Routing) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the failover retry budget.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Sets the per-attempt timeout.
    pub fn attempt_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.attempt_timeout = Some(timeout);
        self
    }

    /// Sets span-trace sampling: full NPU span traces for one request in
    /// every `n` (0 disables, 1 traces all).
    pub fn trace_sample(mut self, n: u64) -> Self {
        self.cfg.trace_sample = n;
        self
    }

    /// Arms the tail-sampling flight recorder: completed requests slower
    /// than `latency_objective` (and failed requests) are retained with
    /// their full span trees in a ring of `capacity` records, drained
    /// via [`Server::take_flight_records`].
    pub fn flight_recorder(mut self, latency_objective: Duration, capacity: usize) -> Self {
        self.cfg.flight_recorder = Some(FlightRecorderConfig {
            latency_objective,
            capacity,
        });
        self
    }

    /// Spawns the pool: every worker pins every whole model; shard
    /// members pin only on their owner set (worker `w` owns shard `k` of
    /// a `K`-wide segment iff `w % K == k`, so owner sets are disjoint
    /// across the segment and every shard has `replicas / K` owners).
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] on an empty registry, a bad configuration
    /// (including fewer replicas than the widest shard segment), or a
    /// pin failure.
    pub fn spawn(self) -> Result<Server, SpawnError> {
        if let Some(e) = self.registry_error {
            return Err(e.into());
        }
        if self.registry.is_empty() {
            return Err(SpawnError::NoModels);
        }
        if self.cfg.replicas == 0 {
            return Err(SpawnError::BadConfig("replicas must be positive".into()));
        }
        if self.cfg.queue_cap == 0 {
            return Err(SpawnError::BadConfig("queue_cap must be positive".into()));
        }
        let widest = self
            .registry
            .groups()
            .iter()
            .map(|g| g.max_width())
            .max()
            .unwrap_or(1);
        if self.cfg.replicas < widest {
            return Err(SpawnError::BadConfig(format!(
                "{} replicas cannot host a {widest}-shard segment (one distinct worker per shard)",
                self.cfg.replicas
            )));
        }

        // Static admission bounds: one row per registry slot, then one
        // per shard group (stage bounds add; scatter/gather members take
        // the max — the gather waits on the slowest shard).
        let slot_bounds: Vec<Option<u64>> = self
            .registry
            .artifacts()
            .iter()
            .map(|a| {
                a.static_bounds()
                    .map(|b| cycles_to_us_ceil(b.lower, a.config().clock_hz()))
            })
            .collect();
        let mut group_bounds = Vec::with_capacity(self.registry.groups().len());
        for group in self.registry.groups() {
            let total = group.segments.iter().try_fold(0u64, |acc, segment| {
                let slowest = segment
                    .members()
                    .iter()
                    .map(|&m| slot_bounds[m])
                    .try_fold(0u64, |mx, b| b.map(|v| mx.max(v)))?;
                Some(acc.saturating_add(slowest))
            });
            group_bounds.push(total);
        }

        // Declared budgets are a registration-time contract: refuse to
        // pin a model whose bound proves its budget unmeetable.
        for (model, budget) in &self.sla_budgets {
            let bound = self
                .registry
                .index_of(model)
                .map(|s| slot_bounds[s])
                .or_else(|| self.registry.group_index_of(model).map(|g| group_bounds[g]));
            let Some(bound) = bound else {
                return Err(SpawnError::BadConfig(format!(
                    "sla budget declared for unregistered model `{model}`"
                )));
            };
            let Some(bound) = bound else {
                return Err(SpawnError::BadConfig(format!(
                    "sla budget declared for `{model}` but no static cycle \
                     bound is provable"
                )));
            };
            let budget_us = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
            if bound > budget_us {
                return Err(SpawnError::SlaUnmeetable {
                    model: model.clone(),
                    bound_us: bound,
                    budget_us,
                });
            }
        }

        // Shard ownership: slot -> (shard ordinal, segment width). Group
        // membership (sharded or single-segment) disqualifies a slot
        // from explicit placement.
        let mut shard_of: Vec<Option<(usize, usize)>> = vec![None; self.registry.len()];
        let mut in_group: Vec<bool> = vec![false; self.registry.len()];
        for group in self.registry.groups() {
            for segment in &group.segments {
                for slot in segment.members() {
                    in_group[slot] = true;
                }
                if let GroupSegment::Sharded(members) = segment {
                    for (k, &slot) in members.iter().enumerate() {
                        shard_of[slot] = Some((k, members.len()));
                    }
                }
            }
        }

        // Explicit boot placements: whole models only, on known workers,
        // at least one replica each.
        let mut placement_of: Vec<Option<Vec<usize>>> = vec![None; self.registry.len()];
        for (model, workers) in &self.placements {
            let Some(slot) = self.registry.index_of(model) else {
                return Err(SpawnError::BadConfig(format!(
                    "placement declared for unregistered model `{model}`"
                )));
            };
            if in_group[slot] {
                return Err(SpawnError::BadConfig(format!(
                    "placement declared for shard-group member `{model}`"
                )));
            }
            if workers.is_empty() {
                return Err(SpawnError::BadConfig(format!(
                    "placement for `{model}` names no workers"
                )));
            }
            if let Some(&bad) = workers.iter().find(|&&w| w >= self.cfg.replicas) {
                return Err(SpawnError::BadConfig(format!(
                    "placement for `{model}` names worker {bad} but the pool \
                     has {} replicas",
                    self.cfg.replicas
                )));
            }
            placement_of[slot] = Some(workers.clone());
        }

        let mut workers = Vec::with_capacity(self.cfg.replicas);
        for id in 0..self.cfg.replicas {
            let mut pinned = Vec::with_capacity(self.registry.len());
            for (slot, artifact) in self.registry.artifacts().iter().enumerate() {
                let owns = shard_of[slot].is_none_or(|(k, width)| id % width == k)
                    && placement_of[slot]
                        .as_ref()
                        .is_none_or(|set| set.contains(&id));
                if !owns {
                    pinned.push(None);
                    continue;
                }
                let pin = artifact.pin().map_err(|error| SpawnError::Pin {
                    model: artifact.name().to_owned(),
                    error,
                })?;
                pinned.push(Some(pin));
            }
            workers.push(spawn_worker(id, pinned, self.cfg.queue_cap));
        }

        let model_metrics = (0..self.registry.len())
            .map(|_| Arc::new(ModelMetrics::default()))
            .collect();
        let group_metrics = (0..self.registry.groups().len())
            .map(|_| Arc::new(ModelMetrics::default()))
            .collect();
        let links = (0..self.cfg.replicas)
            .map(|_| LinkMetrics::default())
            .collect();
        Ok(Server {
            inner: Arc::new(ServerInner {
                router: Router::new(self.cfg.policy, self.cfg.seed),
                registry: RwLock::new(self.registry),
                slot_bounds: RwLock::new(slot_bounds),
                group_bounds,
                workers,
                model_metrics: RwLock::new(model_metrics),
                group_metrics,
                links,
                net: RwLock::new(self.cfg.network),
                cfg: self.cfg,
                next_id: AtomicU64::new(1),
                trace_log: Mutex::new(VecDeque::new()),
                flight_log: Mutex::new(VecDeque::new()),
                extra_prom: RwLock::new(Vec::new()),
            }),
        })
    }
}

/// Error produced by the runtime pin/unpin control plane
/// ([`Server::pin_model`], [`Server::unpin_model`],
/// [`Server::drain_worker`]).
#[derive(Debug)]
pub enum PinError {
    /// The model name is not registered.
    UnknownModel(
        /// The unknown name.
        String,
    ),
    /// The name addresses a shard group; groups have fixed placement.
    GroupName(
        /// The group name.
        String,
    ),
    /// The worker id is outside the pool.
    UnknownWorker(
        /// The unknown id.
        usize,
    ),
    /// The worker is dead and cannot serve control operations.
    WorkerDead(
        /// The dead worker's id.
        usize,
    ),
    /// The model is already pinned on that worker.
    AlreadyPinned {
        /// The model.
        model: String,
        /// The worker already holding it.
        worker: usize,
    },
    /// The model is not pinned on that worker.
    NotPinned {
        /// The model.
        model: String,
        /// The worker.
        worker: usize,
    },
    /// Refusing to unpin the last live replica: doing so would strand
    /// the model with no serving capacity. Pin another replica first
    /// (that is what migration's dual-pin phase does).
    LastReplica {
        /// The model.
        model: String,
    },
    /// Deploying the artifact onto the simulated device failed.
    Pin {
        /// The model.
        model: String,
        /// The deployment error.
        error: bw_gir::DeployError,
    },
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            PinError::GroupName(m) => {
                write!(f, "`{m}` is a shard group; groups have fixed placement")
            }
            PinError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            PinError::WorkerDead(w) => write!(f, "worker {w} is dead"),
            PinError::AlreadyPinned { model, worker } => {
                write!(f, "`{model}` is already pinned on worker {worker}")
            }
            PinError::NotPinned { model, worker } => {
                write!(f, "`{model}` is not pinned on worker {worker}")
            }
            PinError::LastReplica { model } => {
                write!(f, "refusing to unpin the last live replica of `{model}`")
            }
            PinError::Pin { model, error } => write!(f, "pinning `{model}` failed: {error}"),
        }
    }
}

impl std::error::Error for PinError {}

/// A running serving pool. Dropping the server stops every worker after
/// the work already queued (injected-fault workers stop immediately).
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Starts building a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// An in-process client for this server. Clients are cheap to clone
    /// and usable from any thread.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Number of workers (live or dead).
    pub fn worker_count(&self) -> usize {
        self.inner.workers.len()
    }

    /// Per-worker liveness, in worker order.
    pub fn workers_alive(&self) -> Vec<bool> {
        self.inner
            .workers
            .iter()
            .map(WorkerHandle::is_alive)
            .collect()
    }

    /// Injects a fault into worker `id`: it stops accepting work
    /// immediately and its thread dies at the next queue pop, dropping
    /// queued jobs (their requests fail over). Returns `false` for an
    /// unknown id.
    pub fn kill_worker(&self, id: usize) -> bool {
        match self.inner.workers.get(id) {
            Some(w) => {
                w.kill();
                true
            }
            None => false,
        }
    }

    /// Pins `model` onto worker `worker` at runtime, paying the
    /// configured weight-preload cost: the worker is busy streaming
    /// weights for the modeled interval (queued work waits behind it)
    /// and the preload transfer is charged against the worker's link.
    /// Returns the simulated preload duration. The model becomes
    /// routable the moment the worker finishes the preload.
    ///
    /// # Errors
    ///
    /// Returns [`PinError`] on an unknown model/worker, a shard-group
    /// name, a dead worker, a double pin, or a deployment failure.
    pub fn pin_model(&self, model: &str, worker: usize) -> Result<Duration, PinError> {
        let inner = &self.inner;
        let Some(handle) = inner.workers.get(worker) else {
            return Err(PinError::UnknownWorker(worker));
        };
        if !handle.is_alive() {
            return Err(PinError::WorkerDead(worker));
        }
        let (slot, artifact) = {
            let registry = inner.registry.read();
            if registry.group_index_of(model).is_some() {
                return Err(PinError::GroupName(model.to_owned()));
            }
            let Some(slot) = registry.index_of(model) else {
                return Err(PinError::UnknownModel(model.to_owned()));
            };
            (slot, Arc::clone(registry.get(slot).expect("slot valid")))
        };
        if handle.pins(slot) {
            return Err(PinError::AlreadyPinned {
                model: model.to_owned(),
                worker,
            });
        }
        // Deploy on the caller's thread; the worker only sleeps the
        // modeled preload and installs the finished instance.
        let pin = artifact.pin().map_err(|error| PinError::Pin {
            model: model.to_owned(),
            error,
        })?;
        let bytes = usize::try_from(artifact.mrf_fill_bytes()).unwrap_or(usize::MAX);
        let net = inner.network();
        let preload_s = inner.cfg.preload.preload_s(bytes, &net, worker);
        if preload_s > 0.0 && bytes > 0 {
            inner.links[worker].record(bytes, preload_s);
        }
        handle
            .control(Control::Pin {
                slot,
                model: Box::new(pin),
                preload_s,
            })
            .map_err(|_| PinError::WorkerDead(worker))?;
        Ok(Duration::from_secs_f64(preload_s))
    }

    /// Unpins `model` from worker `worker`. Routing stops immediately;
    /// jobs already queued on the worker still drain (the unpin rides
    /// the same FIFO queue), so in-flight requests are never dropped.
    ///
    /// # Errors
    ///
    /// Returns [`PinError`]; notably [`PinError::LastReplica`] when the
    /// unpin would leave the model with no live replica.
    pub fn unpin_model(&self, model: &str, worker: usize) -> Result<(), PinError> {
        let inner = &self.inner;
        let Some(handle) = inner.workers.get(worker) else {
            return Err(PinError::UnknownWorker(worker));
        };
        let slot = {
            let registry = inner.registry.read();
            if registry.group_index_of(model).is_some() {
                return Err(PinError::GroupName(model.to_owned()));
            }
            let Some(slot) = registry.index_of(model) else {
                return Err(PinError::UnknownModel(model.to_owned()));
            };
            slot
        };
        if !handle.pins(slot) {
            return Err(PinError::NotPinned {
                model: model.to_owned(),
                worker,
            });
        }
        let live_replicas = inner
            .workers
            .iter()
            .filter(|w| w.is_alive() && w.pins(slot))
            .count();
        if handle.is_alive() && live_replicas <= 1 {
            return Err(PinError::LastReplica {
                model: model.to_owned(),
            });
        }
        // Clear the routing flag first so no new work lands, then let
        // the queued unpin drain behind the work already accepted. A
        // worker that died in between has already dropped its queue;
        // the unpin still holds.
        handle.clear_pin(slot);
        let _ = handle.control(Control::Unpin { slot });
        Ok(())
    }

    /// Blocks until every job worker `worker` had queued when the call
    /// was made has been served (a FIFO barrier). Returns immediately
    /// for a dead worker — its queue is already gone.
    ///
    /// # Errors
    ///
    /// Returns [`PinError::UnknownWorker`] for an id outside the pool.
    pub fn drain_worker(&self, worker: usize) -> Result<(), PinError> {
        let Some(handle) = self.inner.workers.get(worker) else {
            return Err(PinError::UnknownWorker(worker));
        };
        let _ = handle.control(Control::Flush);
        Ok(())
    }

    /// Registers a whole model at runtime without pinning it anywhere;
    /// follow with [`Server::pin_model`] to give it capacity. Returns
    /// the model's registry slot.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] on a name collision.
    pub fn register_model(&self, artifact: ModelArtifact) -> Result<usize, RegistryError> {
        let bound = artifact
            .static_bounds()
            .map(|b| cycles_to_us_ceil(b.lower, artifact.config().clock_hz()));
        let inner = &self.inner;
        let mut registry = inner.registry.write();
        let slot = registry.register(artifact)?;
        // Grown under the registry write lock so readers never observe a
        // model without its bound and metrics rows.
        inner.slot_bounds.write().push(bound);
        inner
            .model_metrics
            .write()
            .push(Arc::new(ModelMetrics::default()));
        Ok(slot)
    }

    /// Replaces the live network model (fault injection and repair).
    /// Routing, transfer charging, and preload costs see the new model
    /// immediately; requests already sleeping a leg finish at the old
    /// cost.
    pub fn set_network(&self, net: NetworkModel) {
        *self.inner.net.write() = net;
    }

    /// A copy of the live network model.
    pub fn network(&self) -> NetworkModel {
        self.inner.network()
    }

    /// The live workers currently pinning `model`, in worker order
    /// (empty for an unknown name).
    pub fn pinned_workers(&self, model: &str) -> Vec<usize> {
        let Some(slot) = self.inner.registry.read().index_of(model) else {
            return Vec::new();
        };
        self.inner
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_alive() && w.pins(slot))
            .map(|(id, _)| id)
            .collect()
    }

    /// What pinning `model` onto `worker` would cost right now, given
    /// the live network model (None for an unknown model).
    pub fn preload_cost(&self, model: &str, worker: usize) -> Option<Duration> {
        let bytes = {
            let registry = self.inner.registry.read();
            usize::try_from(registry.lookup(model)?.mrf_fill_bytes()).unwrap_or(usize::MAX)
        };
        let net = self.inner.network();
        Some(Duration::from_secs_f64(
            self.inner.cfg.preload.preload_s(bytes, &net, worker),
        ))
    }

    /// A point-in-time metrics reading.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// The live metrics as a Prometheus text exposition (format 0.0.4).
    pub fn prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// Drains the sampled request traces collected so far (oldest
    /// first). Traces accumulate only when `trace_sample > 0`; the log
    /// keeps the most recent 256.
    pub fn take_traces(&self) -> Vec<RequestTrace> {
        self.inner.trace_log.lock().drain(..).collect()
    }

    /// Drains the tail-sampled flight records collected so far (oldest
    /// first): the full span tree of every request that breached the
    /// configured latency objective or failed, bounded at the
    /// recorder's capacity. Empty unless
    /// [`ServerBuilder::flight_recorder`] armed the recorder.
    pub fn take_flight_records(&self) -> Vec<FlightRecord> {
        self.inner.flight_log.lock().drain(..).collect()
    }

    /// Registers an extra Prometheus renderer whose output is appended
    /// to this server's exposition — every scrape of
    /// [`Server::prometheus`] (and the TCP `TAG_PROM` endpoint) then
    /// serves the combined document, so one scrape target carries
    /// serve, fleet, and SLO series together. `render` must produce a
    /// complete, valid text exposition whose family names are disjoint
    /// from the server's own (`bw_requests_*`, `bw_request_*`,
    /// `bw_npu_*`, `bw_worker_*`, `bw_link_*`) and from every other
    /// registered source.
    pub fn add_prometheus_source(&self, render: impl Fn() -> String + Send + Sync + 'static) {
        self.inner.extra_prom.write().push(Arc::new(render));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        for worker in &self.inner.workers {
            worker.stop_and_join();
        }
    }
}

/// An in-process handle for submitting requests.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServerInner>,
}

impl Client {
    /// Validates, admits, and dispatches a request; the returned
    /// [`Pending`] drives the rest of the lifecycle. `deadline` is the
    /// total end-to-end budget from this call.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] / [`ServeError::BadInput`]
    /// before admission (not counted), or [`ServeError::Shed`] /
    /// [`ServeError::NoReplica`] at admission (counted).
    pub fn submit(
        &self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Pending, ServeError> {
        let inner = &self.inner;
        let (model_idx, expected, bound) = {
            let registry = inner.registry.read();
            if let Some(group_idx) = registry.group_index_of(model) {
                drop(registry);
                return self.submit_group(group_idx, input, deadline);
            }
            let Some(model_idx) = registry.index_of(model) else {
                return Err(ServeError::UnknownModel(model.to_owned()));
            };
            let expected = registry.get(model_idx).expect("index valid").input_dim();
            (model_idx, expected, inner.slot_bounds.read()[model_idx])
        };
        if input.len() != expected {
            return Err(ServeError::BadInput {
                expected,
                got: input.len(),
            });
        }
        check_sla(model, bound, deadline)?;

        let metrics = inner.model_metric(model_idx);
        metrics.submitted.fetch_add(1, Ordering::Relaxed);

        let submitted = Instant::now();
        let deadline_at = submitted + deadline;
        let request_id = inner.next_request_id();
        let input = Arc::new(input.to_vec());
        // The flight recorder decides retention at termination, but
        // workers only emit spans when asked at dispatch — so an armed
        // recorder traces every request and discards the uninteresting
        // ones, while head sampling keeps feeding the trace log.
        let collect_spans =
            head_sampled(&inner.cfg, request_id) || inner.cfg.flight_recorder.is_some();
        let spec = DispatchSpec {
            attempt: 0,
            model: model_idx,
            deadline: deadline_at,
            trace_id: request_id,
            collect_spans,
        };

        match inner.dispatch(&spec, &input, &[]) {
            Ok((worker, rx)) => Ok(Pending {
                state: PendingState::Single(SinglePending {
                    inner: Arc::clone(inner),
                    request_id,
                    model_idx,
                    model: model.to_owned(),
                    metrics,
                    input,
                    submitted,
                    deadline: deadline_at,
                    attempt: 0,
                    tried: vec![worker],
                    retries: 0,
                    collect_spans,
                    rx,
                    settled: false,
                }),
            }),
            Err(DispatchStopped::AllFull) => {
                metrics.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Shed {
                    model: model.to_owned(),
                })
            }
            Err(DispatchStopped::NoReplica) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                let err = ServeError::NoReplica {
                    model: model.to_owned(),
                };
                if inner.flight_wants_failure(&err) {
                    inner.push_flight(flight_failure(request_id, model, &err.to_string()));
                }
                Err(err)
            }
        }
    }

    /// Admits and scatters segment 0 of a shard-group request; the
    /// returned [`Pending`] drives the remaining segments.
    fn submit_group(
        &self,
        group_idx: usize,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Pending, ServeError> {
        let inner = &self.inner;
        let (name, input_dim) = {
            let registry = inner.registry.read();
            let group = registry.group(group_idx).expect("index valid");
            (group.name.clone(), group.input_dim)
        };
        if input.len() != input_dim {
            return Err(ServeError::BadInput {
                expected: input_dim,
                got: input.len(),
            });
        }
        check_sla(&name, inner.group_bounds[group_idx], deadline)?;
        let metrics = Arc::clone(&inner.group_metrics[group_idx]);
        metrics.submitted.fetch_add(1, Ordering::Relaxed);

        let submitted = Instant::now();
        let request_id = inner.next_request_id();
        let collect_spans =
            head_sampled(&inner.cfg, request_id) || inner.cfg.flight_recorder.is_some();
        let mut pending = GroupPending {
            inner: Arc::clone(inner),
            request_id,
            group_idx,
            metrics,
            name: name.clone(),
            submitted,
            deadline: submitted + deadline,
            collect_spans,
            seg_idx: 0,
            inflight: Vec::new(),
            carry: Arc::new(input.to_vec()),
            retries: 0,
            network_s: 0.0,
            queue_wait_s: 0.0,
            service_s: 0.0,
            stats: RunStats::default(),
            spans: Vec::new(),
            last_worker: 0,
            settled: false,
        };
        // Scatter the first segment now, so admission-time shedding
        // matches the single-model path.
        match pending.scatter() {
            Ok(()) => Ok(Pending {
                state: PendingState::Group(pending),
            }),
            Err(DispatchStopped::AllFull) => Err(pending.shed()),
            Err(DispatchStopped::NoReplica) => {
                Err(pending.fail(ServeError::NoReplica { model: name }))
            }
        }
    }

    /// [`Client::submit`] + [`Pending::wait`] in one call.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Pending::wait`].
    pub fn call(
        &self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Response, ServeError> {
        self.submit(model, input, deadline)?.wait()
    }

    /// Serves a coalesced micro-batch of same-model requests as **one**
    /// multi-column dispatch, splitting the result back into one
    /// [`Response`] (or [`ServeError`]) per member, in input order.
    ///
    /// The admission ledger treats every member as its own request:
    /// each gets a request id, counts toward `submitted` when admitted,
    /// and terminates exactly once as completed, shed, or failed — the
    /// accounting identity holds under coalescing, including mid-batch
    /// worker kill (the whole batch fails over together; members whose
    /// deadlines lapse fail individually). Members that fail validation
    /// ([`ServeError::BadInput`], [`ServeError::SlaUnmeetable`]) are
    /// rejected without admission and without blocking the rest.
    ///
    /// Latency is measured from each member's [`BatchItem::arrived_at`],
    /// so time spent coalescing in a batcher window is charged to the
    /// request that waited. Shard-group models don't coalesce; they fall
    /// back to per-member [`Client::call`].
    pub fn call_batch(
        &self,
        model: &str,
        items: &[BatchItem],
    ) -> Vec<Result<Response, ServeError>> {
        if items.is_empty() {
            return Vec::new();
        }
        let inner = &self.inner;
        let (model_idx, expected, bound) = {
            let registry = inner.registry.read();
            if registry.group_index_of(model).is_some() {
                drop(registry);
                return items
                    .iter()
                    .map(|item| {
                        let budget = item.deadline_at.saturating_duration_since(Instant::now());
                        self.call(model, &item.input, budget)
                    })
                    .collect();
            }
            let Some(model_idx) = registry.index_of(model) else {
                return items
                    .iter()
                    .map(|_| Err(ServeError::UnknownModel(model.to_owned())))
                    .collect();
            };
            let expected = registry.get(model_idx).expect("index valid").input_dim();
            (model_idx, expected, inner.slot_bounds.read()[model_idx])
        };

        // Per-member validation: rejected members never count as
        // submitted and don't hold up the coalesced dispatch.
        let now = Instant::now();
        let mut results: Vec<Option<Result<Response, ServeError>>> =
            items.iter().map(|_| None).collect();
        let mut admitted: Vec<usize> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            if item.input.len() != expected {
                results[i] = Some(Err(ServeError::BadInput {
                    expected,
                    got: item.input.len(),
                }));
            } else if let Err(e) = check_sla(
                model,
                bound,
                item.deadline_at.saturating_duration_since(now),
            ) {
                results[i] = Some(Err(e));
            } else {
                admitted.push(i);
            }
        }
        if !admitted.is_empty() {
            let member_results = self.drive_batch(model, model_idx, items, &admitted);
            for (i, r) in admitted.into_iter().zip(member_results) {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every member settled"))
            .collect()
    }

    /// Admits and drives the already-validated members of a batch to
    /// termination: one coalesced dispatch, whole-batch failover, one
    /// result per member in `admitted` order.
    fn drive_batch(
        &self,
        model: &str,
        model_idx: usize,
        items: &[BatchItem],
        admitted: &[usize],
    ) -> Vec<Result<Response, ServeError>> {
        let inner = &self.inner;
        let cfg = inner.cfg;
        let k = admitted.len();
        let metrics = inner.model_metric(model_idx);
        metrics.submitted.fetch_add(k as u64, Ordering::Relaxed);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics
            .batched_requests
            .fetch_add(k as u64, Ordering::Relaxed);

        let request_ids: Vec<RequestId> =
            admitted.iter().map(|_| inner.next_request_id()).collect();
        // The batch deadline (worker expiry + overall wait budget) is the
        // latest member deadline; earlier members are checked
        // individually at completion.
        let batch_deadline = admitted
            .iter()
            .map(|&i| items[i].deadline_at)
            .max()
            .expect("non-empty batch");
        let trace_id = request_ids[0];
        let collect_spans =
            request_ids.iter().any(|&id| head_sampled(&cfg, id)) || cfg.flight_recorder.is_some();
        let payload = Payload::Batch(Arc::new(
            admitted.iter().map(|&i| items[i].input.clone()).collect(),
        ));

        // Terminal outcome of the whole batch, before per-member
        // splitting.
        enum BatchOutcome {
            Served {
                worker: usize,
                outputs: Vec<Vec<f32>>,
                queue_wait_s: f64,
                service_s: f64,
                stats: RunStats,
                spans: Vec<SpanRecord>,
            },
            Deadline,
            Fault(String),
            NoReplica,
        }

        let mut attempt: u32 = 0;
        let mut retries: u32 = 0;
        let mut tried: Vec<usize> = Vec::new();
        let spec = DispatchSpec {
            attempt,
            model: model_idx,
            deadline: batch_deadline,
            trace_id,
            collect_spans,
        };
        let mut rx = match inner.dispatch_payload(&spec, &payload, &tried) {
            Ok((worker, rx)) => {
                tried.push(worker);
                rx
            }
            Err(DispatchStopped::AllFull) => {
                metrics.shed.fetch_add(k as u64, Ordering::Relaxed);
                return admitted
                    .iter()
                    .map(|_| {
                        Err(ServeError::Shed {
                            model: model.to_owned(),
                        })
                    })
                    .collect();
            }
            Err(DispatchStopped::NoReplica) => {
                metrics.failed.fetch_add(k as u64, Ordering::Relaxed);
                return request_ids
                    .iter()
                    .map(|&id| {
                        let err = ServeError::NoReplica {
                            model: model.to_owned(),
                        };
                        if inner.flight_wants_failure(&err) {
                            inner.push_flight(flight_failure(id, model, &err.to_string()));
                        }
                        Err(err)
                    })
                    .collect();
            }
        };

        let outcome = loop {
            let now = Instant::now();
            if now >= batch_deadline {
                break BatchOutcome::Deadline;
            }
            let budget = batch_deadline - now;
            let slice = cfg.attempt_timeout.map_or(budget, |t| t.min(budget));
            // Whole-batch failover: retries and re-dispatch cover every
            // member at once, mirroring the single-request lifecycle.
            // (The Err side only ever carries the small variants; Served
            // is built at the loop break.)
            #[allow(clippy::result_large_err)]
            let failover = |fault: Option<String>,
                            attempt: &mut u32,
                            retries: &mut u32,
                            tried: &mut Vec<usize>|
             -> Result<Receiver<Completion>, BatchOutcome> {
                if *retries >= cfg.max_retries {
                    return Err(match fault {
                        Some(message) => BatchOutcome::Fault(message),
                        None => BatchOutcome::Deadline,
                    });
                }
                *retries += 1;
                *attempt += 1;
                metrics.retries.fetch_add(k as u64, Ordering::Relaxed);
                let spec = DispatchSpec {
                    attempt: *attempt,
                    model: model_idx,
                    deadline: batch_deadline,
                    trace_id,
                    collect_spans,
                };
                match inner.dispatch_payload(&spec, &payload, tried) {
                    Ok((worker, rx)) => {
                        tried.push(worker);
                        Ok(rx)
                    }
                    Err(_) => Err(match fault {
                        Some(message) => BatchOutcome::Fault(message),
                        None => BatchOutcome::NoReplica,
                    }),
                }
            };
            match rx.recv_timeout(slice) {
                Ok(Completion::BatchDone {
                    attempt: a,
                    worker,
                    outputs,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                }) => {
                    if a != attempt {
                        continue; // stale attempt; keep waiting
                    }
                    break BatchOutcome::Served {
                        worker,
                        outputs,
                        queue_wait_s,
                        service_s,
                        stats,
                        spans,
                    };
                }
                // Batch attempts never carry single payloads.
                Ok(Completion::Done { .. }) => continue,
                Ok(Completion::Fault {
                    attempt: a,
                    worker,
                    message,
                }) => {
                    if a != attempt {
                        continue;
                    }
                    match failover(
                        Some(format!("worker {worker}: {message}")),
                        &mut attempt,
                        &mut retries,
                        &mut tried,
                    ) {
                        Ok(new_rx) => rx = new_rx,
                        Err(outcome) => break outcome,
                    }
                }
                Ok(Completion::Expired { attempt: a }) => {
                    if a != attempt {
                        continue;
                    }
                    break BatchOutcome::Deadline;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= batch_deadline {
                        break BatchOutcome::Deadline;
                    }
                    match failover(None, &mut attempt, &mut retries, &mut tried) {
                        Ok(new_rx) => rx = new_rx,
                        Err(outcome) => break outcome,
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The worker died with the whole batch queued or
                    // executing (mid-batch kill): fail over together.
                    match failover(None, &mut attempt, &mut retries, &mut tried) {
                        Ok(new_rx) => rx = new_rx,
                        Err(outcome) => break outcome,
                    }
                }
            }
        };

        match outcome {
            BatchOutcome::Served {
                worker,
                outputs,
                queue_wait_s,
                service_s,
                stats,
                spans,
            } => {
                // A coalesced batch crosses the worker's link as ONE
                // request message (all columns' inputs) and ONE response
                // message: the per-message hop latency is paid once per
                // direction and amortized over the members — the
                // front-end batching win — while the serialization term
                // still covers every member's bytes. Sleep the modeled
                // pair once, attribute each member an equal share.
                let input_bytes: usize = admitted.iter().map(|&i| items[i].input.len() * 4).sum();
                let output_bytes: usize = outputs.iter().map(|o| o.len() * 4).sum();
                let total_network =
                    inner.charge_leg(worker, input_bytes) + inner.charge_leg(worker, output_bytes);
                if total_network > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(total_network));
                }
                let network_share = total_network / k as f64;
                let completed_at = Instant::now();
                let k64 = k as u64;
                admitted
                    .iter()
                    .enumerate()
                    .zip(outputs)
                    .map(|((p, &i), output)| {
                        let id = request_ids[p];
                        // A member whose own deadline lapsed while the
                        // batch executed fails individually — coalescing
                        // must never convert a breach into a completion.
                        if completed_at >= items[i].deadline_at {
                            let err = ServeError::DeadlineExceeded {
                                model: model.to_owned(),
                                retries,
                            };
                            metrics.failed.fetch_add(1, Ordering::Relaxed);
                            if inner.flight_wants_failure(&err) {
                                inner.push_flight(flight_failure(id, model, &err.to_string()));
                            }
                            return Err(err);
                        }
                        let latency = completed_at.saturating_duration_since(items[i].arrived_at);
                        // Split the accelerator counters exactly: each
                        // member gets its integer share, remainders to
                        // the earliest members, so the per-model totals
                        // equal the batch totals.
                        let share = |total: u64| total / k64 + u64::from((p as u64) < total % k64);
                        let member_stats = RunStats {
                            cycles: share(stats.cycles),
                            mvm_macs: share(stats.mvm_macs),
                            dep_stall_cycles: share(stats.dep_stall_cycles),
                            resource_stall_cycles: share(stats.resource_stall_cycles),
                            ..stats.clone()
                        };
                        metrics.record_completed(latency.as_secs_f64());
                        metrics.record_attribution(
                            queue_wait_s,
                            service_s / k as f64,
                            network_share,
                            &member_stats,
                        );
                        let attribution = Attribution {
                            queue_wait: Duration::from_secs_f64(queue_wait_s),
                            service: Duration::from_secs_f64(service_s / k as f64),
                            network: Duration::from_secs_f64(network_share),
                            npu_cycles: member_stats.cycles,
                            npu_macs: member_stats.mvm_macs,
                            dep_stall_cycles: member_stats.dep_stall_cycles,
                            resource_stall_cycles: member_stats.resource_stall_cycles,
                        };
                        if let Some(fr) = cfg.flight_recorder {
                            if latency > fr.latency_objective {
                                inner.push_flight(FlightRecord {
                                    trace: RequestTrace {
                                        request_id: id,
                                        trace_id,
                                        model: model.to_owned(),
                                        worker,
                                        attribution,
                                        stats: member_stats.clone(),
                                        spans: spans.clone(),
                                    },
                                    outcome: FlightOutcome::LatencyBreach {
                                        latency,
                                        objective: fr.latency_objective,
                                    },
                                });
                            }
                        }
                        if head_sampled(&cfg, id) && !spans.is_empty() {
                            inner.push_trace(RequestTrace {
                                request_id: id,
                                trace_id,
                                model: model.to_owned(),
                                worker,
                                attribution,
                                stats: member_stats,
                                spans: spans.clone(),
                            });
                        }
                        Ok(Response {
                            request_id: id,
                            output,
                            latency,
                            worker,
                            retries,
                            attribution,
                        })
                    })
                    .collect()
            }
            terminal => {
                metrics.failed.fetch_add(k as u64, Ordering::Relaxed);
                request_ids
                    .iter()
                    .map(|&id| {
                        let err = match &terminal {
                            BatchOutcome::Served { .. } => unreachable!("handled above"),
                            BatchOutcome::Deadline => ServeError::DeadlineExceeded {
                                model: model.to_owned(),
                                retries,
                            },
                            BatchOutcome::Fault(message) => ServeError::WorkerFault {
                                model: model.to_owned(),
                                message: message.clone(),
                                retries,
                            },
                            BatchOutcome::NoReplica => ServeError::NoReplica {
                                model: model.to_owned(),
                            },
                        };
                        if inner.flight_wants_failure(&err) {
                            inner.push_flight(flight_failure(id, model, &err.to_string()));
                        }
                        Err(err)
                    })
                    .collect()
            }
        }
    }

    /// A point-in-time metrics reading (same as [`Server::metrics`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// The live metrics as a Prometheus text exposition (same as
    /// [`Server::prometheus`]).
    pub fn prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// The static lower bound on one inference of `model` in
    /// microseconds, when provable (whole models and shard groups
    /// alike). This is the bound admission compares deadlines against.
    pub fn static_bound_us(&self, model: &str) -> Option<u64> {
        let inner = &self.inner;
        let registry = inner.registry.read();
        if let Some(slot) = registry.index_of(model) {
            return inner.slot_bounds.read()[slot];
        }
        registry
            .group_index_of(model)
            .and_then(|g| inner.group_bounds[g])
    }

    /// The input width `model` expects, if registered (whole models and
    /// shard groups alike).
    pub fn input_dim_of(&self, model: &str) -> Option<usize> {
        let registry = self.inner.registry.read();
        registry.lookup(model).map(|a| a.input_dim()).or_else(|| {
            registry
                .group_index_of(model)
                .and_then(|g| registry.group(g))
                .map(|g| g.input_dim)
        })
    }

    /// Addressable model names: registry models in index order, then
    /// shard-group names.
    pub fn model_names(&self) -> Vec<String> {
        let registry = self.inner.registry.read();
        let mut names: Vec<String> = registry.names().into_iter().map(str::to_owned).collect();
        names.extend(registry.groups().iter().map(|g| g.name.clone()));
        names
    }
}

/// One member of a coalesced micro-batch handed to
/// [`Client::call_batch`]. Deadlines are absolute so a batcher can hold
/// a request without eroding its budget bookkeeping, and `arrived_at`
/// anchors the member's reported latency to when it actually entered
/// the system (not when the batch flushed).
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The member's input vector.
    pub input: Vec<f32>,
    /// Absolute deadline for this member.
    pub deadline_at: Instant,
    /// When the member entered the system (latency epoch).
    pub arrived_at: Instant,
}

impl BatchItem {
    /// A member arriving now with a relative deadline budget.
    pub fn new(input: Vec<f32>, deadline: Duration) -> BatchItem {
        let now = Instant::now();
        BatchItem {
            input,
            deadline_at: now + deadline,
            arrived_at: now,
        }
    }

    /// The member's remaining deadline slack from `now`.
    pub fn slack(&self, now: Instant) -> Duration {
        self.deadline_at.saturating_duration_since(now)
    }
}

/// An admitted, dispatched request (whole-model or shard-group). Call
/// [`Pending::wait`] to drive failover and obtain the outcome. Dropping
/// an unwaited `Pending` records the request as failed (abandoned),
/// keeping the metrics identity intact.
pub struct Pending {
    state: PendingState,
}

enum PendingState {
    Single(SinglePending),
    Group(GroupPending),
}

impl Pending {
    /// The server-assigned request id.
    pub fn request_id(&self) -> RequestId {
        match &self.state {
            PendingState::Single(p) => p.request_id,
            PendingState::Group(p) => p.request_id,
        }
    }

    /// Drives the request to termination: waits on the current attempt
    /// (every shard of the current segment, for a group), failing over to
    /// replicas on fault, death, or attempt timeout, until completion,
    /// the deadline, or the retry budget ends it.
    ///
    /// # Errors
    ///
    /// Returns the terminal [`ServeError`]; every error path is recorded
    /// in the metrics exactly once.
    pub fn wait(self) -> Result<Response, ServeError> {
        match self.state {
            PendingState::Single(p) => p.wait(),
            PendingState::Group(p) => p.wait(),
        }
    }
}

/// The whole-model request lifecycle: one attempt in flight at a time.
struct SinglePending {
    inner: Arc<ServerInner>,
    request_id: RequestId,
    model_idx: usize,
    model: String,
    /// The model's metrics row, resolved at admission (rows are
    /// append-only, so the Arc stays valid across runtime registration).
    metrics: Arc<ModelMetrics>,
    input: Arc<Vec<f32>>,
    submitted: Instant,
    deadline: Instant,
    attempt: u32,
    tried: Vec<usize>,
    retries: u32,
    collect_spans: bool,
    rx: Receiver<Completion>,
    settled: bool,
}

impl SinglePending {
    fn wait(mut self) -> Result<Response, ServeError> {
        let cfg = self.inner.cfg;
        loop {
            let now = Instant::now();
            if now >= self.deadline {
                return Err(self.fail(ServeError::DeadlineExceeded {
                    model: self.model.clone(),
                    retries: self.retries,
                }));
            }
            let budget = self.deadline - now;
            let slice = cfg.attempt_timeout.map_or(budget, |t| t.min(budget));

            match self.rx.recv_timeout(slice) {
                Ok(Completion::Done {
                    attempt,
                    worker,
                    output,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                }) => {
                    if attempt != self.attempt {
                        continue; // stale attempt; keep waiting
                    }
                    // Charge the request and response legs over the
                    // winning worker's link, sleeping the modeled time so
                    // measured latency reflects the network.
                    let network_s = {
                        let s = self.inner.charge_leg(worker, self.input.len() * 4)
                            + self.inner.charge_leg(worker, output.len() * 4);
                        if s > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(s));
                        }
                        s
                    };
                    let latency = self.submitted.elapsed();
                    self.settled = true;
                    self.metrics.record_completed(latency.as_secs_f64());
                    self.metrics
                        .record_attribution(queue_wait_s, service_s, network_s, &stats);
                    let attribution = Attribution {
                        queue_wait: Duration::from_secs_f64(queue_wait_s),
                        service: Duration::from_secs_f64(service_s),
                        network: Duration::from_secs_f64(network_s),
                        npu_cycles: stats.cycles,
                        npu_macs: stats.mvm_macs,
                        dep_stall_cycles: stats.dep_stall_cycles,
                        resource_stall_cycles: stats.resource_stall_cycles,
                    };
                    // Tail sampling: now that the outcome is known, keep
                    // the full span tree iff the latency objective was
                    // breached.
                    if let Some(fr) = self.inner.cfg.flight_recorder {
                        if latency > fr.latency_objective {
                            self.inner.push_flight(FlightRecord {
                                trace: RequestTrace {
                                    request_id: self.request_id,
                                    trace_id: self.request_id,
                                    model: self.model.clone(),
                                    worker,
                                    attribution,
                                    stats: stats.clone(),
                                    spans: spans.clone(),
                                },
                                outcome: FlightOutcome::LatencyBreach {
                                    latency,
                                    objective: fr.latency_objective,
                                },
                            });
                        }
                    }
                    if head_sampled(&cfg, self.request_id) && !spans.is_empty() {
                        self.inner.push_trace(RequestTrace {
                            request_id: self.request_id,
                            trace_id: self.request_id,
                            model: self.model.clone(),
                            worker,
                            attribution,
                            stats,
                            spans,
                        });
                    }
                    return Ok(Response {
                        request_id: self.request_id,
                        output,
                        latency,
                        worker,
                        retries: self.retries,
                        attribution,
                    });
                }
                Ok(Completion::Fault {
                    attempt,
                    worker,
                    message,
                }) => {
                    if attempt != self.attempt {
                        continue;
                    }
                    if let Some(err) = self.failover(Some(format!("worker {worker}: {message}"))) {
                        return Err(err);
                    }
                }
                Ok(Completion::Expired { attempt }) => {
                    if attempt != self.attempt {
                        continue;
                    }
                    // The worker saw the job after its deadline: terminal.
                    return Err(self.fail(ServeError::DeadlineExceeded {
                        model: self.model.clone(),
                        retries: self.retries,
                    }));
                }
                // Single requests never dispatch batch payloads; a
                // batched completion on this channel is impossible.
                Ok(Completion::BatchDone { .. }) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= self.deadline {
                        return Err(self.fail(ServeError::DeadlineExceeded {
                            model: self.model.clone(),
                            retries: self.retries,
                        }));
                    }
                    // Attempt timeout with budget left: fail over.
                    if let Some(err) = self.failover(None) {
                        return Err(err);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The worker died with our job (injected fault or
                    // shutdown): fail over immediately.
                    if let Some(err) = self.failover(None) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Re-dispatches to an untried replica. Returns `Some(error)` if the
    /// request is terminal instead.
    fn failover(&mut self, fault: Option<String>) -> Option<ServeError> {
        if self.retries >= self.inner.cfg.max_retries {
            let err = match fault {
                Some(message) => ServeError::WorkerFault {
                    model: self.model.clone(),
                    message,
                    retries: self.retries,
                },
                None => ServeError::DeadlineExceeded {
                    model: self.model.clone(),
                    retries: self.retries,
                },
            };
            return Some(self.fail(err));
        }
        self.retries += 1;
        self.attempt += 1;
        self.metrics.retries.fetch_add(1, Ordering::Relaxed);
        let spec = DispatchSpec {
            attempt: self.attempt,
            model: self.model_idx,
            deadline: self.deadline,
            trace_id: self.request_id,
            collect_spans: self.collect_spans,
        };
        let dispatched = self.inner.dispatch(&spec, &self.input, &self.tried);
        match dispatched {
            Ok((worker, rx)) => {
                self.tried.push(worker);
                self.rx = rx;
                None
            }
            Err(DispatchStopped::AllFull) | Err(DispatchStopped::NoReplica) => {
                let err = match fault {
                    Some(message) => ServeError::WorkerFault {
                        model: self.model.clone(),
                        message,
                        retries: self.retries,
                    },
                    None => ServeError::NoReplica {
                        model: self.model.clone(),
                    },
                };
                Some(self.fail(err))
            }
        }
    }

    /// Marks the request failed in the metrics (exactly once) and hands
    /// the error back.
    fn fail(&mut self, err: ServeError) -> ServeError {
        if !self.settled {
            self.settled = true;
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            if self.inner.flight_wants_failure(&err) {
                self.inner.push_flight(flight_failure(
                    self.request_id,
                    &self.model,
                    &err.to_string(),
                ));
            }
        }
        err
    }
}

impl Drop for SinglePending {
    fn drop(&mut self) {
        if !self.settled {
            // Abandoned without waiting: account it as failed so the
            // metrics identity holds.
            self.settled = true;
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            if self.inner.cfg.flight_recorder.is_some() {
                self.inner
                    .push_flight(flight_failure(self.request_id, &self.model, "abandoned"));
            }
        }
    }
}

/// A failure flight record: no completed inference means no span tree —
/// the record carries the identity and the terminal error. `worker` is
/// `usize::MAX` because no worker produced an accepted attempt.
fn flight_failure(request_id: RequestId, model: &str, error: &str) -> FlightRecord {
    FlightRecord {
        trace: RequestTrace {
            request_id,
            trace_id: request_id,
            model: model.to_owned(),
            worker: usize::MAX,
            attribution: Attribution::default(),
            stats: RunStats::default(),
            spans: Vec::new(),
        },
        outcome: FlightOutcome::Failed {
            error: error.to_owned(),
        },
    }
}

/// One shard of the in-flight segment of a group request.
struct ShardInFlight {
    /// The member's registry slot.
    member: usize,
    /// Attempt ordinal (monotone across this shard's failovers).
    attempt: u32,
    /// Workers that already tried this shard.
    tried: Vec<usize>,
    /// Failover retries this shard consumed.
    retries: u32,
    /// Worker serving the current attempt.
    worker: usize,
    /// When the shard's first attempt was dispatched (member latency).
    dispatched_at: Instant,
    rx: Receiver<Completion>,
    /// The gathered result, once the shard completes.
    done: Option<ShardDone>,
}

/// A completed shard attempt, held until the whole segment gathers.
struct ShardDone {
    output: Vec<f32>,
    queue_wait_s: f64,
    service_s: f64,
    stats: RunStats,
    spans: Vec<SpanRecord>,
    worker: usize,
}

/// The shard-group request lifecycle: the scatter/gather coordinator.
///
/// Segments run in pipeline order. For each segment the coordinator
/// scatters the segment input to one owner per shard, gathers every
/// shard (driving per-shard failover with the same retry budget as a
/// whole-model request), charges the modeled network legs, concatenates
/// the row-shard outputs in shard order, and feeds the next segment.
/// Exactly one terminal is recorded on the group's metrics row;
/// in-flight member attempts abandoned by a terminal error are recorded
/// as failed on their own rows, so every row keeps the accounting
/// identity.
struct GroupPending {
    inner: Arc<ServerInner>,
    request_id: RequestId,
    group_idx: usize,
    /// The group's metrics row, resolved at admission.
    metrics: Arc<ModelMetrics>,
    name: String,
    submitted: Instant,
    deadline: Instant,
    collect_spans: bool,
    /// Segment currently in flight (index into the group's plan).
    seg_idx: usize,
    inflight: Vec<ShardInFlight>,
    /// The in-flight segment's input (the previous segment's
    /// concatenated output).
    carry: Arc<Vec<f32>>,
    /// Total failover retries across all shards and segments.
    retries: u32,
    network_s: f64,
    queue_wait_s: f64,
    service_s: f64,
    stats: RunStats,
    spans: Vec<SpanRecord>,
    last_worker: usize,
    settled: bool,
}

impl GroupPending {
    /// Dispatches every shard of the current segment. On error the
    /// already-dispatched shards stay in `inflight` for the caller's
    /// terminal accounting.
    fn scatter(&mut self) -> Result<(), DispatchStopped> {
        let inner = Arc::clone(&self.inner);
        let members = {
            let registry = inner.registry.read();
            registry
                .group(self.group_idx)
                .expect("index valid")
                .segments[self.seg_idx]
                .members()
        };
        for member in members {
            inner
                .model_metric(member)
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            let spec = DispatchSpec {
                attempt: 0,
                model: member,
                deadline: self.deadline,
                trace_id: self.request_id,
                collect_spans: self.collect_spans,
            };
            match inner.dispatch(&spec, &self.carry, &[]) {
                Ok((worker, rx)) => self.inflight.push(ShardInFlight {
                    member,
                    attempt: 0,
                    tried: vec![worker],
                    retries: 0,
                    worker,
                    dispatched_at: Instant::now(),
                    rx,
                    done: None,
                }),
                Err(stop) => {
                    // The member was admitted but never dispatched:
                    // terminal for it.
                    inner
                        .model_metric(member)
                        .failed
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(stop);
                }
            }
        }
        Ok(())
    }

    /// Drives the group request to termination.
    fn wait(mut self) -> Result<Response, ServeError> {
        let cfg = self.inner.cfg;
        let seg_count = {
            let registry = self.inner.registry.read();
            registry
                .group(self.group_idx)
                .expect("index valid")
                .segments
                .len()
        };
        loop {
            // Gather every shard of the in-flight segment.
            for i in 0..self.inflight.len() {
                self.gather_shard(i, &cfg)?;
            }
            self.finish_segment();
            self.seg_idx += 1;
            if self.seg_idx == seg_count {
                return Ok(self.complete());
            }
            match self.scatter() {
                Ok(()) => {}
                Err(DispatchStopped::AllFull) | Err(DispatchStopped::NoReplica) => {
                    // Post-admission: shedding is an admission-time
                    // outcome, so a mid-pipeline full pool is a failure.
                    let name = self.name.clone();
                    return Err(self.fail(ServeError::NoReplica { model: name }));
                }
            }
        }
    }

    /// Waits for shard `i` of the current segment, driving its failover,
    /// until it completes or the request becomes terminal.
    fn gather_shard(&mut self, i: usize, cfg: &ServerConfig) -> Result<(), ServeError> {
        loop {
            let now = Instant::now();
            if now >= self.deadline {
                let err = ServeError::DeadlineExceeded {
                    model: self.name.clone(),
                    retries: self.retries,
                };
                return Err(self.fail(err));
            }
            let budget = self.deadline - now;
            let slice = cfg.attempt_timeout.map_or(budget, |t| t.min(budget));

            match self.inflight[i].rx.recv_timeout(slice) {
                Ok(Completion::Done {
                    attempt,
                    worker,
                    output,
                    queue_wait_s,
                    service_s,
                    stats,
                    spans,
                }) => {
                    if attempt != self.inflight[i].attempt {
                        continue; // stale attempt; keep waiting
                    }
                    let shard = &mut self.inflight[i];
                    let member_latency = shard.dispatched_at.elapsed().as_secs_f64();
                    shard.done = Some(ShardDone {
                        output,
                        queue_wait_s,
                        service_s,
                        stats,
                        spans,
                        worker,
                    });
                    let member = self.inner.model_metric(shard.member);
                    member.record_completed(member_latency);
                    // Network legs are attributed at the group level.
                    member.record_attribution(
                        queue_wait_s,
                        service_s,
                        0.0,
                        &shard.done.as_ref().expect("just set").stats,
                    );
                    return Ok(());
                }
                Ok(Completion::Fault {
                    attempt,
                    worker,
                    message,
                }) => {
                    if attempt != self.inflight[i].attempt {
                        continue;
                    }
                    self.shard_failover(i, Some(format!("worker {worker}: {message}")))?;
                }
                Ok(Completion::Expired { attempt }) => {
                    if attempt != self.inflight[i].attempt {
                        continue;
                    }
                    let err = ServeError::DeadlineExceeded {
                        model: self.name.clone(),
                        retries: self.retries,
                    };
                    return Err(self.fail(err));
                }
                // Shard attempts always carry single payloads; a batched
                // completion on this channel is impossible.
                Ok(Completion::BatchDone { .. }) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= self.deadline {
                        let err = ServeError::DeadlineExceeded {
                            model: self.name.clone(),
                            retries: self.retries,
                        };
                        return Err(self.fail(err));
                    }
                    self.shard_failover(i, None)?;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The owning worker died with the shard (injected
                    // fault or shutdown): fail over to another owner.
                    self.shard_failover(i, None)?;
                }
            }
        }
    }

    /// Re-dispatches shard `i` to an untried owner. On a terminal
    /// outcome, records it and returns the error.
    fn shard_failover(&mut self, i: usize, fault: Option<String>) -> Result<(), ServeError> {
        let inner = Arc::clone(&self.inner);
        if self.inflight[i].retries >= inner.cfg.max_retries {
            let err = match fault {
                Some(message) => ServeError::WorkerFault {
                    model: self.name.clone(),
                    message,
                    retries: self.retries,
                },
                None => ServeError::DeadlineExceeded {
                    model: self.name.clone(),
                    retries: self.retries,
                },
            };
            return Err(self.fail(err));
        }
        self.retries += 1;
        {
            let shard = &mut self.inflight[i];
            shard.retries += 1;
            shard.attempt += 1;
            inner
                .model_metric(shard.member)
                .retries
                .fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.retries.fetch_add(1, Ordering::Relaxed);
        let spec = DispatchSpec {
            attempt: self.inflight[i].attempt,
            model: self.inflight[i].member,
            deadline: self.deadline,
            trace_id: self.request_id,
            collect_spans: self.collect_spans,
        };
        match inner.dispatch(&spec, &self.carry, &self.inflight[i].tried) {
            Ok((worker, rx)) => {
                let shard = &mut self.inflight[i];
                shard.tried.push(worker);
                shard.worker = worker;
                shard.rx = rx;
                Ok(())
            }
            Err(DispatchStopped::AllFull) | Err(DispatchStopped::NoReplica) => {
                let err = match fault {
                    Some(message) => ServeError::WorkerFault {
                        model: self.name.clone(),
                        message,
                        retries: self.retries,
                    },
                    None => ServeError::NoReplica {
                        model: self.name.clone(),
                    },
                };
                Err(self.fail(err))
            }
        }
    }

    /// Charges the segment's scatter/gather network legs, accumulates
    /// attribution and spans, and concatenates the shard outputs (in
    /// shard order) into the next segment's input.
    fn finish_segment(&mut self) {
        let inner = Arc::clone(&self.inner);
        let in_bytes = self.carry.len() * 4;
        let mut seg_net_s = 0.0f64;
        let mut seg_queue_s = 0.0f64;
        let mut seg_service_s = 0.0f64;
        let mut output = Vec::new();
        for (ordinal, shard) in self.inflight.drain(..).enumerate() {
            let done = shard.done.expect("segment gathered");
            // One input leg and one output leg per shard; the legs run
            // in parallel, so the segment pays the slowest pair.
            let leg_s = inner.charge_leg(done.worker, in_bytes)
                + inner.charge_leg(done.worker, done.output.len() * 4);
            seg_net_s = seg_net_s.max(leg_s);
            seg_queue_s = seg_queue_s.max(done.queue_wait_s);
            seg_service_s = seg_service_s.max(done.service_s);
            self.stats.accumulate(&done.stats);
            self.last_worker = done.worker;
            if self.collect_spans {
                // Re-stamp NPU spans with the owning worker as the
                // device, so a gathered trace reads as the spatially
                // distributed execution it was.
                for mut span in done.spans {
                    span.device = done.worker as u32;
                    self.spans.push(span);
                }
                if leg_s > 0.0 {
                    let clock_hz = inner
                        .registry
                        .read()
                        .get(shard.member)
                        .map(|a| a.config().clock_hz())
                        .unwrap_or(0.0);
                    self.spans.push(SpanRecord {
                        trace_id: self.request_id,
                        device: done.worker as u32,
                        kind: SpanKind::NetTransfer,
                        chain: ordinal as u64 + 1,
                        start_cycle: 0,
                        end_cycle: (leg_s * clock_hz) as u64,
                    });
                }
            }
            output.extend_from_slice(&done.output);
        }
        if seg_net_s > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seg_net_s));
            self.network_s += seg_net_s;
        }
        self.queue_wait_s += seg_queue_s;
        self.service_s += seg_service_s;
        self.carry = Arc::new(output);
    }

    /// Records the completed terminal on the group row and builds the
    /// response.
    fn complete(&mut self) -> Response {
        let latency = self.submitted.elapsed();
        self.settled = true;
        self.metrics.record_completed(latency.as_secs_f64());
        self.metrics.record_attribution(
            self.queue_wait_s,
            self.service_s,
            self.network_s,
            &self.stats,
        );
        let attribution = Attribution {
            queue_wait: Duration::from_secs_f64(self.queue_wait_s),
            service: Duration::from_secs_f64(self.service_s),
            network: Duration::from_secs_f64(self.network_s),
            npu_cycles: self.stats.cycles,
            npu_macs: self.stats.mvm_macs,
            dep_stall_cycles: self.stats.dep_stall_cycles,
            resource_stall_cycles: self.stats.resource_stall_cycles,
        };
        if let Some(fr) = self.inner.cfg.flight_recorder {
            if latency > fr.latency_objective {
                self.inner.push_flight(FlightRecord {
                    trace: RequestTrace {
                        request_id: self.request_id,
                        trace_id: self.request_id,
                        model: self.name.clone(),
                        worker: self.last_worker,
                        attribution,
                        stats: self.stats.clone(),
                        spans: self.spans.clone(),
                    },
                    outcome: FlightOutcome::LatencyBreach {
                        latency,
                        objective: fr.latency_objective,
                    },
                });
            }
        }
        if head_sampled(&self.inner.cfg, self.request_id) && !self.spans.is_empty() {
            self.inner.push_trace(RequestTrace {
                request_id: self.request_id,
                trace_id: self.request_id,
                model: self.name.clone(),
                worker: self.last_worker,
                attribution,
                stats: self.stats.clone(),
                spans: std::mem::take(&mut self.spans),
            });
        }
        Response {
            request_id: self.request_id,
            output: self.carry.to_vec(),
            latency,
            worker: self.last_worker,
            retries: self.retries,
            attribution,
        }
    }

    /// Marks the group request failed (exactly once), failing any
    /// abandoned in-flight member attempts, and hands the error back.
    fn fail(&mut self, err: ServeError) -> ServeError {
        if !self.settled {
            self.settled = true;
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            self.abandon_inflight();
            if self.inner.flight_wants_failure(&err) {
                self.inner.push_flight(flight_failure(
                    self.request_id,
                    &self.name,
                    &err.to_string(),
                ));
            }
        }
        err
    }

    /// Marks the group request shed (exactly once); abandoned in-flight
    /// member attempts count as failed on their rows.
    fn shed(&mut self) -> ServeError {
        if !self.settled {
            self.settled = true;
            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
            self.abandon_inflight();
        }
        ServeError::Shed {
            model: self.name.clone(),
        }
    }

    /// Terminal accounting for member attempts the group abandons:
    /// gathered shards already recorded `completed`; the rest fail.
    fn abandon_inflight(&mut self) {
        for shard in self.inflight.drain(..) {
            if shard.done.is_none() {
                self.inner
                    .model_metric(shard.member)
                    .failed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for GroupPending {
    fn drop(&mut self) {
        if !self.settled {
            // Abandoned without waiting: account the group and its
            // in-flight members as failed so every row's identity holds.
            self.settled = true;
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            self.abandon_inflight();
            if self.inner.cfg.flight_recorder.is_some() {
                self.inner
                    .push_flight(flight_failure(self.request_id, &self.name, "abandoned"));
            }
        }
    }
}
