//! The binary wire protocol of the TCP front end.
//!
//! Length-prefixed frames, everything little-endian, hand-rolled because
//! the workspace carries no serialization dependency:
//!
//! ```text
//! frame    := u32 len | payload[len]
//! request  := u8 tag=0x01 | u16 name_len | name bytes (utf-8)
//!             | u64 deadline_us | u32 n | f32[n] input
//! response := u8 tag=0x81 | u64 request_id | u64 latency_us
//!             | u32 worker | u32 retries
//!             | u64 queue_wait_us | u64 service_us | u64 npu_cycles
//!             | u64 npu_macs | u64 dep_stall_cycles
//!             | u64 resource_stall_cycles | u64 network_us
//!             | u32 n | f32[n] output
//! error    := u8 tag=0xEE | u16 msg_len | msg bytes (utf-8)
//! sla error := u8 tag=0xEF | u16 model_len | model bytes (utf-8)
//!             | u64 bound_us | u64 budget_us
//! metrics request  := u8 tag=0x02
//! metrics response := u8 tag=0x82 | u32 json_len | json bytes (utf-8)
//! prometheus request  := u8 tag=0x03
//! prometheus response := u8 tag=0x83 | u32 text_len | text bytes (utf-8)
//! ```
//!
//! Frames are capped at [`MAX_FRAME`] bytes; oversized or malformed
//! frames terminate the connection with a decode error.

use std::io::{Read, Write};

/// Hard cap on one frame's payload (16 MiB) — a malformed length prefix
/// must not allocate unboundedly.
pub const MAX_FRAME: usize = 16 << 20;

/// Frame tags.
pub const TAG_INFER: u8 = 0x01;
/// Metrics request tag.
pub const TAG_METRICS: u8 = 0x02;
/// Prometheus exposition request tag.
pub const TAG_PROM: u8 = 0x03;
/// Inference response tag.
pub const TAG_RESPONSE: u8 = 0x81;
/// Metrics response tag.
pub const TAG_METRICS_RESPONSE: u8 = 0x82;
/// Prometheus exposition response tag.
pub const TAG_PROM_RESPONSE: u8 = 0x83;
/// Error response tag.
pub const TAG_ERROR: u8 = 0xEE;
/// Typed SLA-rejection response tag: the request's deadline budget is
/// below the model's static cycle lower bound.
pub const TAG_SLA_ERROR: u8 = 0xEF;

/// A decoded client→server message.
#[derive(Clone, Debug, PartialEq)]
pub enum WireRequest {
    /// Run one inference.
    Infer {
        /// Registered model name.
        model: String,
        /// End-to-end deadline in microseconds.
        deadline_us: u64,
        /// The input vector.
        input: Vec<f32>,
    },
    /// Fetch the metrics snapshot as JSON.
    Metrics,
    /// Fetch the metrics as a Prometheus text exposition.
    Prometheus,
}

/// A decoded server→client message.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// A completed inference.
    Infer {
        /// Server-assigned request id.
        request_id: u64,
        /// End-to-end latency in microseconds.
        latency_us: u64,
        /// Worker that served the final attempt.
        worker: u32,
        /// Failover retries used.
        retries: u32,
        /// Queue wait of the winning attempt in microseconds.
        queue_wait_us: u64,
        /// NPU service time of the winning attempt in microseconds.
        service_us: u64,
        /// Attributed simulated NPU cycles.
        npu_cycles: u64,
        /// Attributed MVM multiply-accumulates.
        npu_macs: u64,
        /// Attributed dependency-stall cycles.
        dep_stall_cycles: u64,
        /// Attributed resource-stall cycles.
        resource_stall_cycles: u64,
        /// Modeled network transfer time in microseconds (zero on an
        /// ideal network).
        network_us: u64,
        /// The output vector.
        output: Vec<f32>,
    },
    /// The metrics snapshot as a JSON string.
    Metrics(String),
    /// The metrics as a Prometheus text exposition.
    Prometheus(String),
    /// The request failed; the message is the `ServeError` rendering.
    Error(String),
    /// The request was refused pre-admission because its deadline budget
    /// is provably unmeetable: the model's static cycle lower bound
    /// already exceeds it. Typed (unlike [`WireResponse::Error`]) so
    /// clients can react — raise the deadline, or route elsewhere —
    /// without parsing a message string.
    SlaUnmeetable {
        /// The model requested.
        model: String,
        /// The static lower bound on one inference, in microseconds.
        bound_us: u64,
        /// The deadline budget the request allowed, in microseconds.
        budget_us: u64,
    },
}

/// A framing or decoding failure. Terminal for the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds the frame-size cap (`MAX_FRAME`).
    FrameTooLarge(usize),
    /// The payload ended before the advertised structure did, carries a
    /// short description of what was being read.
    Truncated(&'static str),
    /// Unknown frame tag.
    BadTag(u8),
    /// A name or message was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            WireError::Truncated(what) => write!(f, "frame truncated while reading {what}"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// A little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError::Truncated(what)),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, len: usize, what: &'static str) -> Result<String, WireError> {
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn f32s(&mut self, n: usize, what: &'static str) -> Result<Vec<f32>, WireError> {
        let b = self.take(n.checked_mul(4).ok_or(WireError::Truncated(what))?, what)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn done(&self, what: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            // Trailing bytes mean the sender and receiver disagree about
            // the schema; treat it as a framing error, not silence.
            Err(WireError::Truncated(what))
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

impl WireRequest {
    /// Encodes the payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireRequest::Infer {
                model,
                deadline_us,
                input,
            } => {
                let mut buf = Vec::with_capacity(1 + 2 + model.len() + 8 + 4 + input.len() * 4);
                buf.push(TAG_INFER);
                put_u16(&mut buf, model.len() as u16);
                buf.extend_from_slice(model.as_bytes());
                put_u64(&mut buf, *deadline_us);
                put_u32(&mut buf, input.len() as u32);
                put_f32s(&mut buf, input);
                buf
            }
            WireRequest::Metrics => vec![TAG_METRICS],
            WireRequest::Prometheus => vec![TAG_PROM],
        }
    }

    /// Decodes a payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or bad UTF-8.
    pub fn decode(payload: &[u8]) -> Result<WireRequest, WireError> {
        let mut c = Cursor::new(payload);
        match c.u8("tag")? {
            TAG_INFER => {
                let name_len = c.u16("model name length")? as usize;
                let model = c.string(name_len, "model name")?;
                let deadline_us = c.u64("deadline")?;
                let n = c.u32("input length")? as usize;
                let input = c.f32s(n, "input")?;
                c.done("infer request")?;
                Ok(WireRequest::Infer {
                    model,
                    deadline_us,
                    input,
                })
            }
            TAG_METRICS => {
                c.done("metrics request")?;
                Ok(WireRequest::Metrics)
            }
            TAG_PROM => {
                c.done("prometheus request")?;
                Ok(WireRequest::Prometheus)
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireResponse {
    /// Encodes the payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireResponse::Infer {
                request_id,
                latency_us,
                worker,
                retries,
                queue_wait_us,
                service_us,
                npu_cycles,
                npu_macs,
                dep_stall_cycles,
                resource_stall_cycles,
                network_us,
                output,
            } => {
                let mut buf = Vec::with_capacity(1 + 8 * 9 + 4 + 4 + 4 + output.len() * 4);
                buf.push(TAG_RESPONSE);
                put_u64(&mut buf, *request_id);
                put_u64(&mut buf, *latency_us);
                put_u32(&mut buf, *worker);
                put_u32(&mut buf, *retries);
                put_u64(&mut buf, *queue_wait_us);
                put_u64(&mut buf, *service_us);
                put_u64(&mut buf, *npu_cycles);
                put_u64(&mut buf, *npu_macs);
                put_u64(&mut buf, *dep_stall_cycles);
                put_u64(&mut buf, *resource_stall_cycles);
                put_u64(&mut buf, *network_us);
                put_u32(&mut buf, output.len() as u32);
                put_f32s(&mut buf, output);
                buf
            }
            WireResponse::Metrics(json) => {
                let mut buf = Vec::with_capacity(1 + 4 + json.len());
                buf.push(TAG_METRICS_RESPONSE);
                put_u32(&mut buf, json.len() as u32);
                buf.extend_from_slice(json.as_bytes());
                buf
            }
            WireResponse::Prometheus(text) => {
                let mut buf = Vec::with_capacity(1 + 4 + text.len());
                buf.push(TAG_PROM_RESPONSE);
                put_u32(&mut buf, text.len() as u32);
                buf.extend_from_slice(text.as_bytes());
                buf
            }
            WireResponse::Error(msg) => {
                let mut buf = Vec::with_capacity(1 + 2 + msg.len());
                buf.push(TAG_ERROR);
                put_u16(&mut buf, msg.len().min(u16::MAX as usize) as u16);
                buf.extend_from_slice(&msg.as_bytes()[..msg.len().min(u16::MAX as usize)]);
                buf
            }
            WireResponse::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            } => {
                let mut buf = Vec::with_capacity(1 + 2 + model.len() + 8 + 8);
                buf.push(TAG_SLA_ERROR);
                put_u16(&mut buf, model.len().min(u16::MAX as usize) as u16);
                buf.extend_from_slice(&model.as_bytes()[..model.len().min(u16::MAX as usize)]);
                put_u64(&mut buf, *bound_us);
                put_u64(&mut buf, *budget_us);
                buf
            }
        }
    }

    /// Decodes a payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or bad UTF-8.
    pub fn decode(payload: &[u8]) -> Result<WireResponse, WireError> {
        let mut c = Cursor::new(payload);
        match c.u8("tag")? {
            TAG_RESPONSE => {
                let request_id = c.u64("request id")?;
                let latency_us = c.u64("latency")?;
                let worker = c.u32("worker")?;
                let retries = c.u32("retries")?;
                let queue_wait_us = c.u64("queue wait")?;
                let service_us = c.u64("service time")?;
                let npu_cycles = c.u64("npu cycles")?;
                let npu_macs = c.u64("npu macs")?;
                let dep_stall_cycles = c.u64("dep stall cycles")?;
                let resource_stall_cycles = c.u64("resource stall cycles")?;
                let network_us = c.u64("network us")?;
                let n = c.u32("output length")? as usize;
                let output = c.f32s(n, "output")?;
                c.done("infer response")?;
                Ok(WireResponse::Infer {
                    request_id,
                    latency_us,
                    worker,
                    retries,
                    queue_wait_us,
                    service_us,
                    npu_cycles,
                    npu_macs,
                    dep_stall_cycles,
                    resource_stall_cycles,
                    network_us,
                    output,
                })
            }
            TAG_METRICS_RESPONSE => {
                let len = c.u32("metrics json length")? as usize;
                let json = c.string(len, "metrics json")?;
                c.done("metrics response")?;
                Ok(WireResponse::Metrics(json))
            }
            TAG_PROM_RESPONSE => {
                let len = c.u32("prometheus text length")? as usize;
                let text = c.string(len, "prometheus text")?;
                c.done("prometheus response")?;
                Ok(WireResponse::Prometheus(text))
            }
            TAG_ERROR => {
                let len = c.u16("error length")? as usize;
                let msg = c.string(len, "error message")?;
                c.done("error response")?;
                Ok(WireResponse::Error(msg))
            }
            TAG_SLA_ERROR => {
                let len = c.u16("model name length")? as usize;
                let model = c.string(len, "model name")?;
                let bound_us = c.u64("bound us")?;
                let budget_us = c.u64("budget us")?;
                c.done("sla error response")?;
                Ok(WireResponse::SlaUnmeetable {
                    model,
                    bound_us,
                    budget_us,
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; an oversized length prefix surfaces as
/// `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // EOF before any length byte is a clean close; mid-prefix EOF is not.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Tries to split one complete length-prefixed frame off the front of an
/// accumulation buffer, for nonblocking readers that receive bytes in
/// arbitrary chunks. Returns `Ok(None)` when the buffer does not yet hold
/// a full frame; the caller appends more bytes and retries.
///
/// # Errors
///
/// Returns [`WireError::FrameTooLarge`] when the length prefix exceeds
/// [`MAX_FRAME`] — the connection must be closed, since the byte stream
/// can no longer be re-synchronised.
pub fn try_extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = WireRequest::Infer {
            model: "mlp".into(),
            deadline_us: 250_000,
            input: vec![0.5, -1.25, 3.0],
        };
        assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
        assert_eq!(
            WireRequest::decode(&WireRequest::Metrics.encode()).unwrap(),
            WireRequest::Metrics
        );
        assert_eq!(
            WireRequest::decode(&WireRequest::Prometheus.encode()).unwrap(),
            WireRequest::Prometheus
        );
    }

    #[test]
    fn response_round_trip() {
        let resp = WireResponse::Infer {
            request_id: 42,
            latency_us: 1234,
            worker: 1,
            retries: 0,
            queue_wait_us: 17,
            service_us: 950,
            npu_cycles: 120_000,
            npu_macs: 4_000_000,
            dep_stall_cycles: 900,
            resource_stall_cycles: 30,
            network_us: 120,
            output: vec![1.0, 2.0],
        };
        assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        let err = WireResponse::Error("model `x` is not registered".into());
        assert_eq!(WireResponse::decode(&err.encode()).unwrap(), err);
        let sla = WireResponse::SlaUnmeetable {
            model: "lstm".into(),
            bound_us: 900,
            budget_us: 250,
        };
        assert_eq!(WireResponse::decode(&sla.encode()).unwrap(), sla);
        let m = WireResponse::Metrics("{\"models\":[]}".into());
        assert_eq!(WireResponse::decode(&m.encode()).unwrap(), m);
        let p = WireResponse::Prometheus("# TYPE bw_worker_alive gauge\n".into());
        assert_eq!(WireResponse::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn truncation_and_bad_tags_are_rejected() {
        let mut buf = WireRequest::Infer {
            model: "m".into(),
            deadline_us: 1,
            input: vec![1.0; 4],
        }
        .encode();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            WireRequest::decode(&buf),
            Err(WireError::Truncated(_))
        ));
        assert_eq!(WireRequest::decode(&[0x7F]), Err(WireError::BadTag(0x7F)));
        // Trailing garbage is a schema disagreement, not ignorable.
        let mut ok = WireRequest::Metrics.encode();
        ok.push(0);
        assert!(WireRequest::decode(&ok).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn incremental_extraction_handles_arbitrary_chunking() {
        let mut framed = Vec::new();
        write_frame(&mut framed, b"alpha").unwrap();
        write_frame(&mut framed, b"").unwrap();
        write_frame(&mut framed, b"omega").unwrap();
        // Feed one byte at a time; frames must pop out exactly at their
        // boundaries and never early.
        let mut acc = Vec::new();
        let mut out = Vec::new();
        for &b in &framed {
            acc.push(b);
            while let Some(p) = try_extract_frame(&mut acc).unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![b"alpha".to_vec(), Vec::new(), b"omega".to_vec()]);
        assert!(acc.is_empty());
    }

    #[test]
    fn incremental_extraction_refuses_oversized_prefix() {
        let mut acc = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        assert_eq!(
            try_extract_frame(&mut acc),
            Err(WireError::FrameTooLarge(MAX_FRAME + 1))
        );
    }
}
