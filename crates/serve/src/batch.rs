//! Admission-side dynamic micro-batching: the Fig. 8 lever.
//!
//! The BW service discipline is batch-1 — that is what makes the
//! millisecond SLOs of §III possible — but at high offered load the
//! serving layer's per-request overhead (thread wakeups, channel hops,
//! dispatch streaming) caps goodput long before the MACs saturate. The
//! TPU paper quantifies the classic answer: coalesce compatible
//! requests into one multi-column dispatch, trading a bounded hold time
//! for amortized dispatch cost.
//!
//! [`Batcher`] implements the admission side of that trade as a
//! *deadline-slack-aware* coalescing window, per model:
//!
//! 1. A request arrives with a deadline. Its **hold budget** is
//!    `min(max_hold, slack_fraction × remaining slack)` — a request with
//!    a tight deadline flushes almost immediately, a relaxed one can
//!    wait for company.
//! 2. The request joins its model's pending queue. The queue flushes
//!    when it reaches `max_batch` members **or** when any member's hold
//!    budget expires, whichever comes first.
//! 3. A flushed batch travels as **one** multi-column dispatch
//!    ([`Client::call_batch`]): one queue slot, one worker pop, one
//!    [`Npu::run_batch`](bw_core::Npu::run_batch) envelope. Results
//!    split back into per-member responses, and the accounting identity
//!    `completed + shed + failed == submitted` holds member-for-member.
//!
//! The batcher never mixes models in one batch (columns must share the
//! pinned program) and never holds a request past its own hold budget,
//! so a correctly provisioned pool cannot breach a deadline *because
//! of* coalescing — `tests/batching.rs` pins that property.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::request::{Response, ServeError};
use crate::server::{BatchItem, Client};

/// Tuning for one [`Batcher`].
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Largest coalesced batch (columns per dispatch). `1` disables
    /// coalescing while keeping the batched code path.
    pub max_batch: usize,
    /// Hard ceiling on any request's hold time, regardless of slack.
    pub max_hold: Duration,
    /// Fraction of a request's remaining deadline slack spendable as
    /// hold time. Clamped to `[0, 1]`.
    pub slack_fraction: f64,
    /// Threads concurrently driving flushed batches through the
    /// blocking [`Client::call_batch`] lifecycle. Bounds how many
    /// batches can be in flight at once from this batcher.
    pub dispatchers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 4,
            max_hold: Duration::from_millis(2),
            slack_fraction: 0.25,
            dispatchers: 4,
        }
    }
}

/// One queued member plus the instant its hold budget expires.
struct PendingMember {
    item: BatchItem,
    flush_at: Instant,
    reply: Sender<Result<Response, ServeError>>,
}

/// A flushed batch awaiting dispatch.
struct BatchWork {
    model: String,
    members: Vec<PendingMember>,
}

struct BatcherState {
    /// Per-model pending queues, arrival order.
    queues: HashMap<String, Vec<PendingMember>>,
    shutdown: bool,
}

struct BatcherInner {
    client: Client,
    cfg: BatchConfig,
    state: Mutex<BatcherState>,
    /// Wakes the flusher when work arrives or shutdown starts.
    cv: Condvar,
    /// Set once the flusher has drained and exited.
    done: AtomicBool,
}

/// The per-model coalescing front: submit requests, receive individual
/// responses, let the window pack compatible neighbors into one
/// multi-column dispatch. Dropping the batcher flushes everything still
/// pending and joins its threads.
pub struct Batcher {
    inner: Arc<BatcherInner>,
    work_tx: Option<Sender<BatchWork>>,
    flusher: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Builds a batcher over an in-process [`Client`].
    pub fn new(client: Client, cfg: BatchConfig) -> Batcher {
        let cfg = BatchConfig {
            max_batch: cfg.max_batch.max(1),
            slack_fraction: cfg.slack_fraction.clamp(0.0, 1.0),
            dispatchers: cfg.dispatchers.max(1),
            ..cfg
        };
        let inner = Arc::new(BatcherInner {
            client,
            cfg,
            state: Mutex::new(BatcherState {
                queues: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        });
        let (work_tx, work_rx) = std::sync::mpsc::channel::<BatchWork>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let dispatchers = (0..cfg.dispatchers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let work_rx = Arc::clone(&work_rx);
                std::thread::Builder::new()
                    .name(format!("bw-batch-dispatch-{i}"))
                    .spawn(move || loop {
                        let work = {
                            let rx = work_rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        match work {
                            Ok(work) => dispatch_batch(&inner.client, work),
                            Err(_) => break, // all senders gone: drained
                        }
                    })
                    .expect("dispatcher thread spawns")
            })
            .collect();
        let flusher = {
            let inner = Arc::clone(&inner);
            let work_tx = work_tx.clone();
            std::thread::Builder::new()
                .name("bw-batch-flusher".to_owned())
                .spawn(move || flusher_loop(&inner, &work_tx))
                .expect("flusher thread spawns")
        };
        Batcher {
            inner,
            work_tx: Some(work_tx),
            flusher: Some(flusher),
            dispatchers,
        }
    }

    /// Enqueues one request into its model's coalescing window. Returns
    /// a receiver the caller blocks on (or polls) for the individual
    /// outcome; the send side disconnecting means the batcher shut down
    /// before dispatch, which [`Batcher::call`] maps to
    /// [`ServeError::Disconnected`].
    pub fn submit(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Receiver<Result<Response, ServeError>> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let item = BatchItem::new(input, deadline);
        let hold = self.hold_budget(&item);
        let member = PendingMember {
            flush_at: item.arrived_at + hold,
            item,
            reply: reply_tx,
        };
        let full = {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.shutdown {
                // Shutting down: drop the member, disconnecting the
                // reply channel.
                return reply_rx;
            }
            let queue = state.queues.entry(model.to_owned()).or_default();
            queue.push(member);
            if queue.len() >= self.inner.cfg.max_batch {
                Some(BatchWork {
                    model: model.to_owned(),
                    members: std::mem::take(queue),
                })
            } else {
                None
            }
        };
        match full {
            // The window filled: flush inline, no hold time wasted.
            Some(work) => {
                if let Some(tx) = &self.work_tx {
                    let _ = tx.send(work);
                }
            }
            // Otherwise the flusher owns the member's hold deadline.
            None => self.inner.cv.notify_all(),
        }
        reply_rx
    }

    /// [`Batcher::submit`] + blocking receive: the drop-in replacement
    /// for [`Client::call`] behind the coalescing window.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ServeError::Disconnected`] if the
    /// batcher shuts down before the request dispatches.
    pub fn call(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Response, ServeError> {
        self.submit(model, input, deadline)
            .recv()
            .unwrap_or(Err(ServeError::Disconnected))
    }

    /// The hold budget for one arriving member:
    /// `min(max_hold, slack_fraction × remaining slack)`.
    fn hold_budget(&self, item: &BatchItem) -> Duration {
        let slack = item.slack(item.arrived_at);
        let from_slack = slack.mul_f64(self.inner.cfg.slack_fraction);
        from_slack.min(self.inner.cfg.max_hold)
    }

    /// Requests currently held in coalescing windows (for tests).
    pub fn pending(&self) -> usize {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.queues.values().map(Vec::len).sum()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
        }
        self.inner.cv.notify_all();
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        debug_assert!(self.inner.done.load(Ordering::Acquire));
        // Dropping the last sender lets the dispatcher pool drain the
        // already-flushed batches and exit.
        self.work_tx = None;
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The flusher: sleeps until the earliest hold deadline (or new work),
/// then moves every due queue to the dispatcher pool. On shutdown it
/// flushes everything still pending so no submitted request is dropped.
fn flusher_loop(inner: &BatcherInner, work_tx: &Sender<BatchWork>) {
    let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if state.shutdown {
            for (model, members) in state.queues.drain() {
                if !members.is_empty() {
                    let _ = work_tx.send(BatchWork { model, members });
                }
            }
            inner.done.store(true, Ordering::Release);
            return;
        }
        let now = Instant::now();
        // Flush every queue whose oldest member's hold budget expired
        // (the inline path in `submit` already handles full queues).
        let due: Vec<String> = state
            .queues
            .iter()
            .filter(|(_, q)| q.iter().any(|m| m.flush_at <= now))
            .map(|(model, _)| model.clone())
            .collect();
        for model in due {
            if let Some(members) = state.queues.remove(&model) {
                if !members.is_empty() {
                    let _ = work_tx.send(BatchWork { model, members });
                }
            }
        }
        let next = state
            .queues
            .values()
            .flat_map(|q| q.iter().map(|m| m.flush_at))
            .min();
        state = match next {
            Some(at) => {
                let timeout = at.saturating_duration_since(Instant::now());
                inner
                    .cv
                    .wait_timeout(state, timeout)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => inner.cv.wait(state).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// Drives one flushed batch through the blocking coalesced lifecycle
/// and fans the per-member outcomes back to their reply channels.
fn dispatch_batch(client: &Client, work: BatchWork) {
    let items: Vec<BatchItem> = work.members.iter().map(|m| m.item.clone()).collect();
    let results = client.call_batch(&work.model, &items);
    for (member, result) in work.members.into_iter().zip(results) {
        // A caller that stopped listening just drops its receiver; the
        // request is already accounted in the server metrics.
        let _ = member.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_input, mlp_artifact};
    use crate::server::Server;

    fn server() -> Server {
        Server::builder()
            .model(mlp_artifact("m", &[16, 8], 3))
            .replicas(1)
            .queue_cap(64)
            .spawn()
            .unwrap()
    }

    #[test]
    fn full_window_flushes_as_one_batch() {
        let server = server();
        let batcher = Batcher::new(
            server.client(),
            BatchConfig {
                max_batch: 4,
                max_hold: Duration::from_secs(5),
                slack_fraction: 1.0,
                dispatchers: 1,
            },
        );
        let receivers: Vec<_> = (0..4)
            .map(|i| batcher.submit("m", demo_input(16, i), Duration::from_secs(10)))
            .collect();
        for rx in receivers {
            let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
            assert_eq!(resp.output.len(), 8);
        }
        let m = &server.client().metrics().models[0];
        assert_eq!(m.completed, 4);
        assert_eq!(m.batches, 1, "one coalesced dispatch");
        assert_eq!(m.batched_requests, 4);
    }

    #[test]
    fn hold_expiry_flushes_a_partial_window() {
        let server = server();
        let batcher = Batcher::new(
            server.client(),
            BatchConfig {
                max_batch: 64,
                max_hold: Duration::from_millis(5),
                slack_fraction: 1.0,
                dispatchers: 1,
            },
        );
        let resp = batcher
            .call("m", demo_input(16, 0), Duration::from_secs(10))
            .unwrap();
        assert_eq!(resp.output.len(), 8);
        let m = &server.client().metrics().models[0];
        assert_eq!((m.completed, m.batches, m.batched_requests), (1, 1, 1));
    }

    #[test]
    fn drop_flushes_pending_members() {
        let server = server();
        let batcher = Batcher::new(
            server.client(),
            BatchConfig {
                max_batch: 64,
                max_hold: Duration::from_secs(60),
                slack_fraction: 1.0,
                dispatchers: 1,
            },
        );
        let rx = batcher.submit("m", demo_input(16, 1), Duration::from_secs(30));
        drop(batcher);
        let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
        assert_eq!(resp.output.len(), 8);
    }

    #[test]
    fn unknown_model_resolves_per_member() {
        let server = server();
        let batcher = Batcher::new(server.client(), BatchConfig::default());
        let err = batcher
            .call("nope", demo_input(16, 0), Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
    }
}
