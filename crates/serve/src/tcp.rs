//! The TCP front end: exposes a [`Server`] over the [`wire`] protocol.
//!
//! One OS thread accepts connections (non-blocking accept + shutdown
//! flag, so the front end stops promptly); each connection gets its own
//! handler thread that reads frames, drives the in-process [`Client`],
//! and writes responses back in request order. Errors inside a request
//! become `Error` frames; framing errors terminate the connection.
//!
//! [`wire`]: crate::wire

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::request::{Attribution, Response, ServeError};
use crate::server::{Client, Server};
use crate::wire::{read_frame, write_frame, WireRequest, WireResponse};

/// A running TCP front end. Dropping it stops the accept loop and waits
/// for it; connection handlers finish their in-flight request and exit
/// when their sockets close.
pub struct TcpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpFrontend {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `server`'s models over it.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(server: &Server, addr: &str) -> std::io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let t_stop = Arc::clone(&stop);
        let client = server.client();
        let accept_thread = std::thread::Builder::new()
            .name("bw-serve-accept".into())
            .spawn(move || accept_loop(&listener, &client, &t_stop))
            .expect("accept thread spawns");

        Ok(TcpFrontend {
            addr: local,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, client: &Client, stop: &AtomicBool) {
    let mut conn_id: u64 = 0;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                let client = client.clone();
                // Handlers are detached: they exit when the peer closes
                // or on the first framing error.
                let _ = std::thread::Builder::new()
                    .name(format!("bw-serve-conn-{conn_id}"))
                    .spawn(move || handle_connection(stream, &client));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(stream: TcpStream, client: &Client) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close or broken stream
        };
        let response = match WireRequest::decode(&payload) {
            Ok(WireRequest::Infer {
                model,
                deadline_us,
                input,
            }) => {
                let deadline = Duration::from_micros(deadline_us);
                match client.call(&model, &input, deadline) {
                    Ok(resp) => infer_response(&resp),
                    // SLA rejections cross the wire typed, so remote
                    // clients see the same structured error local ones do.
                    Err(ServeError::SlaUnmeetable {
                        model,
                        bound_us,
                        budget_us,
                    }) => WireResponse::SlaUnmeetable {
                        model,
                        bound_us,
                        budget_us,
                    },
                    Err(e) => WireResponse::Error(e.to_string()),
                }
            }
            Ok(WireRequest::Metrics) => WireResponse::Metrics(client.metrics().to_json()),
            Ok(WireRequest::Prometheus) => WireResponse::Prometheus(client.prometheus()),
            Err(e) => {
                // Tell the peer why, then drop the connection: framing is
                // unrecoverable.
                let _ = write_frame(&mut writer, &WireResponse::Error(e.to_string()).encode());
                return;
            }
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

fn infer_response(resp: &Response) -> WireResponse {
    WireResponse::Infer {
        request_id: resp.request_id,
        latency_us: resp.latency.as_micros() as u64,
        worker: resp.worker as u32,
        retries: resp.retries,
        queue_wait_us: resp.attribution.queue_wait.as_micros() as u64,
        service_us: resp.attribution.service.as_micros() as u64,
        npu_cycles: resp.attribution.npu_cycles,
        npu_macs: resp.attribution.npu_macs,
        dep_stall_cycles: resp.attribution.dep_stall_cycles,
        resource_stall_cycles: resp.attribution.resource_stall_cycles,
        network_us: resp.attribution.network.as_micros() as u64,
        output: resp.output.clone(),
    }
}

/// A blocking client for the TCP front end: one connection, one request
/// in flight at a time.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a front end.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Runs one inference over the wire.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carries server-side failures (including
    /// shed/deadline errors rendered as text); [`ServeError::Disconnected`]
    /// covers transport loss.
    pub fn call(
        &mut self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Response, ServeError> {
        let req = WireRequest::Infer {
            model: model.to_owned(),
            deadline_us: deadline.as_micros() as u64,
            input: input.to_vec(),
        };
        match self.round_trip(&req)? {
            WireResponse::Infer {
                request_id,
                latency_us,
                worker,
                retries,
                queue_wait_us,
                service_us,
                npu_cycles,
                npu_macs,
                dep_stall_cycles,
                resource_stall_cycles,
                network_us,
                output,
            } => Ok(Response {
                request_id,
                output,
                latency: Duration::from_micros(latency_us),
                worker: worker as usize,
                retries,
                attribution: Attribution {
                    queue_wait: Duration::from_micros(queue_wait_us),
                    service: Duration::from_micros(service_us),
                    network: Duration::from_micros(network_us),
                    npu_cycles,
                    npu_macs,
                    dep_stall_cycles,
                    resource_stall_cycles,
                },
            }),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            WireResponse::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            } => Err(ServeError::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            }),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    /// Fetches the server's metrics snapshot as JSON.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`].
    pub fn metrics_json(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&WireRequest::Metrics)? {
            WireResponse::Metrics(json) => Ok(json),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    /// Fetches the server's metrics as a Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`].
    pub fn prometheus(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&WireRequest::Prometheus)? {
            WireResponse::Prometheus(text) => Ok(text),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    fn round_trip(&mut self, req: &WireRequest) -> Result<WireResponse, ServeError> {
        write_frame(&mut self.writer, &req.encode()).map_err(|_| ServeError::Disconnected)?;
        let payload = read_frame(&mut self.reader)
            .map_err(|_| ServeError::Disconnected)?
            .ok_or(ServeError::Disconnected)?;
        WireResponse::decode(&payload).map_err(|e| ServeError::Remote(e.to_string()))
    }
}
