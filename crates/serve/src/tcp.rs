//! The TCP front end: exposes a [`Server`] over the [`wire`] protocol.
//!
//! This is a hand-rolled nonblocking readiness loop, not a
//! thread-per-connection design: a small fixed pool of event-loop
//! threads ([`TcpFrontendConfig::event_loops`]) shares one nonblocking
//! listener and multiplexes thousands of connections each, so ten
//! thousand idle connections cost ten thousand file descriptors and a
//! handful of threads — not ten thousand stacks. Each connection keeps
//!
//! - a read buffer fed by nonblocking reads, from which complete frames
//!   are peeled incrementally ([`try_extract_frame`]);
//! - a write buffer flushed opportunistically — a partial write or
//!   `WouldBlock` leaves the residue buffered until the socket reports
//!   writable again, so a slow reader exerts backpressure instead of
//!   wedging the loop or dropping bytes;
//! - a FIFO of pending response tickets, so responses go out in request
//!   order even though inference completes asynchronously.
//!
//! Inference requests are routed through a [`Batcher`], which coalesces
//! compatible same-model requests inside a deadline-slack-derived hold
//! window into one multi-column NPU dispatch (`max_batch: 1` restores
//! strict batch-1 semantics). Metrics and Prometheus requests are
//! answered inline. Errors inside a request become `Error` frames;
//! framing errors poison the connection: it stops reading, drains the
//! responses it still owes, sends one final `Error` frame, and closes.
//!
//! Readiness itself comes from `poll(2)` issued as a raw syscall on
//! x86-64 Linux (the workspace vendors no libc binding); other targets
//! fall back to a short-sleep scan that treats every socket as ready and
//! relies on the nonblocking reads to sort out who actually was.
//!
//! [`wire`]: crate::wire

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::batch::{BatchConfig, Batcher};
use crate::request::{Attribution, Response, ServeError};
use crate::server::{Client, Server};
use crate::wire::{read_frame, try_extract_frame, write_frame, WireRequest, WireResponse};

/// Tuning for one [`TcpFrontend`].
#[derive(Clone, Copy, Debug)]
pub struct TcpFrontendConfig {
    /// Event-loop threads sharing the listener. Each owns the
    /// connections it accepted for their whole lifetime.
    pub event_loops: usize,
    /// The admission-batching window applied to inference requests.
    /// `max_batch: 1` disables coalescing (strict batch-1 serving).
    pub batch: BatchConfig,
}

impl Default for TcpFrontendConfig {
    fn default() -> Self {
        TcpFrontendConfig {
            event_loops: 2,
            batch: BatchConfig::default(),
        }
    }
}

/// A running TCP front end. Dropping it stops the event loops and waits
/// for them; open connections are closed on shutdown.
pub struct TcpFrontend {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loops: Mutex<Vec<std::thread::JoinHandle<()>>>,
    // Held so the coalescing window outlives every event loop; the last
    // Arc drop (after the joins) flushes and joins the batcher's own
    // threads.
    _batcher: Arc<Batcher>,
}

impl TcpFrontend {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `server`'s models over it with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(server: &Server, addr: &str) -> std::io::Result<TcpFrontend> {
        TcpFrontend::bind_with(server, addr, TcpFrontendConfig::default())
    }

    /// [`TcpFrontend::bind`] with explicit event-loop and batching
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind_with(
        server: &Server,
        addr: &str,
        cfg: TcpFrontendConfig,
    ) -> std::io::Result<TcpFrontend> {
        let listener = Arc::new(TcpListener::bind(addr)?);
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let batcher = Arc::new(Batcher::new(server.client(), cfg.batch));

        let loops = (0..cfg.event_loops.max(1))
            .map(|i| {
                let mut event_loop = EventLoop {
                    listener: Arc::clone(&listener),
                    client: server.client(),
                    batcher: Arc::clone(&batcher),
                    stop: Arc::clone(&stop),
                    conns: Vec::new(),
                };
                std::thread::Builder::new()
                    .name(format!("bw-serve-loop-{i}"))
                    .spawn(move || event_loop.run())
                    .expect("event loop thread spawns")
            })
            .collect();

        Ok(TcpFrontend {
            addr: local,
            stop,
            loops: Mutex::new(loops),
            _batcher: batcher,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loops and joins them.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.loops.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// `poll(2)` readiness, issued as a raw syscall: the workspace carries no
/// libc binding, and spinning a scan over ten thousand idle sockets is
/// exactly what the readiness loop exists to avoid.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod readiness {
    /// Matches the kernel's `struct pollfd` layout.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// `poll(fds, nfds, timeout_ms)`; returns the syscall's raw result
    /// (ready count, 0 on timeout, negative errno on failure — callers
    /// treat failures like timeouts and retry).
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
        const SYS_POLL: isize = 7;
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_POLL => ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") timeout_ms as isize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

/// Portable fallback: report every registered interest as ready after a
/// short sleep. The nonblocking reads and writes behind it turn the
/// over-report into cheap `WouldBlock`s; correctness is identical, only
/// idle efficiency degrades.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod readiness {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
        std::thread::sleep(std::time::Duration::from_millis(
            u64::try_from(timeout_ms.clamp(0, 5)).unwrap_or(0),
        ));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        fds.len() as isize
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    -1
}

/// A response owed to the peer, in request order.
enum PendingReply {
    /// Already computed (metrics, Prometheus): the encoded payload.
    Ready(Vec<u8>),
    /// An inference in flight behind the coalescing window.
    Infer(Receiver<Result<Response, ServeError>>),
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed. Bounded: `try_extract_frame`
    /// rejects oversized prefixes before the body accumulates.
    rbuf: Vec<u8>,
    /// Bytes framed but not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` the socket has taken (partial-write cursor).
    wpos: usize,
    /// Responses owed, oldest first.
    pending: VecDeque<PendingReply>,
    /// A framing error was seen: reading stops, and once `pending`
    /// drains this final `Error` frame goes out before the close.
    poison: Option<Vec<u8>>,
    poisoned: bool,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            poison: None,
            poisoned: false,
            closed: false,
        }
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Appends one length-prefixed frame to the write buffer.
    fn queue_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Drains the socket into `rbuf` until `WouldBlock`.
    fn read_ready(&mut self) {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.closed = true;
                    return;
                }
                Ok(n) => self.rbuf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }

    /// Flushes as much of `wbuf` as the socket accepts. A partial write
    /// or `WouldBlock` leaves the cursor where it stopped — the loop
    /// retries when the socket polls writable, so slow readers stall
    /// their own connection and nothing else.
    fn flush(&mut self) {
        while self.wants_write() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.closed = true;
                    return;
                }
                Ok(n) => {
                    self.wpos += n;
                    if self.wpos == self.wbuf.len() {
                        self.wbuf.clear();
                        self.wpos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}

/// One event-loop thread: shares the listener, owns its connections.
struct EventLoop {
    listener: Arc<TcpListener>,
    client: Client,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    conns: Vec<Conn>,
}

impl EventLoop {
    fn run(&mut self) {
        use readiness::{PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};

        while !self.stop.load(Ordering::Acquire) {
            // Responses can complete without any socket event, so poll
            // with a short timeout while replies are in flight and a
            // long one when fully idle.
            let waiting = self.conns.iter().any(|c| !c.pending.is_empty());
            let timeout_ms = if waiting { 1 } else { 25 };

            let mut fds = Vec::with_capacity(self.conns.len() + 1);
            fds.push(PollFd {
                fd: raw_fd(&*self.listener),
                events: POLLIN,
                revents: 0,
            });
            for conn in &self.conns {
                let mut events = 0;
                if !conn.poisoned {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: raw_fd(&conn.stream),
                    events,
                    revents: 0,
                });
            }
            readiness::poll(&mut fds, timeout_ms);

            if fds[0].revents & POLLIN != 0 {
                self.accept_ready();
            }

            for (conn, fd) in self.conns.iter_mut().zip(&fds[1..]) {
                if fd.revents & (POLLERR | POLLHUP) != 0 {
                    // Let the read path observe the close/error so owed
                    // responses are not silently dropped on a half-close.
                    conn.read_ready();
                }
                if fd.revents & POLLIN != 0 && !conn.poisoned && !conn.closed {
                    conn.read_ready();
                    parse_frames(conn, &self.client, &self.batcher);
                }
            }

            for conn in &mut self.conns {
                if conn.closed {
                    continue;
                }
                drain_pending(conn);
                conn.flush();
                // A poisoned connection closes once its goodbye frame is
                // fully on the wire.
                if conn.poisoned
                    && conn.pending.is_empty()
                    && conn.poison.is_none()
                    && !conn.wants_write()
                {
                    conn.closed = true;
                }
            }
            self.conns.retain(|c| !c.closed);
        }
    }

    /// Accepts until the listener would block. Other loops polling the
    /// same listener simply lose the race and see `WouldBlock`.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.conns.push(Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

/// Peels complete frames off `conn.rbuf` and turns each into a pending
/// reply ticket. A framing or decode error poisons the connection.
fn parse_frames(conn: &mut Conn, client: &Client, batcher: &Batcher) {
    while !conn.poisoned {
        let payload = match try_extract_frame(&mut conn.rbuf) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                poison(conn, &e.to_string());
                return;
            }
        };
        match WireRequest::decode(&payload) {
            Ok(WireRequest::Infer {
                model,
                deadline_us,
                input,
            }) => {
                let rx = batcher.submit(&model, input, Duration::from_micros(deadline_us));
                conn.pending.push_back(PendingReply::Infer(rx));
            }
            Ok(WireRequest::Metrics) => {
                conn.pending.push_back(PendingReply::Ready(
                    WireResponse::Metrics(client.metrics().to_json()).encode(),
                ));
            }
            Ok(WireRequest::Prometheus) => {
                conn.pending.push_back(PendingReply::Ready(
                    WireResponse::Prometheus(client.prometheus()).encode(),
                ));
            }
            Err(e) => poison(conn, &e.to_string()),
        }
    }
}

/// Marks the connection as framing-broken: tell the peer why, then stop
/// reading. Responses already owed still drain first, in order.
fn poison(conn: &mut Conn, msg: &str) {
    conn.poisoned = true;
    conn.poison = Some(WireResponse::Error(msg.to_owned()).encode());
}

/// Moves every resolved head-of-line reply into the write buffer,
/// preserving request order; stops at the first still-in-flight one.
fn drain_pending(conn: &mut Conn) {
    while let Some(front) = conn.pending.front_mut() {
        let payload = match front {
            PendingReply::Ready(p) => std::mem::take(p),
            PendingReply::Infer(rx) => match rx.try_recv() {
                Ok(result) => encode_outcome(result),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    WireResponse::Error(ServeError::Disconnected.to_string()).encode()
                }
            },
        };
        conn.pending.pop_front();
        conn.queue_frame(&payload);
    }
    if conn.pending.is_empty() {
        if let Some(goodbye) = conn.poison.take() {
            conn.queue_frame(&goodbye);
        }
    }
}

fn encode_outcome(result: Result<Response, ServeError>) -> Vec<u8> {
    match result {
        Ok(resp) => infer_response(&resp).encode(),
        // SLA rejections cross the wire typed, so remote clients see the
        // same structured error local ones do.
        Err(ServeError::SlaUnmeetable {
            model,
            bound_us,
            budget_us,
        }) => WireResponse::SlaUnmeetable {
            model,
            bound_us,
            budget_us,
        }
        .encode(),
        Err(e) => WireResponse::Error(e.to_string()).encode(),
    }
}

fn infer_response(resp: &Response) -> WireResponse {
    WireResponse::Infer {
        request_id: resp.request_id,
        latency_us: resp.latency.as_micros() as u64,
        worker: resp.worker as u32,
        retries: resp.retries,
        queue_wait_us: resp.attribution.queue_wait.as_micros() as u64,
        service_us: resp.attribution.service.as_micros() as u64,
        npu_cycles: resp.attribution.npu_cycles,
        npu_macs: resp.attribution.npu_macs,
        dep_stall_cycles: resp.attribution.dep_stall_cycles,
        resource_stall_cycles: resp.attribution.resource_stall_cycles,
        network_us: resp.attribution.network.as_micros() as u64,
        output: resp.output.clone(),
    }
}

/// A blocking client for the TCP front end: one connection, one request
/// in flight at a time.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a front end.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Runs one inference over the wire.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] carries server-side failures (including
    /// shed/deadline errors rendered as text); [`ServeError::Disconnected`]
    /// covers transport loss.
    pub fn call(
        &mut self,
        model: &str,
        input: &[f32],
        deadline: Duration,
    ) -> Result<Response, ServeError> {
        let req = WireRequest::Infer {
            model: model.to_owned(),
            deadline_us: deadline.as_micros() as u64,
            input: input.to_vec(),
        };
        match self.round_trip(&req)? {
            WireResponse::Infer {
                request_id,
                latency_us,
                worker,
                retries,
                queue_wait_us,
                service_us,
                npu_cycles,
                npu_macs,
                dep_stall_cycles,
                resource_stall_cycles,
                network_us,
                output,
            } => Ok(Response {
                request_id,
                output,
                latency: Duration::from_micros(latency_us),
                worker: worker as usize,
                retries,
                attribution: Attribution {
                    queue_wait: Duration::from_micros(queue_wait_us),
                    service: Duration::from_micros(service_us),
                    network: Duration::from_micros(network_us),
                    npu_cycles,
                    npu_macs,
                    dep_stall_cycles,
                    resource_stall_cycles,
                },
            }),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            WireResponse::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            } => Err(ServeError::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            }),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    /// Fetches the server's metrics snapshot as JSON.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`].
    pub fn metrics_json(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&WireRequest::Metrics)? {
            WireResponse::Metrics(json) => Ok(json),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    /// Fetches the server's metrics as a Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::call`].
    pub fn prometheus(&mut self) -> Result<String, ServeError> {
        match self.round_trip(&WireRequest::Prometheus)? {
            WireResponse::Prometheus(text) => Ok(text),
            WireResponse::Error(msg) => Err(ServeError::Remote(msg)),
            _ => Err(ServeError::Remote("unexpected response frame".into())),
        }
    }

    fn round_trip(&mut self, req: &WireRequest) -> Result<WireResponse, ServeError> {
        write_frame(&mut self.writer, &req.encode()).map_err(|_| ServeError::Disconnected)?;
        let payload = read_frame(&mut self.reader)
            .map_err(|_| ServeError::Disconnected)?
            .ok_or(ServeError::Disconnected)?;
        WireResponse::decode(&payload).map_err(|e| ServeError::Remote(e.to_string()))
    }
}
