//! Client-side routing over the worker pool.
//!
//! Implements the same three policies `bw-system` models analytically
//! ([`Routing`], §II-A's client-side instance selection) — round-robin,
//! uniform random, and least-outstanding — but over *live* bounded worker
//! queues. The router produces a preference order; the dispatcher walks it
//! skipping dead and saturated replicas, which is what turns a policy into
//! failover and load shedding.

use std::sync::atomic::{AtomicUsize, Ordering};

use bw_system::Routing;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::worker::WorkerHandle;

/// Orders replicas for one dispatch attempt.
pub(crate) struct Router {
    policy: Routing,
    rr: AtomicUsize,
    rng: Mutex<StdRng>,
}

impl Router {
    pub fn new(policy: Routing, seed: u64) -> Router {
        Router {
            policy,
            rr: AtomicUsize::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The preference order over `workers` for one dispatch, excluding
    /// workers listed in `exclude` (already tried by this request), dead
    /// workers, and workers failing the `eligible` predicate (the
    /// dispatcher passes "pins this model slot over a live network
    /// link"). The first element is the policy's pick; the rest are the
    /// failover order.
    pub fn plan_eligible(
        &self,
        workers: &[WorkerHandle],
        exclude: &[usize],
        eligible: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..workers.len())
            .filter(|i| !exclude.contains(i) && workers[*i].is_alive() && eligible(*i))
            .collect();
        if candidates.is_empty() {
            return candidates;
        }
        match self.policy {
            Routing::RoundRobin => {
                // One global cursor, advanced per dispatch; rotate the
                // candidate list so the cursor's pick comes first.
                let cursor = self.rr.fetch_add(1, Ordering::Relaxed) % candidates.len();
                candidates.rotate_left(cursor);
            }
            Routing::Random => {
                // Seeded Fisher–Yates: the pick and the failover order are
                // both uniform and deterministic in the server seed.
                let mut rng = self.rng.lock();
                for i in (1..candidates.len()).rev() {
                    let j = rng.gen_range(0..i + 1);
                    candidates.swap(i, j);
                }
            }
            Routing::LeastOutstanding => {
                // Stable sort: ties resolve to the lowest index, matching
                // the analytical model (`free_at` ties pick the first).
                candidates.sort_by_key(|&i| workers[i].queue_depth());
            }
        }
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::mlp_artifact;
    use crate::worker::spawn_worker;

    fn pool(n: usize) -> Vec<WorkerHandle> {
        let artifact = mlp_artifact("m", &[16, 8], 1);
        (0..n)
            .map(|i| spawn_worker(i, vec![Some(artifact.pin().unwrap())], 4))
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let workers = pool(3);
        let r = Router::new(Routing::RoundRobin, 0);
        let picks: Vec<usize> = (0..6)
            .map(|_| r.plan_eligible(&workers, &[], |_| true)[0])
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        for w in &workers {
            w.stop_and_join();
        }
    }

    #[test]
    fn exclusion_and_death_shrink_the_plan() {
        let workers = pool(3);
        let r = Router::new(Routing::RoundRobin, 0);
        workers[1].kill();
        let plan = r.plan_eligible(&workers, &[2], |_| true);
        assert_eq!(plan, vec![0]);
        let none = r.plan_eligible(&workers, &[0, 2], |_| true);
        assert!(none.is_empty());
        for w in &workers {
            w.stop_and_join();
        }
    }

    #[test]
    fn eligibility_filters_the_plan() {
        let workers = pool(4);
        let r = Router::new(Routing::RoundRobin, 0);
        // Only even workers are eligible (e.g. owners of one shard).
        let plan = r.plan_eligible(&workers, &[], |w| w % 2 == 0);
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2]);
        // Exclusion composes with eligibility.
        assert_eq!(r.plan_eligible(&workers, &[0], |w| w % 2 == 0), vec![2]);
        for w in &workers {
            w.stop_and_join();
        }
    }

    #[test]
    fn random_is_deterministic_in_seed_and_covers_the_pool() {
        let workers = pool(4);
        let a: Vec<usize> = {
            let r = Router::new(Routing::Random, 7);
            (0..20)
                .map(|_| r.plan_eligible(&workers, &[], |_| true)[0])
                .collect()
        };
        let b: Vec<usize> = {
            let r = Router::new(Routing::Random, 7);
            (0..20)
                .map(|_| r.plan_eligible(&workers, &[], |_| true)[0])
                .collect()
        };
        assert_eq!(a, b);
        // Every plan is a permutation of the full pool.
        let r = Router::new(Routing::Random, 9);
        let mut plan = r.plan_eligible(&workers, &[], |_| true);
        plan.sort_unstable();
        assert_eq!(plan, vec![0, 1, 2, 3]);
        for w in &workers {
            w.stop_and_join();
        }
    }

    #[test]
    fn least_outstanding_prefers_the_idle_replica() {
        let workers = pool(2);
        let r = Router::new(Routing::LeastOutstanding, 0);
        // Artificially load worker 0.
        workers[0].outstanding.fetch_add(5, Ordering::Relaxed);
        assert_eq!(r.plan_eligible(&workers, &[], |_| true)[0], 1);
        workers[0].outstanding.fetch_sub(5, Ordering::Relaxed);
        for w in &workers {
            w.stop_and_join();
        }
    }
}
