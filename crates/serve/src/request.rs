//! The request lifecycle vocabulary: identifiers, successful responses,
//! and the explicit error taxonomy of §II-A serving (millisecond
//! deadlines, replica failover, load shedding instead of collapse).

use std::time::Duration;

use bw_core::{RunStats, SpanRecord, TraceId};

/// A server-assigned request identifier, unique per server instance.
pub type RequestId = u64;

/// Where one completed request's time and NPU work went: the queue-wait
/// vs service split of the winning attempt plus the accelerator counters
/// it accumulated. Every completion carries one (zeroed only if the
/// serving path could not measure it).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Attribution {
    /// Time the winning attempt sat in the worker queue before a thread
    /// picked it up.
    pub queue_wait: Duration,
    /// Time the winning attempt spent executing on the worker's NPUs.
    pub service: Duration,
    /// Modeled network transfer time charged to this request (scatter,
    /// gather, and request/response legs under the server's
    /// `NetworkModel`; zero on an ideal network).
    pub network: Duration,
    /// Simulated NPU cycles the inference consumed.
    pub npu_cycles: u64,
    /// MVM multiply-accumulates the inference performed.
    pub npu_macs: u64,
    /// Cycles the NPU pipeline stalled on chain dependencies.
    pub dep_stall_cycles: u64,
    /// Cycles chains waited on busy resources.
    pub resource_stall_cycles: u64,
}

/// A completed inference.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request this answers.
    pub request_id: RequestId,
    /// The model output vector.
    pub output: Vec<f32>,
    /// End-to-end latency, submit to completion.
    pub latency: Duration,
    /// Worker that produced the accepted attempt.
    pub worker: usize,
    /// Failover retries this request consumed (0 = first attempt won).
    pub retries: u32,
    /// Queue/service split and attributed NPU counters.
    pub attribution: Attribution,
}

/// One sampled request's full trace: its attribution plus the raw
/// [`SpanRecord`]s the NPUs emitted while serving it. Collected only for
/// requests matched by the server's `trace_sample` knob and drained via
/// `Server::take_traces`.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The request the spans belong to.
    pub request_id: RequestId,
    /// The span `trace_id` stamped on every record (equals
    /// `request_id`).
    pub trace_id: TraceId,
    /// The model served.
    pub model: String,
    /// Worker that produced the accepted attempt.
    pub worker: usize,
    /// Queue/service split and attributed NPU counters.
    pub attribution: Attribution,
    /// Full accelerator statistics of the winning attempt.
    pub stats: RunStats,
    /// Spans the NPU pool emitted, in emission order.
    pub spans: Vec<SpanRecord>,
}

/// Why the tail-sampling flight recorder retained a request.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightOutcome {
    /// The request completed, but slower than the configured latency
    /// objective.
    LatencyBreach {
        /// The measured end-to-end latency.
        latency: Duration,
        /// The objective it breached.
        objective: Duration,
    },
    /// The request terminated in a [`ServeError`] after admission.
    Failed {
        /// The rendered terminal error.
        error: String,
    },
}

/// One retained flight-recorder entry: the full trace of a request that
/// breached the latency objective or failed. This is *tail* sampling —
/// the decision to keep the trace is made at termination, once the
/// outcome is known, so the bounded ring holds only the requests worth
/// diagnosing (the p99.9 outliers), not a head-sampled cross-section.
/// Drained via `Server::take_flight_records`.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// The retained trace. For a completed-but-slow request this carries
    /// the full NPU span tree; for a failed request the spans are
    /// whatever the failed attempts produced (often empty — the request
    /// never completed an inference).
    pub trace: RequestTrace,
    /// Why the recorder kept it.
    pub outcome: FlightOutcome,
}

/// Why a request did not complete. Every in-flight request terminates in
/// exactly one of [`Response`] or one of these — there are no silent
/// drops, and the metrics account for each (`completed + shed + failed ==
/// submitted`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No registered model has this name (rejected before admission; not
    /// counted as submitted).
    UnknownModel(
        /// The requested model name.
        String,
    ),
    /// The input vector length does not match the model (rejected before
    /// admission; not counted as submitted).
    BadInput {
        /// Dimension the model consumes.
        expected: usize,
        /// Dimension supplied.
        got: usize,
    },
    /// Load shed at admission: every live replica's queue was full. The
    /// graceful-degradation path — the server answers immediately instead
    /// of building an unbounded backlog.
    Shed {
        /// The model whose replicas were saturated.
        model: String,
    },
    /// The deadline passed before any replica completed the request
    /// (counted as failed).
    DeadlineExceeded {
        /// The model requested.
        model: String,
        /// Failover retries consumed before the deadline.
        retries: u32,
    },
    /// No live replica serves this model (counted as failed).
    NoReplica {
        /// The model requested.
        model: String,
    },
    /// Every permitted attempt ended in a worker fault (counted as
    /// failed).
    WorkerFault {
        /// The model requested.
        model: String,
        /// The last fault message.
        message: String,
        /// Failover retries consumed.
        retries: u32,
    },
    /// The request's deadline budget is provably unmeetable: the model's
    /// static cycle lower bound already exceeds it, so the request would
    /// be dead on arrival (rejected before admission; not counted as
    /// submitted).
    SlaUnmeetable {
        /// The model requested.
        model: String,
        /// The static lower bound on one inference, in microseconds.
        bound_us: u64,
        /// The deadline budget the request allowed, in microseconds.
        budget_us: u64,
    },
    /// The server shut down while the request was in flight (counted as
    /// failed).
    Disconnected,
    /// A transport-level failure reported by the TCP front end.
    Remote(
        /// The wire error message.
        String,
    ),
}

impl ServeError {
    /// Whether this error is counted in the `shed` metric (vs `failed`).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeError::Shed { .. })
    }

    /// Whether the request was admitted (and therefore must be accounted
    /// for by the metrics).
    pub fn was_admitted(&self) -> bool {
        !matches!(
            self,
            ServeError::UnknownModel(_)
                | ServeError::BadInput { .. }
                | ServeError::SlaUnmeetable { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::BadInput { expected, got } => {
                write!(f, "bad input: model consumes {expected} values, got {got}")
            }
            ServeError::Shed { model } => {
                write!(f, "shed: every replica queue for `{model}` is full")
            }
            ServeError::DeadlineExceeded { model, retries } => {
                write!(f, "deadline exceeded on `{model}` after {retries} retries")
            }
            ServeError::NoReplica { model } => {
                write!(f, "no live replica serves `{model}`")
            }
            ServeError::WorkerFault {
                model,
                message,
                retries,
            } => write!(
                f,
                "worker fault on `{model}` after {retries} retries: {message}"
            ),
            ServeError::SlaUnmeetable {
                model,
                bound_us,
                budget_us,
            } => write!(
                f,
                "sla unmeetable on `{model}`: static lower bound {bound_us}us \
                 exceeds the {budget_us}us deadline budget"
            ),
            ServeError::Disconnected => write!(f, "server shut down mid-request"),
            ServeError::Remote(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_and_admission_classification() {
        assert!(ServeError::Shed { model: "m".into() }.is_shed());
        assert!(ServeError::Shed { model: "m".into() }.was_admitted());
        assert!(!ServeError::UnknownModel("m".into()).was_admitted());
        assert!(!ServeError::BadInput {
            expected: 8,
            got: 4
        }
        .was_admitted());
        assert!(ServeError::DeadlineExceeded {
            model: "m".into(),
            retries: 1
        }
        .was_admitted());
        assert!(!ServeError::Disconnected.is_shed());
    }

    #[test]
    fn errors_render() {
        let e = ServeError::WorkerFault {
            model: "lstm".into(),
            message: "sim error".into(),
            retries: 2,
        };
        assert!(e.to_string().contains("lstm"));
        assert!(e.to_string().contains("2 retries"));
    }
}
