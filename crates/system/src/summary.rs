//! Shared latency summarization: one statistics type for analytical
//! simulations (`simulate`, `simulate_pool`) and for runtimes that measure
//! real end-to-end latencies (`bw-serve`), so predictions and measurements
//! compare field-for-field.

use serde::{Deserialize, Serialize};

/// Nearest-rank quantile over an ascending-sorted slice (the convention
/// every report in this workspace uses). Returns 0.0 on an empty slice.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize]
}

/// A latency distribution summary: the percentile set the paper's serving
/// story is judged by (millisecond-scale SLOs hold at the *tail*, §I).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// 99.9th percentile.
    pub p999_s: f64,
    /// Largest observed latency.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes an ascending-sorted latency slice.
    pub fn from_sorted(sorted: &[f64]) -> LatencySummary {
        LatencySummary {
            count: sorted.len(),
            mean_s: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<f64>() / sorted.len() as f64
            },
            p50_s: nearest_rank(sorted, 0.50),
            p95_s: nearest_rank(sorted, 0.95),
            p99_s: nearest_rank(sorted, 0.99),
            p999_s: nearest_rank(sorted, 0.999),
            max_s: sorted.last().copied().unwrap_or(0.0),
        }
    }

    /// Summarizes an arbitrary latency sample (sorts a copy).
    pub fn from_unsorted(samples: &[f64]) -> LatencySummary {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Self::from_sorted(&sorted)
    }

    /// Renders the summary as a JSON object fragment (no external
    /// dependencies, mirroring `AnalysisReport::to_json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_s\": {:.9}, \"p50_s\": {:.9}, \"p95_s\": {:.9}, \
             \"p99_s\": {:.9}, \"p999_s\": {:.9}, \"max_s\": {:.9}}}",
            self.count, self.mean_s, self.p50_s, self.p95_s, self.p99_s, self.p999_s, self.max_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_sorted(&[]);
        assert_eq!(s, LatencySummary::default());
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_sorted(&sorted);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, nearest_rank(&sorted, 0.5));
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_matches_sorted() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            LatencySummary::from_unsorted(&samples),
            LatencySummary::from_sorted(&sorted)
        );
    }

    #[test]
    fn json_has_every_field() {
        let j = LatencySummary::from_sorted(&[1e-3, 2e-3]).to_json();
        for key in [
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "p999_s", "max_s",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
    }
}
