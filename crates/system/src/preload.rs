//! The weight-preload cost model: what it costs, in simulated time, to
//! pin a model's weights into a worker's matrix register file.
//!
//! §II's hardware-microservices story pins a model onto FPGAs once and
//! then serves it for days, which is why the serving runtime could treat
//! pinning as free. A fleet controller cannot: scaling a replica up means
//! shipping the model's MRF image across the datacenter network and
//! streaming it into on-chip SRAM before the first request can land, and
//! that window is exactly what the controller must hide. [`PreloadModel`]
//! prices that window from the artifact's MRF fill size (see
//! `Deployment::mrf_fill_bytes` in `bw-gir`) and the shared
//! [`NetworkModel`](crate::NetworkModel) — including its degraded-link
//! multiplier, so preloading over a sick link is honestly slower.

use serde::{Deserialize, Serialize};

use crate::NetworkModel;

/// Prices a weight preload: `network transfer + MRF fill + fixed setup`.
///
/// The network leg charges the weight image over the destination
/// worker's link at [`NetworkModel::one_way_on`] (so down-stream
/// degradation is felt); the fill leg streams the same bytes into the
/// matrix register file at `fill_bandwidth_bytes_per_s`; `setup_s` is a
/// fixed per-pin overhead (reconfiguration, control handshakes). The
/// default is [`PreloadModel::free`] — zero cost — so existing
/// boot-time-pinning setups keep their exact behavior; a fleet
/// controller opts into a real price.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PreloadModel {
    /// On-chip fill bandwidth in bytes per second. `0.0` (the default)
    /// models an instantaneous fill: only the network and setup terms
    /// are charged.
    pub fill_bandwidth_bytes_per_s: f64,
    /// Fixed per-pin overhead in seconds (control handshakes, partial
    /// reconfiguration).
    pub setup_s: f64,
}

impl PreloadModel {
    /// The free preload: pinning costs nothing, as the original
    /// boot-time-only runtime assumed. This is also the [`Default`].
    pub fn free() -> PreloadModel {
        PreloadModel::default()
    }

    /// Sets the MRF fill bandwidth (builder style).
    pub fn fill_bandwidth(mut self, bytes_per_s: f64) -> PreloadModel {
        self.fill_bandwidth_bytes_per_s = bytes_per_s;
        self
    }

    /// Sets the fixed per-pin setup time (builder style).
    pub fn setup(mut self, seconds: f64) -> PreloadModel {
        self.setup_s = seconds;
        self
    }

    /// Whether a preload under this model costs nothing at all (over an
    /// ideal network), letting callers skip the simulated wait.
    pub fn is_free(&self) -> bool {
        self.fill_bandwidth_bytes_per_s == 0.0 && self.setup_s == 0.0
    }

    /// The simulated seconds to preload a `weight_bytes`-byte MRF image
    /// onto the worker behind `link`: one network leg for the image
    /// (degradation-aware), the on-chip fill, and the fixed setup.
    pub fn preload_s(&self, weight_bytes: usize, net: &NetworkModel, link: usize) -> f64 {
        let fill = if self.fill_bandwidth_bytes_per_s > 0.0
            && self.fill_bandwidth_bytes_per_s.is_finite()
        {
            weight_bytes as f64 / self.fill_bandwidth_bytes_per_s
        } else {
            0.0
        };
        net.one_way_on(link, weight_bytes) + fill + self.setup_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_costs_nothing_over_ideal_network() {
        let m = PreloadModel::free();
        assert!(m.is_free());
        assert_eq!(m.preload_s(1 << 20, &NetworkModel::ideal(), 0), 0.0);
    }

    #[test]
    fn terms_compose() {
        let net = NetworkModel::with_hop(10e-6).bandwidth(1e9);
        let m = PreloadModel::free().fill_bandwidth(2e9).setup(100e-6);
        assert!(!m.is_free());
        let bytes = 1 << 20;
        let expect = net.one_way_s(bytes) + bytes as f64 / 2e9 + 100e-6;
        assert!((m.preload_s(bytes, &net, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn degraded_destination_link_slows_the_preload() {
        let net = NetworkModel::with_hop(10e-6)
            .bandwidth(1e9)
            .degrade_link(1, 5.0);
        let m = PreloadModel::free().setup(1e-6);
        let healthy = m.preload_s(4096, &net, 0);
        let slow = m.preload_s(4096, &net, 1);
        assert!(slow > healthy, "{slow} vs {healthy}");
        let expect = 5.0 * net.one_way_s(4096) + 1e-6;
        assert!((slow - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_fill_bandwidth_means_instant_fill() {
        let m = PreloadModel::free().setup(2e-6);
        assert_eq!(m.preload_s(usize::MAX / 2, &NetworkModel::ideal(), 0), 2e-6);
    }
}
