//! Discrete-event serving simulation.
//!
//! Models the paper's serving context (§I, §II): requests arrive one at a
//! time over the datacenter network at a hardware microservice backed by
//! one or more accelerators. Two service disciplines capture the paper's
//! central contrast:
//!
//! * [`ServiceModel::PerRequest`] — the BW NPU discipline: requests are
//!   served individually the moment a device frees up, so latency is
//!   service time plus queueing only;
//! * [`ServiceModel::Batched`] — the GPU discipline: a batching queue
//!   holds requests until `batch_max` accumulate or a timeout expires,
//!   trading latency for device efficiency (§VII-B3's "batching queues and
//!   runtime").

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How requests arrive at the microservice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given mean rate.
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Deterministic arrivals at a fixed interval.
    Uniform {
        /// Seconds between arrivals.
        interval_s: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps (seconds, ascending).
    ///
    /// # Panics
    ///
    /// Panics if the rate or interval is not positive.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => {
                assert!(rate_per_s > 0.0, "rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..n {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate_per_s;
                    out.push(t);
                }
            }
            ArrivalProcess::Uniform { interval_s } => {
                assert!(interval_s > 0.0, "interval must be positive");
                for _ in 0..n {
                    t += interval_s;
                    out.push(t);
                }
            }
        }
        out
    }
}

/// The service discipline of the microservice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// Serve each request individually in `seconds` (the BW discipline).
    PerRequest {
        /// Service time per request.
        seconds: f64,
    },
    /// Form batches before serving (the GPU discipline): dispatch when
    /// `batch_max` requests wait or when the oldest has waited
    /// `timeout_s`; a batch of `b` takes `base_s + per_item_s · b`.
    Batched {
        /// Largest batch dispatched.
        batch_max: u32,
        /// Longest a request may wait for batch formation.
        timeout_s: f64,
        /// Fixed batch overhead.
        base_s: f64,
        /// Incremental time per batched request.
        per_item_s: f64,
    },
}

impl ServiceModel {
    fn batch_service_time(&self, batch: usize) -> f64 {
        match *self {
            ServiceModel::PerRequest { seconds } => seconds,
            ServiceModel::Batched {
                base_s, per_item_s, ..
            } => base_s + per_item_s * batch as f64,
        }
    }
}

/// A hardware microservice: a service model replicated across `servers`
/// devices, reached over a network hop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// The per-device discipline.
    pub service: ServiceModel,
    /// Devices behind the service.
    pub servers: usize,
    /// One-way network latency between client and service, in seconds
    /// (paid twice per request).
    pub network_hop_s: f64,
}

impl Microservice {
    /// Builds a microservice whose hop cost comes from a
    /// [`NetworkModel`](crate::NetworkModel) instead of a hand-set
    /// constant: the one-way cost of moving `payload_bytes` (per
    /// direction) over the modeled link. This is the bridge that keeps
    /// the analytical path and the live `bw-serve` runtime charging the
    /// same network.
    pub fn over_network(
        service: ServiceModel,
        servers: usize,
        net: &crate::NetworkModel,
        payload_bytes: usize,
    ) -> Microservice {
        Microservice {
            service,
            servers,
            network_hop_s: net.one_way_s(payload_bytes),
        }
    }
}

/// Latency and throughput statistics from one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_latency_s: f64,
    /// 95th percentile latency.
    pub p95_latency_s: f64,
    /// 99th percentile latency.
    pub p99_latency_s: f64,
    /// Completions per second over the busy interval.
    pub throughput_rps: f64,
    /// Mean dispatched batch size (1.0 for per-request service).
    pub mean_batch: f64,
    /// Fraction of simulated time the devices were busy.
    pub server_utilization: f64,
    /// Per-request completion timestamps (seconds), in completion order —
    /// feed these to a downstream pipeline stage.
    pub completion_times: Vec<f64>,
    /// Per-request end-to-end latencies (seconds), sorted ascending.
    pub sorted_latencies: Vec<f64>,
}

impl ServingReport {
    /// Fraction of requests whose end-to-end latency exceeded `deadline_s`
    /// — the SLA-violation rate (§I: services must "satisfy service-level
    /// agreements").
    pub fn sla_violation_rate(&self, deadline_s: f64) -> f64 {
        if self.sorted_latencies.is_empty() {
            return 0.0;
        }
        let violations = self.sorted_latencies.partition_point(|&l| l <= deadline_s);
        (self.sorted_latencies.len() - violations) as f64 / self.sorted_latencies.len() as f64
    }

    /// The latency at quantile `q` (0 ≤ q ≤ 1), by nearest-rank.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.sorted_latencies.is_empty() {
            return 0.0;
        }
        crate::summary::nearest_rank(&self.sorted_latencies, q)
    }

    /// The full [`LatencySummary`](crate::LatencySummary) of this report's
    /// latency sample.
    pub fn latency_summary(&self) -> crate::LatencySummary {
        crate::LatencySummary::from_sorted(&self.sorted_latencies)
    }
}

/// Simulates `arrivals` (absolute seconds, ascending) against a
/// microservice.
///
/// # Panics
///
/// Panics if the microservice has zero servers or a non-positive service
/// time.
pub fn simulate(arrivals: &[f64], service: &Microservice) -> ServingReport {
    assert!(service.servers > 0, "need at least one server");

    #[derive(PartialEq)]
    struct Ev(f64, EvKind);
    #[derive(PartialEq, Eq)]
    enum EvKind {
        Arrival(usize),
        ServerFree,
        Timeout,
    }
    impl Eq for Ev {}
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .expect("finite times")
                .then(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    for (i, &t) in arrivals.iter().enumerate() {
        events.push(Reverse(Ev(t + service.network_hop_s, EvKind::Arrival(i))));
    }

    let mut queue: VecDeque<(usize, f64)> = VecDeque::new(); // (request, enqueue time)
    let mut free_servers = service.servers;
    let mut latencies = vec![0.0f64; arrivals.len()];
    let mut completions: Vec<f64> = Vec::with_capacity(arrivals.len());
    let mut busy_time = 0.0f64;
    let mut batches = 0u64;
    let mut batched_requests = 0u64;
    let mut completed = 0usize;

    let (batch_max, timeout) = match service.service {
        ServiceModel::PerRequest { .. } => (1usize, f64::INFINITY),
        ServiceModel::Batched {
            batch_max,
            timeout_s,
            ..
        } => (batch_max.max(1) as usize, timeout_s),
    };

    while let Some(Reverse(Ev(now, kind))) = events.pop() {
        match kind {
            EvKind::Arrival(i) => {
                queue.push_back((i, now));
                if timeout.is_finite() && queue.len() == 1 {
                    events.push(Reverse(Ev(now + timeout, EvKind::Timeout)));
                }
            }
            EvKind::ServerFree => free_servers += 1,
            EvKind::Timeout => {}
        }

        // Dispatch while possible.
        while free_servers > 0 && !queue.is_empty() {
            let head_wait = now - queue.front().expect("non-empty").1;
            let enough = queue.len() >= batch_max || head_wait >= timeout;
            if !enough {
                break;
            }
            let b = queue.len().min(batch_max);
            let service_time = service.service.batch_service_time(b);
            assert!(service_time > 0.0, "service time must be positive");
            free_servers -= 1;
            busy_time += service_time;
            batches += 1;
            batched_requests += b as u64;
            let done = now + service_time;
            for _ in 0..b {
                let (req, _) = queue.pop_front().expect("len checked");
                latencies[req] = done + service.network_hop_s - arrivals[req];
                completions.push(done + service.network_hop_s);
                completed += 1;
            }
            events.push(Reverse(Ev(done, EvKind::ServerFree)));
        }
    }

    let mut sorted = latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * p) as usize]
        }
    };
    let span = completions
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::EPSILON);
    let mean_latency_s = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    ServingReport {
        completed,
        mean_latency_s,
        p50_latency_s: p50,
        p95_latency_s: p95,
        p99_latency_s: p99,
        throughput_rps: completed as f64 / span,
        mean_batch: if batches > 0 {
            batched_requests as f64 / batches as f64
        } else {
            0.0
        },
        server_utilization: busy_time / (span * service.servers as f64),
        completion_times: completions,
        sorted_latencies: sorted,
    }
}

/// Simulates a linear multi-accelerator pipeline (§II-A: "partitionable
/// problems can be spatially distributed across multiple accelerators"):
/// each stage's completions become the next stage's arrivals. Returns the
/// per-stage reports; end-to-end latency statistics are in the last report
/// measured against the original arrivals.
pub fn simulate_pipeline(arrivals: &[f64], stages: &[Microservice]) -> Vec<ServingReport> {
    let mut reports = Vec::with_capacity(stages.len());
    let mut current: Vec<f64> = arrivals.to_vec();
    for stage in stages {
        let report = simulate(&current, stage);
        current = report.completion_times.clone();
        current.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        reports.push(report);
    }
    // Rewrite the last report's latency stats end-to-end.
    if let (Some(last), false) = (reports.last_mut(), arrivals.is_empty()) {
        let mut e2e: Vec<f64> = current
            .iter()
            .zip(arrivals)
            .map(|(done, arr)| done - arr)
            .collect();
        e2e.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| e2e[((e2e.len() - 1) as f64 * p) as usize];
        last.mean_latency_s = e2e.iter().sum::<f64>() / e2e.len() as f64;
        last.p50_latency_s = pct(0.50);
        last.p95_latency_s = pct(0.95);
        last.p99_latency_s = pct(0.99);
        last.sorted_latencies = e2e;
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: Microservice = Microservice {
        service: ServiceModel::PerRequest { seconds: 2e-3 },
        servers: 1,
        network_hop_s: 10e-6,
    };

    #[test]
    fn idle_system_latency_is_service_plus_hops() {
        let arrivals = ArrivalProcess::Uniform { interval_s: 0.1 }.generate(50, 0);
        let r = simulate(&arrivals, &BW);
        assert_eq!(r.completed, 50);
        let expect = 2e-3 + 2.0 * 10e-6;
        assert!(
            (r.mean_latency_s - expect).abs() < 1e-9,
            "{}",
            r.mean_latency_s
        );
        assert!((r.p99_latency_s - expect).abs() < 1e-9);
    }

    #[test]
    fn queueing_grows_latency_near_saturation() {
        // Service 2 ms -> capacity 500 rps. At 480 rps Poisson, waits blow up.
        let low = simulate(
            &ArrivalProcess::Poisson { rate_per_s: 100.0 }.generate(2000, 1),
            &BW,
        );
        let high = simulate(
            &ArrivalProcess::Poisson { rate_per_s: 480.0 }.generate(2000, 1),
            &BW,
        );
        assert!(high.mean_latency_s > 3.0 * low.mean_latency_s);
        assert!(high.server_utilization > 0.9);
        assert!(low.server_utilization < 0.3);
    }

    #[test]
    fn mm1_mean_wait_sanity() {
        // M/D/1: W_q = ρ s / (2 (1 - ρ)). At ρ = 0.5, W_q = s/2.
        let s = 2e-3;
        let rate = 0.5 / s;
        let r = simulate(
            &ArrivalProcess::Poisson { rate_per_s: rate }.generate(60_000, 7),
            &Microservice {
                network_hop_s: 0.0,
                ..BW
            },
        );
        let wait = r.mean_latency_s - s;
        let theory = s / 2.0 * 0.5 / (1.0 - 0.5) * 2.0; // = s/2
        let _ = theory;
        assert!(
            (wait - s / 2.0).abs() < s * 0.15,
            "mean queueing wait {wait} vs theory {}",
            s / 2.0
        );
    }

    #[test]
    fn batching_raises_latency_at_low_load() {
        // 200 rps: the per-request server is at 40% load, comfortably
        // unsaturated, while the batching queue still forms real batches.
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 200.0 }.generate(3000, 3);
        let gpu = Microservice {
            service: ServiceModel::Batched {
                batch_max: 16,
                timeout_s: 10e-3,
                base_s: 2e-3,
                per_item_s: 0.3e-3,
            },
            servers: 1,
            network_hop_s: 10e-6,
        };
        let bw = simulate(&arrivals, &BW);
        let gp = simulate(&arrivals, &gpu);
        // The batching queue adds formation delay the BW discipline avoids.
        assert!(gp.mean_latency_s > 2.0 * bw.mean_latency_s);
        assert!(gp.mean_batch > 1.5, "mean batch {}", gp.mean_batch);
    }

    #[test]
    fn batch_timeout_bounds_the_wait() {
        // A lone request must not wait forever for batch formation.
        let gpu = Microservice {
            service: ServiceModel::Batched {
                batch_max: 32,
                timeout_s: 5e-3,
                base_s: 1e-3,
                per_item_s: 0.1e-3,
            },
            servers: 1,
            network_hop_s: 0.0,
        };
        let r = simulate(&[0.0], &gpu);
        assert_eq!(r.completed, 1);
        let expect = 5e-3 + 1e-3 + 0.1e-3;
        assert!(
            (r.mean_latency_s - expect).abs() < 1e-9,
            "{}",
            r.mean_latency_s
        );
    }

    #[test]
    fn extra_servers_raise_capacity() {
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 900.0 }.generate(4000, 5);
        let one = simulate(&arrivals, &BW);
        let two = simulate(&arrivals, &Microservice { servers: 2, ..BW });
        assert!(two.mean_latency_s < one.mean_latency_s / 2.0);
        assert!(two.throughput_rps > one.throughput_rps * 0.99);
    }

    #[test]
    fn pipeline_end_to_end_latency_accumulates() {
        let arrivals = ArrivalProcess::Uniform { interval_s: 0.01 }.generate(200, 0);
        let stage = Microservice {
            service: ServiceModel::PerRequest { seconds: 1e-3 },
            servers: 1,
            network_hop_s: 5e-6,
        };
        let reports = simulate_pipeline(&arrivals, &[stage, stage]);
        assert_eq!(reports.len(), 2);
        let expect = 2.0 * (1e-3 + 1e-5);
        assert!(
            (reports[1].mean_latency_s - expect).abs() < 1e-7,
            "{}",
            reports[1].mean_latency_s
        );
    }

    #[test]
    fn sla_violation_rate_and_quantiles() {
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 400.0 }.generate(5000, 13);
        let r = simulate(&arrivals, &BW);
        // The floor latency is ~2.02 ms; a 1 ms SLA is always violated,
        // a 1 s SLA never.
        assert_eq!(r.sla_violation_rate(1e-3), 1.0);
        assert_eq!(r.sla_violation_rate(1.0), 0.0);
        // Violation rate decreases monotonically with the deadline.
        let mut prev = 1.0;
        for deadline in [2.0e-3, 2.5e-3, 4e-3, 10e-3, 50e-3] {
            let v = r.sla_violation_rate(deadline);
            assert!(v <= prev, "deadline {deadline}: {v} > {prev}");
            prev = v;
        }
        // Quantiles are consistent with the percentile fields.
        assert_eq!(r.latency_quantile(0.5), r.p50_latency_s);
        assert_eq!(r.latency_quantile(0.99), r.p99_latency_s);
        assert!(r.latency_quantile(0.0) <= r.latency_quantile(1.0));
    }

    #[test]
    fn poisson_arrivals_have_the_requested_rate() {
        let a = ArrivalProcess::Poisson { rate_per_s: 1000.0 }.generate(50_000, 42);
        let rate = a.len() as f64 / a.last().unwrap();
        assert!((rate - 1000.0).abs() < 30.0, "{rate}");
        assert!(a.windows(2).all(|w| w[1] > w[0]));
    }
}
