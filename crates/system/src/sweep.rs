//! Parallel load sweeps over the serving simulator.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::sim::{simulate, ArrivalProcess, Microservice, ServingReport};

/// One point of a load sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered Poisson load, requests per second.
    pub rate_per_s: f64,
    /// The resulting statistics.
    pub report: ServingReport,
}

/// Simulates the microservice at each offered load in parallel (one worker
/// thread per available core) and returns the points in `rates` order.
///
/// # Panics
///
/// Panics if `n_requests` is zero.
pub fn sweep_load(
    rates: &[f64],
    service: &Microservice,
    n_requests: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(n_requests > 0, "need at least one request per point");
    let results: Mutex<Vec<Option<SweepPoint>>> = Mutex::new(vec![None; rates.len()]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(rates.len().max(1));

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= rates.len() {
                    break;
                }
                let arrivals = ArrivalProcess::Poisson {
                    rate_per_s: rates[i],
                }
                .generate(n_requests, seed);
                let report = simulate(&arrivals, service);
                results.lock()[i] = Some(SweepPoint {
                    rate_per_s: rates[i],
                    report,
                });
            });
        }
    })
    .expect("sweep workers do not panic");

    results
        .into_inner()
        .into_iter()
        .map(|p| p.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ServiceModel;

    #[test]
    fn sweep_preserves_order_and_monotonicity() {
        let service = Microservice {
            service: ServiceModel::PerRequest { seconds: 1e-3 },
            servers: 1,
            network_hop_s: 0.0,
        };
        let rates = [50.0, 200.0, 400.0, 600.0, 800.0, 950.0];
        let points = sweep_load(&rates, &service, 3000, 11);
        assert_eq!(points.len(), rates.len());
        for (p, r) in points.iter().zip(rates) {
            assert_eq!(p.rate_per_s, r);
        }
        // Latency rises with offered load.
        assert!(points[5].report.mean_latency_s > points[0].report.mean_latency_s);
        // Utilization rises monotonically (within simulation noise).
        assert!(points[5].report.server_utilization > points[1].report.server_utilization);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let service = Microservice {
            service: ServiceModel::PerRequest { seconds: 2e-3 },
            servers: 2,
            network_hop_s: 1e-6,
        };
        let a = sweep_load(&[100.0, 300.0], &service, 1000, 9);
        let b = sweep_load(&[100.0, 300.0], &service, 1000, 9);
        assert_eq!(a, b);
    }
}
