//! Datacenter-scale serving simulation for the Brainwave system (paper
//! §I–§II).
//!
//! Stands in for the production datacenter (see `DESIGN.md`): requests
//! stream over the network to hardware microservices backed by NPUs; the
//! contrast between per-request service (the BW discipline) and batching
//! queues (the GPU discipline) is the paper's motivating latency argument.
//!
//! * [`ArrivalProcess`] — Poisson or deterministic request streams;
//! * [`Microservice`] / [`ServiceModel`] — a pool of devices behind a
//!   network hop, serving per-request or in formed batches;
//! * [`NetworkModel`] — the datacenter-network cost model (per-hop
//!   latency, bandwidth, link fault injection and degradation), shared
//!   with the live scatter/gather runtime in `bw-serve`;
//! * [`PreloadModel`] — the weight-preload cost model: what pinning a
//!   model's MRF image onto a worker costs in simulated time, used by
//!   the `bw-fleet` controller;
//! * [`LoadSchedule`] — time-varying (step/ramp) offered-load profiles
//!   for elasticity experiments;
//! * [`simulate`] / [`simulate_pipeline`] — event-driven simulation with
//!   percentile latency and utilization reporting, including linear
//!   multi-FPGA pipelines for partitioned models;
//! * [`sweep_load`] — parallel offered-load sweeps;
//! * [`simulate_pool`] — disaggregated instance pools with client-side
//!   routing policies (§II-A's hardware-microservice pooling);
//! * [`LatencySummary`] / [`nearest_rank`] — the shared latency-statistics
//!   vocabulary, reused by the live serving runtime (`bw-serve`) so
//!   analytical predictions and measured latencies compare directly.
//!
//! # Example
//!
//! ```
//! use bw_system::{simulate, ArrivalProcess, Microservice, ServiceModel};
//!
//! // A BW NPU serving a 2 ms model, one request at a time.
//! let service = Microservice {
//!     service: ServiceModel::PerRequest { seconds: 2e-3 },
//!     servers: 1,
//!     network_hop_s: 10e-6,
//! };
//! let arrivals = ArrivalProcess::Poisson { rate_per_s: 100.0 }.generate(1000, 42);
//! let report = simulate(&arrivals, &service);
//! assert!(report.p99_latency_s < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod pool;
mod preload;
mod schedule;
mod sim;
mod summary;
mod sweep;

pub use net::NetworkModel;
pub use pool::{simulate_pool, PoolReport, Routing};
pub use preload::PreloadModel;
pub use schedule::{LoadPhase, LoadSchedule};
pub use sim::{
    simulate, simulate_pipeline, ArrivalProcess, Microservice, ServiceModel, ServingReport,
};
pub use summary::{nearest_rank, LatencySummary};
pub use sweep::{sweep_load, SweepPoint};
