//! Pooled hardware microservices with client-side routing.
//!
//! §II-A: "accelerators can be logically disaggregated and pooled into
//! instances of hardware microservices ... a given hardware microservice is
//! published to subscribing CPUs in the system and accessed directly
//! through an IP address." A subscribing client routes each request to one
//! instance of the pool; this module compares routing policies over
//! possibly heterogeneous instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sim::{simulate, Microservice, ServingReport};

/// How a client picks an instance for each request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// Cycle through instances in order.
    RoundRobin,
    /// Pick uniformly at random.
    Random,
    /// Pick the instance with the fewest requests in flight (requires the
    /// resource manager to publish occupancy, as the paper's distributed
    /// resource manager does).
    LeastOutstanding,
}

/// A pool-level serving report: the merged client view plus per-instance
/// reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolReport {
    /// Mean end-to-end latency across all requests, seconds.
    pub mean_latency_s: f64,
    /// 99th percentile latency across all requests.
    pub p99_latency_s: f64,
    /// Total completions per second.
    pub throughput_rps: f64,
    /// Per-instance reports, in pool order.
    pub instances: Vec<ServingReport>,
}

/// Simulates a pool of microservice instances under the given routing
/// policy. `arrivals` are absolute seconds, ascending.
///
/// # Panics
///
/// Panics if the pool is empty.
pub fn simulate_pool(
    arrivals: &[f64],
    pool: &[Microservice],
    routing: Routing,
    seed: u64,
) -> PoolReport {
    assert!(!pool.is_empty(), "pool needs at least one instance");

    // Route requests to instances.
    let mut per_instance: Vec<Vec<f64>> = vec![Vec::new(); pool.len()];
    match routing {
        Routing::RoundRobin => {
            for (i, &t) in arrivals.iter().enumerate() {
                per_instance[i % pool.len()].push(t);
            }
        }
        Routing::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            for &t in arrivals {
                per_instance[rng.gen_range(0..pool.len())].push(t);
            }
        }
        Routing::LeastOutstanding => {
            // Track each instance's (approximate) queue by its projected
            // free time, using the instance's nominal per-request time.
            let nominal: Vec<f64> = pool
                .iter()
                .map(|m| match m.service {
                    crate::sim::ServiceModel::PerRequest { seconds } => seconds,
                    crate::sim::ServiceModel::Batched {
                        base_s, per_item_s, ..
                    } => base_s + per_item_s,
                })
                .collect();
            let mut free_at = vec![0.0f64; pool.len()];
            for &t in arrivals {
                let (best, _) = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("non-empty pool");
                per_instance[best].push(t);
                free_at[best] = free_at[best].max(t) + nominal[best] / pool[best].servers as f64;
            }
        }
    }

    let instances: Vec<ServingReport> = per_instance
        .iter()
        .zip(pool)
        .map(|(a, m)| simulate(a, m))
        .collect();

    // Merge the client view.
    let mut latencies: Vec<f64> = instances
        .iter()
        .flat_map(|r| r.sorted_latencies.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let completed: usize = instances.iter().map(|r| r.completed).sum();
    let span = instances
        .iter()
        .flat_map(|r| r.completion_times.iter().copied())
        .fold(0.0f64, f64::max)
        .max(f64::EPSILON);
    PoolReport {
        mean_latency_s: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
        p99_latency_s: crate::summary::nearest_rank(&latencies, 0.99),
        throughput_rps: completed as f64 / span,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ArrivalProcess, ServiceModel};

    fn instance_over(service_s: f64, net: &crate::NetworkModel) -> Microservice {
        // Pool tests model latency-dominated control messages: the
        // payload term is zero and only the hop charge applies.
        Microservice::over_network(ServiceModel::PerRequest { seconds: service_s }, 1, net, 0)
    }

    fn instance(service_s: f64) -> Microservice {
        instance_over(service_s, &crate::NetworkModel::ideal())
    }

    #[test]
    fn pool_scales_capacity() {
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 800.0 }.generate(4000, 1);
        let one = simulate_pool(&arrivals, &[instance(2e-3)], Routing::RoundRobin, 0);
        let four = simulate_pool(&arrivals, &[instance(2e-3); 4], Routing::RoundRobin, 0);
        // One instance is at 160% load; four are at 40%.
        assert!(four.mean_latency_s < one.mean_latency_s / 5.0);
        assert!(four.throughput_rps > one.throughput_rps);
    }

    #[test]
    fn least_outstanding_beats_round_robin_on_heterogeneous_pools() {
        // A pool of one fast and one slow instance: round robin overloads
        // the slow one; occupancy-aware routing shifts load to the fast
        // one.
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 600.0 }.generate(6000, 2);
        let pool = [instance(1e-3), instance(4e-3)];
        let rr = simulate_pool(&arrivals, &pool, Routing::RoundRobin, 0);
        let lo = simulate_pool(&arrivals, &pool, Routing::LeastOutstanding, 0);
        assert!(
            lo.p99_latency_s < rr.p99_latency_s / 2.0,
            "LO p99 {:.4} vs RR p99 {:.4}",
            lo.p99_latency_s,
            rr.p99_latency_s
        );
        // The fast instance takes more of the load under LO.
        assert!(lo.instances[0].completed > lo.instances[1].completed);
    }

    #[test]
    fn network_hop_shifts_pool_latency() {
        // The same lightly-loaded pool behind an ideal network and behind
        // a 500 µs hop: every request pays the hop twice, so the mean
        // shifts by ~1 ms while throughput is unchanged.
        let arrivals = ArrivalProcess::Uniform { interval_s: 5e-3 }.generate(400, 0);
        let hop = crate::NetworkModel::with_hop(500e-6);
        let near = simulate_pool(
            &arrivals,
            &[instance(2e-3), instance(2e-3)],
            Routing::RoundRobin,
            0,
        );
        let far = simulate_pool(
            &arrivals,
            &[instance_over(2e-3, &hop), instance_over(2e-3, &hop)],
            Routing::RoundRobin,
            0,
        );
        let shift = far.mean_latency_s - near.mean_latency_s;
        assert!(
            (shift - 2.0 * 500e-6).abs() < 1e-9,
            "hop shifted mean by {shift:.6}s, expected 1 ms"
        );
        assert_eq!(far.instances[0].completed, near.instances[0].completed);
    }

    #[test]
    fn random_routing_is_deterministic_in_seed() {
        let arrivals = ArrivalProcess::Poisson { rate_per_s: 300.0 }.generate(1000, 3);
        let pool = vec![instance(2e-3); 3];
        let a = simulate_pool(&arrivals, &pool, Routing::Random, 7);
        let b = simulate_pool(&arrivals, &pool, Routing::Random, 7);
        assert_eq!(a, b);
        let c = simulate_pool(&arrivals, &pool, Routing::Random, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn merged_throughput_equals_sum_of_instances() {
        let arrivals = ArrivalProcess::Uniform { interval_s: 1e-3 }.generate(900, 0);
        let pool = vec![instance(2e-3); 3];
        let report = simulate_pool(&arrivals, &pool, Routing::RoundRobin, 0);
        let total: usize = report.instances.iter().map(|r| r.completed).sum();
        assert_eq!(total, 900);
        assert_eq!(report.instances[0].completed, 300);
    }
}
