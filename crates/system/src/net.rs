//! The datacenter network cost model shared by the analytical simulator
//! and the live serving runtime.
//!
//! §II-A reaches hardware microservices "directly through an IP address"
//! over the datacenter network, and §I's latency argument only holds if
//! that network is accounted for. [`NetworkModel`] is the single
//! vocabulary both layers use: `bw-system` derives a
//! [`Microservice`](crate::Microservice)'s `network_hop_s` from it
//! (see [`Microservice::over_network`](crate::Microservice::over_network)),
//! and `bw-serve`'s scatter/gather coordinator charges each shard leg
//! with [`NetworkModel::one_way_s`] and consults [`NetworkModel::link_up`]
//! for injected link faults.

use serde::{Deserialize, Serialize};

/// Per-hop latency + bandwidth + optional link fault injection.
///
/// A transfer of `b` bytes over one hop costs
/// `hop_latency_s + b / bandwidth_bytes_per_s` one way; a zero (or
/// non-finite) bandwidth means "latency only" — the serialization term is
/// dropped. Links are identified by a small integer (the serving runtime
/// uses the worker id); [`NetworkModel::fail_link`] marks a link down for
/// fault injection. The model is `Copy` on purpose — it rides inside
/// configuration structs — so the fault set is a 64-bit mask: links 64 and
/// above are always up.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way per-message latency of a hop, in seconds.
    pub hop_latency_s: f64,
    /// Link bandwidth in bytes per second. `0.0` (the default) models an
    /// infinitely fast link: only `hop_latency_s` is charged.
    pub bandwidth_bytes_per_s: f64,
    /// Bitmask of links that are down (bit `i` = link `i`). Normally 0;
    /// set via [`NetworkModel::fail_link`] for fault injection.
    pub down_links: u64,
    /// Bitmask of links that are up but slow (bit `i` = link `i`).
    /// Transfers over a degraded link cost
    /// [`degraded_factor`](NetworkModel::degraded_factor) times the
    /// healthy price. Set via [`NetworkModel::degrade_link`].
    pub degraded_links: u64,
    /// Cost multiplier applied to degraded links (≥ 1.0; default 1.0).
    pub degraded_factor: f64,
}

impl Default for NetworkModel {
    fn default() -> NetworkModel {
        NetworkModel {
            hop_latency_s: 0.0,
            bandwidth_bytes_per_s: 0.0,
            down_links: 0,
            degraded_links: 0,
            // A factor-of-one slowdown, so a degraded mask without an
            // explicit factor changes nothing.
            degraded_factor: 1.0,
        }
    }
}

impl NetworkModel {
    /// The ideal network: zero latency, infinite bandwidth, all links up.
    /// This is also the [`Default`], so existing single-host setups keep
    /// their exact behavior.
    pub fn ideal() -> NetworkModel {
        NetworkModel::default()
    }

    /// A latency-only network with the given one-way hop cost.
    pub fn with_hop(hop_latency_s: f64) -> NetworkModel {
        NetworkModel {
            hop_latency_s,
            ..NetworkModel::default()
        }
    }

    /// Sets the link bandwidth (builder style).
    pub fn bandwidth(mut self, bytes_per_s: f64) -> NetworkModel {
        self.bandwidth_bytes_per_s = bytes_per_s;
        self
    }

    /// Marks `link` down (builder style). Links ≥ 64 cannot be failed.
    pub fn fail_link(mut self, link: usize) -> NetworkModel {
        if link < 64 {
            self.down_links |= 1 << link;
        }
        self
    }

    /// Restores `link` to full health: clears both the down and the
    /// degraded bit (builder style).
    pub fn restore_link(mut self, link: usize) -> NetworkModel {
        if link < 64 {
            self.down_links &= !(1 << link);
            self.degraded_links &= !(1 << link);
        }
        self
    }

    /// Marks `link` degraded — up, but `factor` times as expensive
    /// (builder style). The factor is shared by every degraded link and
    /// clamped to at least 1.0. Links ≥ 64 cannot be degraded.
    pub fn degrade_link(mut self, link: usize, factor: f64) -> NetworkModel {
        if link < 64 {
            self.degraded_links |= 1 << link;
            self.degraded_factor = if factor.is_finite() {
                factor.max(1.0)
            } else {
                1.0
            };
        }
        self
    }

    /// Whether `link` is up. Links ≥ 64 are always up.
    pub fn link_up(&self, link: usize) -> bool {
        link >= 64 || self.down_links & (1 << link) == 0
    }

    /// Whether `link` is marked degraded. Links ≥ 64 never are.
    pub fn link_degraded(&self, link: usize) -> bool {
        link < 64 && self.degraded_links & (1 << link) != 0
    }

    /// The one-way cost of moving `payload_bytes` over one hop:
    /// `hop_latency_s` plus the serialization time at the configured
    /// bandwidth (zero if bandwidth is unset).
    pub fn one_way_s(&self, payload_bytes: usize) -> f64 {
        let serial = if self.bandwidth_bytes_per_s > 0.0 && self.bandwidth_bytes_per_s.is_finite() {
            payload_bytes as f64 / self.bandwidth_bytes_per_s
        } else {
            0.0
        };
        self.hop_latency_s + serial
    }

    /// The one-way cost of moving `payload_bytes` over `link`
    /// specifically: the healthy [`NetworkModel::one_way_s`] price,
    /// multiplied by [`degraded_factor`](NetworkModel::degraded_factor)
    /// if the link is marked degraded.
    pub fn one_way_on(&self, link: usize, payload_bytes: usize) -> f64 {
        let base = self.one_way_s(payload_bytes);
        if self.link_degraded(link) {
            base * self.degraded_factor.max(1.0)
        } else {
            base
        }
    }

    /// The round-trip cost of a request/response pair of the given sizes.
    pub fn round_trip_s(&self, request_bytes: usize, response_bytes: usize) -> f64 {
        self.one_way_s(request_bytes) + self.one_way_s(response_bytes)
    }

    /// Whether the model charges anything at all — `false` for
    /// [`NetworkModel::ideal`], letting hot paths skip the charge.
    pub fn is_ideal(&self) -> bool {
        self.hop_latency_s == 0.0 && self.bandwidth_bytes_per_s == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_charges_nothing() {
        let net = NetworkModel::ideal();
        assert!(net.is_ideal());
        assert_eq!(net.one_way_s(1 << 20), 0.0);
        assert_eq!(net.round_trip_s(64, 1 << 20), 0.0);
        assert!(net.link_up(0));
    }

    #[test]
    fn latency_and_bandwidth_compose() {
        let net = NetworkModel::with_hop(10e-6).bandwidth(1e9);
        assert!(!net.is_ideal());
        // 4 KiB at 1 GB/s = 4.096 µs serialization on top of the hop.
        let t = net.one_way_s(4096);
        assert!((t - (10e-6 + 4096.0 / 1e9)).abs() < 1e-12);
        // Round trip with an empty response still pays the hop twice.
        let rt = net.round_trip_s(4096, 0);
        assert!((rt - (t + 10e-6)).abs() < 1e-12);
    }

    #[test]
    fn zero_bandwidth_means_latency_only() {
        let net = NetworkModel::with_hop(5e-6);
        assert_eq!(net.one_way_s(usize::MAX / 2), 5e-6);
    }

    #[test]
    fn link_faults_are_per_link_and_bounded() {
        let net = NetworkModel::ideal().fail_link(2).fail_link(63);
        assert!(net.link_up(0));
        assert!(!net.link_up(2));
        assert!(!net.link_up(63));
        // Out-of-mask links are always up, and failing them is a no-op.
        let net = net.fail_link(64);
        assert!(net.link_up(64));
        assert!(net.link_up(usize::MAX));
    }

    #[test]
    fn degraded_links_multiply_the_cost() {
        let net = NetworkModel::with_hop(10e-6)
            .bandwidth(1e9)
            .degrade_link(3, 4.0);
        assert!(net.link_up(3), "degraded is not down");
        assert!(net.link_degraded(3));
        assert!(!net.link_degraded(0));
        let healthy = net.one_way_on(0, 4096);
        let slow = net.one_way_on(3, 4096);
        assert!((healthy - net.one_way_s(4096)).abs() < 1e-15);
        assert!((slow - 4.0 * healthy).abs() < 1e-12, "{slow} vs {healthy}");
    }

    #[test]
    fn restore_link_clears_both_fault_kinds() {
        let net = NetworkModel::ideal().fail_link(1).degrade_link(2, 8.0);
        let net = net.restore_link(1).restore_link(2);
        assert!(net.link_up(1));
        assert!(!net.link_degraded(2));
    }

    #[test]
    fn degrade_factor_is_clamped_sane() {
        let net = NetworkModel::with_hop(1e-6).degrade_link(0, 0.25);
        // Sub-unity factors would make a degraded link *faster*; clamp.
        assert_eq!(net.degraded_factor, 1.0);
        assert_eq!(net.one_way_on(0, 0), net.one_way_s(0));
        let nan = NetworkModel::with_hop(1e-6).degrade_link(0, f64::NAN);
        assert_eq!(nan.degraded_factor, 1.0);
    }
}
