//! Time-varying offered-load schedules: step and ramp profiles over the
//! Poisson arrival process.
//!
//! A single fixed rate (see [`ArrivalProcess`](crate::ArrivalProcess))
//! cannot exercise elasticity: the interesting question for a fleet
//! controller is what happens to tail latency *while the offered load is
//! moving*. [`LoadSchedule`] chains [`LoadPhase`]s — each a constant or
//! linearly ramping rate held for a duration — and generates one arrival
//! stream for the whole profile via thinning (Lewis–Shedler: draw a
//! homogeneous Poisson process at the peak rate, accept each point with
//! probability `rate(t) / peak`), which keeps the stream exact for any
//! piecewise-linear rate function.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One phase of an offered-load profile: the rate moves linearly from
/// `start_rps` to `end_rps` over `duration_s` (a constant phase has the
/// two equal).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadPhase {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Offered rate at the start of the phase (requests per second).
    pub start_rps: f64,
    /// Offered rate at the end of the phase.
    pub end_rps: f64,
}

/// A piecewise-linear offered-load profile built from chained phases.
///
/// ```
/// use bw_system::LoadSchedule;
///
/// // 200 rps for 1 s, step to 800 rps for 1 s, ramp back down over 2 s.
/// let sched = LoadSchedule::constant(200.0, 1.0)
///     .then_step(800.0, 1.0)
///     .then_ramp(200.0, 2.0);
/// assert_eq!(sched.total_duration_s(), 4.0);
/// assert_eq!(sched.rate_at(1.5), 800.0);
/// let arrivals = sched.generate(42);
/// assert!(arrivals.windows(2).all(|w| w[1] > w[0]));
/// // ~2000 expected arrivals; Poisson noise stays within a few percent.
/// let n = arrivals.len() as f64;
/// assert!((n - sched.expected_requests()).abs() < 0.2 * sched.expected_requests());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadSchedule {
    /// The phases, played back to back starting at t = 0.
    pub phases: Vec<LoadPhase>,
}

impl LoadSchedule {
    /// A single constant-rate phase.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative, non-finite, or the duration is
    /// not positive.
    pub fn constant(rate_per_s: f64, duration_s: f64) -> LoadSchedule {
        LoadSchedule { phases: Vec::new() }.push_phase(rate_per_s, rate_per_s, duration_s)
    }

    /// Appends a constant phase at a new rate (a step change).
    pub fn then_step(self, rate_per_s: f64, duration_s: f64) -> LoadSchedule {
        self.push_phase(rate_per_s, rate_per_s, duration_s)
    }

    /// Appends a linear ramp from the current ending rate to
    /// `rate_per_s`.
    pub fn then_ramp(self, rate_per_s: f64, duration_s: f64) -> LoadSchedule {
        let from = self.phases.last().map_or(rate_per_s, |p| p.end_rps);
        self.push_phase(from, rate_per_s, duration_s)
    }

    fn push_phase(mut self, start_rps: f64, end_rps: f64, duration_s: f64) -> LoadSchedule {
        assert!(
            start_rps >= 0.0 && start_rps.is_finite() && end_rps >= 0.0 && end_rps.is_finite(),
            "rates must be finite and non-negative"
        );
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "duration must be positive"
        );
        self.phases.push(LoadPhase {
            duration_s,
            start_rps,
            end_rps,
        });
        self
    }

    /// Total profile length in seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The offered rate at absolute time `t` (0 outside the profile).
    pub fn rate_at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let mut t0 = 0.0;
        for p in &self.phases {
            if t < t0 + p.duration_s {
                let frac = (t - t0) / p.duration_s;
                return p.start_rps + (p.end_rps - p.start_rps) * frac;
            }
            t0 += p.duration_s;
        }
        0.0
    }

    /// The peak rate anywhere in the profile.
    pub fn peak_rps(&self) -> f64 {
        self.phases
            .iter()
            .flat_map(|p| [p.start_rps, p.end_rps])
            .fold(0.0, f64::max)
    }

    /// The expected number of arrivals over the whole profile — the
    /// integral of the rate function (exact for piecewise-linear rates).
    pub fn expected_requests(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| 0.5 * (p.start_rps + p.end_rps) * p.duration_s)
            .sum()
    }

    /// Generates the arrival timestamps (seconds, strictly ascending) of
    /// one inhomogeneous-Poisson realization of the profile, by
    /// thinning a homogeneous process at the peak rate. The count is
    /// itself Poisson around [`LoadSchedule::expected_requests`].
    pub fn generate(&self, seed: u64) -> Vec<f64> {
        let peak = self.peak_rps();
        let horizon = self.total_duration_s();
        if peak <= 0.0 || horizon <= 0.0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.expected_requests().ceil() as usize + 16);
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / peak;
            if t >= horizon {
                break;
            }
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept * peak < self.rate_at(t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_at_follows_steps_and_ramps() {
        let s = LoadSchedule::constant(100.0, 1.0)
            .then_step(400.0, 1.0)
            .then_ramp(0.0, 2.0);
        assert_eq!(s.rate_at(-1.0), 0.0);
        assert_eq!(s.rate_at(0.5), 100.0);
        assert_eq!(s.rate_at(1.5), 400.0);
        // Midway down the ramp: 400 → 0 over [2, 4), so t = 3 gives 200.
        assert!((s.rate_at(3.0) - 200.0).abs() < 1e-9);
        assert_eq!(s.rate_at(4.5), 0.0);
        assert_eq!(s.peak_rps(), 400.0);
        // Integral: 100 + 400 + ½·400·2 = 900.
        assert!((s.expected_requests() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn generated_counts_track_the_profile() {
        let s = LoadSchedule::constant(200.0, 2.0).then_step(1000.0, 2.0);
        let a = s.generate(7);
        assert!(a.windows(2).all(|w| w[1] > w[0]), "strictly ascending");
        assert!(a.iter().all(|&t| (0.0..4.0).contains(&t)));
        let low = a.iter().filter(|&&t| t < 2.0).count() as f64;
        let high = a.len() as f64 - low;
        // 400 vs 2000 expected; allow generous Poisson noise.
        assert!((low - 400.0).abs() < 100.0, "low-phase count {low}");
        assert!((high - 2000.0).abs() < 250.0, "high-phase count {high}");
    }

    #[test]
    fn ramp_shifts_mass_toward_the_loaded_end() {
        let s = LoadSchedule::constant(0.0, 0.5).then_ramp(2000.0, 4.0);
        let a = s.generate(11);
        let mid = 0.5 + 2.0;
        let early = a.iter().filter(|&&t| t < mid).count();
        let late = a.len() - early;
        assert!(
            late > 2 * early,
            "ramp should back-load arrivals: {early} vs {late}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = LoadSchedule::constant(500.0, 1.0);
        assert_eq!(s.generate(3), s.generate(3));
        assert_ne!(s.generate(3), s.generate(4));
    }

    #[test]
    fn constant_schedule_matches_arrival_process_rate() {
        let s = LoadSchedule::constant(1000.0, 10.0);
        let a = s.generate(42);
        let rate = a.len() as f64 / 10.0;
        assert!((rate - 1000.0).abs() < 60.0, "{rate}");
    }
}
