//! Software IEEE 754 binary16 ("half precision") floating point.
//!
//! The Brainwave multifunction units execute point-wise vector operations and
//! activation functions in float16 (§VI: "secondary operations … still
//! execute as float16 on hardware"). This module provides a from-scratch
//! software binary16: the bit-level storage format, correctly rounded
//! conversions to and from `f32` (round-to-nearest-even, subnormal, infinity
//! and NaN handling), and arithmetic defined as the correctly rounded result
//! of the corresponding `f32` operation — the same behaviour a hardware FP16
//! unit with an internal wide datapath exhibits.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An IEEE 754 binary16 floating point number (1 sign, 5 exponent, 10
/// mantissa bits), stored as its raw bit pattern.
///
/// Arithmetic operations round to nearest-even, matching a hardware float16
/// unit. All operations saturate to ±infinity on overflow and flush to
/// (signed) zero on underflow past the smallest subnormal, exactly as IEEE
/// 754 prescribes.
///
/// # Example
///
/// ```
/// use bw_bfp::F16;
///
/// let a = F16::from_f32(1.5);
/// let b = F16::from_f32(2.25);
/// assert_eq!((a + b).to_f32(), 3.75);
/// ```
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
pub struct F16(u16);

const F16_SIGN_MASK: u16 = 0x8000;
const F16_EXP_MASK: u16 = 0x7C00;
const F16_MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// The largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// The smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// The difference between 1.0 and the next larger representable value.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable `F16`
    /// (round-to-nearest-even).
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness (quiet bit set).
            return if man == 0 {
                F16(sign | F16_EXP_MASK)
            } else {
                F16(sign | F16_EXP_MASK | 0x0200 | ((man >> 13) as u16 & F16_MAN_MASK))
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows f16 range: round to infinity.
            return F16(sign | F16_EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal f16 range. 23-bit mantissa -> 10-bit with RNE.
            let half_exp = (unbiased + 15) as u16;
            let mut half_man = (man >> 13) as u16;
            let round_bits = man & 0x1FFF;
            // Round to nearest even on the 13 dropped bits.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                half_man += 1;
            }
            // Mantissa carry can ripple into the exponent; the bit layout
            // makes the carry arithmetic fall out naturally.
            let combined = ((half_exp << 10) | (half_man & F16_MAN_MASK))
                + if half_man > F16_MAN_MASK { 0x0400 } else { 0 };
            if combined >= F16_EXP_MASK {
                return F16(sign | F16_EXP_MASK);
            }
            return F16(sign | combined);
        }
        if unbiased >= -25 {
            // Subnormal f16 range: shift in the implicit leading one.
            let full_man = man | 0x80_0000;
            let shift = (-14 - unbiased + 13) as u32;
            let mut half_man = (full_man >> shift) as u16;
            let dropped = full_man & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            if dropped > halfway || (dropped == halfway && (half_man & 1) == 1) {
                half_man += 1;
            }
            // A carry out of the subnormal mantissa correctly lands in the
            // smallest normal encoding.
            return F16(sign | half_man);
        }
        // Underflows to signed zero.
        F16(sign)
    }

    /// Converts this `F16` to `f32` exactly (every binary16 value is
    /// representable in binary32).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & F16_SIGN_MASK) << 16;
        let exp = (self.0 & F16_EXP_MASK) >> 10;
        let man = u32::from(self.0 & F16_MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign
                } else {
                    // Subnormal: value = man * 2^-24. Normalize around the
                    // mantissa's most significant bit at position `p`.
                    let p = 31 - man.leading_zeros(); // 0..=9
                    let exp32 = 103 + p; // p - 24 + 127
                    let man32 = (man << (23 - p)) & 0x7F_FFFF;
                    sign | (exp32 << 23) | man32
                }
            }
            0x1F => sign | 0x7F80_0000 | (man << 13),
            _ => {
                let exp32 = u32::from(exp) + 127 - 15;
                sign | (exp32 << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & F16_EXP_MASK) == F16_EXP_MASK && (self.0 & F16_MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !F16_SIGN_MASK) == F16_EXP_MASK
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & F16_EXP_MASK) != F16_EXP_MASK
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaNs with
    /// the sign bit set).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & F16_SIGN_MASK) != 0
    }

    /// The absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !F16_SIGN_MASK)
    }

    /// The larger of two values, propagating NaN like `f32::max` does not:
    /// if either operand is NaN the result is NaN, matching the strict
    /// hardware comparator used in the MFU `vv_max` unit.
    pub fn max(self, other: Self) -> Self {
        if self.is_nan() || other.is_nan() {
            return F16::NAN;
        }
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// The logistic sigmoid `1 / (1 + e^-x)`, computed in f32 and rounded to
    /// f16 — the behaviour of the MFU sigmoid unit, which uses a piecewise
    /// interpolation accurate to the output precision.
    pub fn sigmoid(self) -> Self {
        let x = self.to_f32();
        F16::from_f32(1.0 / (1.0 + (-x).exp()))
    }

    /// The hyperbolic tangent, computed in f32 and rounded to f16.
    pub fn tanh(self) -> Self {
        F16::from_f32(self.to_f32().tanh())
    }

    /// The rectified linear unit `max(x, 0)`; NaN inputs produce NaN.
    pub fn relu(self) -> Self {
        if self.is_nan() {
            return F16::NAN;
        }
        if self.is_sign_negative() && self.0 != F16_SIGN_MASK {
            // Negative non-zero flushes to +0; -0.0 also maps to +0.
            F16::ZERO
        } else if self.0 == F16_SIGN_MASK {
            F16::ZERO
        } else {
            self
        }
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        // IEEE semantics: NaN != NaN, -0.0 == +0.0.
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

macro_rules! f16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

f16_binop!(Add, add, +);
f16_binop!(Sub, sub, -);
f16_binop!(Mul, mul, *);
f16_binop!(Div, div, /);

impl std::ops::Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ F16_SIGN_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i}");
        }
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_sign_negative());
        // 65504 is the max finite value; 65519.99 still rounds down to it.
        assert_eq!(F16::from_f32(65504.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_flushes_to_signed_zero() {
        let tiny = 2.0f32.powi(-26); // half the smallest subnormal
        assert_eq!(F16::from_f32(tiny * 0.99).to_bits(), 0);
        assert_eq!(F16::from_f32(-tiny * 0.99).to_bits(), F16_SIGN_MASK);
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest subnormal is 2^-24.
        let s = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(s).to_f32(), s);
        assert_eq!(F16::from_f32(3.0 * s).to_f32(), 3.0 * s);
        let largest_subnormal = 1023.0 * s;
        assert_eq!(F16::from_f32(largest_subnormal).to_f32(), largest_subnormal);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10; RNE keeps
        // the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks the
        // even mantissa 1+2^-9.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Just above halfway rounds up.
        assert_eq!(
            F16::from_f32(halfway + 2.0f32.powi(-20)).to_f32(),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn nan_propagates_through_conversion() {
        let nan = F16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn arithmetic_matches_f32_reference() {
        let cases = [
            (1.5f32, 2.25f32),
            (-4.0, 0.5),
            (1000.0, 0.125),
            (0.1, 0.2),
            (-0.0, 0.0),
        ];
        for (a, b) in cases {
            let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
            assert_eq!(
                (ha + hb).to_f32(),
                F16::from_f32(ha.to_f32() + hb.to_f32()).to_f32()
            );
            assert_eq!(
                (ha * hb).to_f32(),
                F16::from_f32(ha.to_f32() * hb.to_f32()).to_f32()
            );
        }
    }

    #[test]
    fn saturating_add_overflow() {
        let big = F16::from_f32(60000.0);
        assert!((big + big).is_infinite());
    }

    #[test]
    fn activation_functions() {
        assert_eq!(F16::ZERO.sigmoid().to_f32(), 0.5);
        assert_eq!(F16::ZERO.tanh().to_f32(), 0.0);
        assert_eq!(F16::from_f32(-3.0).relu().to_f32(), 0.0);
        assert_eq!(F16::from_f32(3.0).relu().to_f32(), 3.0);
        assert!(F16::from_f32(10.0).sigmoid().to_f32() > 0.9999);
        assert!(F16::from_f32(-10.0).sigmoid().to_f32() < 0.0001);
        assert!((F16::from_f32(1.0).tanh().to_f32() - 0.7617).abs() < 1e-3);
        assert!(F16::NAN.relu().is_nan());
    }

    #[test]
    fn max_propagates_nan() {
        assert!(F16::NAN.max(F16::ONE).is_nan());
        assert!(F16::ONE.max(F16::NAN).is_nan());
        assert_eq!(F16::ONE.max(F16::ZERO), F16::ONE);
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert_eq!((-F16::ZERO).to_bits(), F16_SIGN_MASK);
        assert!((-F16::NAN).is_nan());
    }

    #[test]
    fn ordering_matches_f32() {
        let a = F16::from_f32(1.0);
        let b = F16::from_f32(2.0);
        assert!(a < b);
        assert!(b > a);
        assert!(F16::NAN.partial_cmp(&a).is_none());
    }

    #[test]
    fn exhaustive_round_trip_through_f32() {
        // Every one of the 65536 bit patterns must survive a trip through
        // f32 and back (modulo NaN payload normalization).
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let rt = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(rt.is_nan());
            } else {
                assert_eq!(rt.to_bits(), bits, "bit pattern {bits:#06x}");
            }
        }
    }
}
