//! Shared-exponent quantized vectors.

use serde::{Deserialize, Serialize};

use crate::format::BfpFormat;

/// Rounding discipline for quantization.
///
/// Serving uses round-to-nearest; BFP *training and fine-tuning* (the
/// paper's "few epochs of fine-tuning", §VI) conventionally uses stochastic
/// rounding so quantization error is unbiased and gradients survive narrow
/// mantissas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rounding {
    /// Round to the nearest representable mantissa (ties away from zero).
    Nearest,
    /// Round up or down with probability proportional to the remainder,
    /// deterministically derived from the given seed.
    Stochastic(
        /// Seed for the quantizer's internal generator.
        u64,
    ),
}

/// A vector quantized to block floating point.
///
/// The vector is split into chunks of [`BfpFormat::block_size`] elements;
/// each chunk shares one exponent while every element keeps a private sign
/// and narrow mantissa. This mirrors the MVM datapath (§VI): "a single 5-bit
/// exponent per 128 independent signs and mantissas". Dot products between
/// two blocks execute as pure integer multiply-accumulates per chunk, with
/// exponents recombined once per chunk — exactly the arithmetic a shared-
/// exponent hardware MAC array performs, which is what makes the FPGA
/// implementation cheap.
///
/// # Example
///
/// ```
/// use bw_bfp::{BfpBlock, BfpFormat};
///
/// let fmt = BfpFormat::BFP_1S_5E_5M;
/// let a = BfpBlock::quantize(&[1.0, 2.0, 3.0], fmt);
/// let b = BfpBlock::quantize(&[1.0, 1.0, 1.0], fmt);
/// let dot = a.dot(&b).expect("same length and block size");
/// assert!((dot - 6.0).abs() < 0.2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BfpBlock {
    format: BfpFormat,
    /// Signed mantissas, one per element; magnitude bounded by
    /// `format.max_mantissa()`.
    mantissas: Vec<i32>,
    /// One unbiased shared exponent per chunk of `format.block_size()`.
    exponents: Vec<i32>,
}

/// Error produced by [`BfpBlock::dot`] when the operands are incompatible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DotError {
    /// Operand lengths differ.
    LengthMismatch {
        /// Length of the left operand.
        lhs: usize,
        /// Length of the right operand.
        rhs: usize,
    },
    /// Operand chunk sizes differ, so exponent groups do not line up.
    BlockSizeMismatch {
        /// Chunk size of the left operand.
        lhs: u32,
        /// Chunk size of the right operand.
        rhs: u32,
    },
}

impl std::fmt::Display for DotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DotError::LengthMismatch { lhs, rhs } => {
                write!(f, "dot product length mismatch: {lhs} vs {rhs}")
            }
            DotError::BlockSizeMismatch { lhs, rhs } => {
                write!(f, "dot product block size mismatch: {lhs} vs {rhs}")
            }
        }
    }
}

impl std::error::Error for DotError {}

impl BfpBlock {
    /// Quantizes a slice of `f32` values into BFP.
    ///
    /// Each chunk's shared exponent is the smallest exponent that represents
    /// the chunk's largest magnitude without mantissa overflow, clamped to
    /// the format's exponent range (saturating element mantissas if the
    /// clamp binds). Non-finite inputs are treated as the format's largest
    /// magnitude, mirroring the saturating behaviour of the hardware
    /// quantizer.
    pub fn quantize(values: &[f32], format: BfpFormat) -> Self {
        Self::quantize_with_rounding(values, format, Rounding::Nearest)
    }

    /// Quantizes with an explicit [`Rounding`] discipline.
    pub fn quantize_with_rounding(values: &[f32], format: BfpFormat, rounding: Rounding) -> Self {
        let mut mantissas = Vec::with_capacity(values.len());
        let mut exponents =
            Vec::with_capacity(values.len().div_ceil((format.block_size() as usize).max(1)));
        quantize_append(values, format, rounding, &mut mantissas, &mut exponents);
        BfpBlock {
            format,
            mantissas,
            exponents,
        }
    }

    /// An empty block in the given format, useful as a reusable scratch
    /// target for [`BfpBlock::quantize_into`].
    pub fn empty(format: BfpFormat) -> Self {
        BfpBlock {
            format,
            mantissas: Vec::new(),
            exponents: Vec::new(),
        }
    }

    /// Quantizes into an existing block, reusing its mantissa/exponent
    /// allocations. Produces exactly the same result as
    /// [`BfpBlock::quantize_with_rounding`].
    pub fn quantize_into(values: &[f32], format: BfpFormat, rounding: Rounding, out: &mut Self) {
        out.format = format;
        out.mantissas.clear();
        out.exponents.clear();
        quantize_append(
            values,
            format,
            rounding,
            &mut out.mantissas,
            &mut out.exponents,
        );
    }

    /// The format this block was quantized with.
    #[inline]
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    /// Returns `true` if the block holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }

    /// The raw signed mantissas.
    #[inline]
    pub fn mantissas(&self) -> &[i32] {
        &self.mantissas
    }

    /// The unbiased shared exponents, one per chunk.
    #[inline]
    pub fn exponents(&self) -> &[i32] {
        &self.exponents
    }

    /// Reconstructs the approximate `f32` values.
    pub fn dequantize(&self) -> Vec<f32> {
        let chunk = self.format.block_size() as usize;
        let m = i32::from(self.format.mantissa_bits());
        let mut out = Vec::with_capacity(self.len());
        for (gi, group) in self.mantissas.chunks(chunk).enumerate() {
            let scale = exp2(self.exponents[gi] - (m - 1));
            for &q in group {
                out.push((f64::from(q) * scale) as f32);
            }
        }
        out
    }

    /// Dot product of two BFP vectors using integer MACs per chunk.
    ///
    /// This is the fast kernel: within each chunk the products `q_a * q_b`
    /// accumulate in a 32-bit integer when the formats guarantee no overflow
    /// (`block_size * max_mantissa_a * max_mantissa_b <= i32::MAX`, true for
    /// every narrow-mantissa format the NPU uses), falling back to 64-bit
    /// otherwise; the chunk sum is then scaled once by the combined exponents
    /// and accumulated across chunks in double precision. Integer addition is
    /// exact and the per-chunk scale is an exact power of two, so the result
    /// is bit-identical to [`BfpBlock::dot_naive`] — the differential
    /// property tests pin this.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if the operands differ in length or chunk size.
    pub fn dot(&self, other: &BfpBlock) -> Result<f32, DotError> {
        self.check_dot_operand(other)?;
        Ok(dot_flat(
            &self.mantissas,
            &self.exponents,
            self.format,
            &other.mantissas,
            &other.exponents,
            other.format,
        ))
    }

    /// Reference dot product: element-by-element 64-bit accumulation per
    /// chunk, retained verbatim as the oracle for the fast kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if the operands differ in length or chunk size.
    pub fn dot_naive(&self, other: &BfpBlock) -> Result<f32, DotError> {
        self.check_dot_operand(other)?;
        Ok(dot_flat_naive(
            &self.mantissas,
            &self.exponents,
            self.format,
            &other.mantissas,
            &other.exponents,
            other.format,
        ))
    }

    fn check_dot_operand(&self, other: &BfpBlock) -> Result<(), DotError> {
        if self.len() != other.len() {
            return Err(DotError::LengthMismatch {
                lhs: self.len(),
                rhs: other.len(),
            });
        }
        if self.format.block_size() != other.format.block_size() {
            return Err(DotError::BlockSizeMismatch {
                lhs: self.format.block_size(),
                rhs: other.format.block_size(),
            });
        }
        Ok(())
    }

    /// Convenience: quantizes `other` with this block's format, then takes
    /// the dot product.
    ///
    /// # Errors
    ///
    /// Returns [`DotError::LengthMismatch`] if the lengths differ.
    pub fn dot_f32(&self, other: &[f32]) -> Result<f32, DotError> {
        self.dot(&BfpBlock::quantize(other, self.format))
    }
}

/// `2.0^e` as an `f64` without going through `powi` (exact for the exponent
/// ranges BFP uses).
#[inline]
pub(crate) fn exp2(e: i32) -> f64 {
    f64::from_bits(((1023 + i64::from(e)) as u64) << 52)
}

/// Quantization core shared by [`BfpBlock`] and `BfpMatrix`: appends one
/// chunk-exponent per `block_size` group and one mantissa per element.
pub(crate) fn quantize_append(
    values: &[f32],
    format: BfpFormat,
    rounding: Rounding,
    mantissas: &mut Vec<i32>,
    exponents: &mut Vec<i32>,
) {
    // A splitmix64 generator keeps stochastic rounding dependency-free,
    // deterministic in the seed, and well-distributed even for small,
    // consecutive seeds.
    let mut rng_state = match rounding {
        Rounding::Nearest => 0u64,
        Rounding::Stochastic(seed) => seed,
    };
    let mut next_unit = move || -> f64 {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let chunk = format.block_size() as usize;
    let max_man = format.max_mantissa();
    let (exp_min, exp_max) = format.exponent_range();
    mantissas.reserve(values.len());
    exponents.reserve(values.len().div_ceil(chunk.max(1)));

    for group in values.chunks(chunk) {
        let amax = group
            .iter()
            .map(|v| if v.is_finite() { v.abs() } else { f32::MAX })
            .fold(0.0f32, f32::max);
        let mut e = if amax == 0.0 {
            exp_min
        } else {
            amax.log2().floor() as i32
        };
        // Rounding the largest element may overflow the mantissa field
        // (e.g. 3.9 with 2-bit mantissas); bump the exponent if so.
        let m = i32::from(format.mantissa_bits());
        loop {
            let scale = exp2(e - (m - 1));
            let q_max = (f64::from(amax) / scale).round() as i64;
            if q_max <= i64::from(max_man) || e >= exp_max {
                break;
            }
            e += 1;
        }
        let e = e.clamp(exp_min, exp_max);
        let scale = exp2(e - (m - 1));
        for &v in group {
            let v = if v.is_finite() {
                v
            } else if v.is_sign_negative() {
                f32::MIN
            } else {
                f32::MAX
            };
            let exact = f64::from(v) / scale;
            let q = match rounding {
                Rounding::Nearest => exact.round() as i64,
                Rounding::Stochastic(_) => {
                    let floor = exact.floor();
                    let frac = exact - floor;
                    floor as i64 + i64::from(next_unit() < frac)
                }
            };
            let q = q.clamp(-i64::from(max_man), i64::from(max_man));
            mantissas.push(q as i32);
        }
        exponents.push(e);
    }
}

/// Whether per-chunk MACs for a format pair fit a 32-bit accumulator:
/// `chunk_len * max_a * max_b` bounds the magnitude of any chunk sum because
/// quantized mantissas are clamped to `max_mantissa`.
#[inline]
fn macs_fit_i32(a_fmt: BfpFormat, b_fmt: BfpFormat, chunk_len: usize) -> bool {
    let max_a = i64::from(a_fmt.max_mantissa());
    let max_b = i64::from(b_fmt.max_mantissa());
    (chunk_len as i64)
        .saturating_mul(max_a)
        .saturating_mul(max_b)
        <= i64::from(i32::MAX)
}

/// Fast flat dot kernel over pre-extracted mantissa/exponent slabs.
///
/// Callers must have validated that lengths and block sizes agree. The chunk
/// iteration order and the per-chunk exponent recombination expression are
/// identical to [`dot_flat_naive`], and integer accumulation is exact, so the
/// two kernels return bit-identical `f32` results.
pub(crate) fn dot_flat(
    a_man: &[i32],
    a_exp: &[i32],
    a_fmt: BfpFormat,
    b_man: &[i32],
    b_exp: &[i32],
    b_fmt: BfpFormat,
) -> f32 {
    let chunk = (a_fmt.block_size() as usize).max(1);
    let ma = i32::from(a_fmt.mantissa_bits());
    let mb = i32::from(b_fmt.mantissa_bits());
    let chunk_len = chunk.min(a_man.len());
    let mut total = 0.0f64;
    if macs_fit_i32(a_fmt, b_fmt, chunk_len) {
        for (gi, (ga, gb)) in a_man.chunks(chunk).zip(b_man.chunks(chunk)).enumerate() {
            let mut acc: i32 = 0;
            for (&a, &b) in ga.iter().zip(gb) {
                acc += a * b;
            }
            let scale = exp2(a_exp[gi] - (ma - 1) + b_exp[gi] - (mb - 1));
            total += f64::from(acc) * scale;
        }
    } else {
        for (gi, (ga, gb)) in a_man.chunks(chunk).zip(b_man.chunks(chunk)).enumerate() {
            let mut acc: i64 = 0;
            for (&a, &b) in ga.iter().zip(gb) {
                acc += i64::from(a) * i64::from(b);
            }
            let scale = exp2(a_exp[gi] - (ma - 1) + b_exp[gi] - (mb - 1));
            total += acc as f64 * scale;
        }
    }
    total as f32
}

/// Reference flat dot kernel: the original element-by-element 64-bit
/// accumulation, kept as the oracle the fast kernel is tested against.
pub(crate) fn dot_flat_naive(
    a_man: &[i32],
    a_exp: &[i32],
    a_fmt: BfpFormat,
    b_man: &[i32],
    b_exp: &[i32],
    b_fmt: BfpFormat,
) -> f32 {
    let chunk = (a_fmt.block_size() as usize).max(1);
    let ma = i32::from(a_fmt.mantissa_bits());
    let mb = i32::from(b_fmt.mantissa_bits());
    let mut total = 0.0f64;
    for (gi, (ga, gb)) in a_man.chunks(chunk).zip(b_man.chunks(chunk)).enumerate() {
        let mut acc: i64 = 0;
        for (&a, &b) in ga.iter().zip(gb) {
            acc += i64::from(a) * i64::from(b);
        }
        let scale = exp2(a_exp[gi] - (ma - 1) + b_exp[gi] - (mb - 1));
        total += acc as f64 * scale;
    }
    total as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const FMT5: BfpFormat = BfpFormat::BFP_1S_5E_5M;
    const FMT2: BfpFormat = BfpFormat::BFP_1S_5E_2M;

    #[test]
    fn exp2_matches_powi() {
        for e in -40..=40 {
            assert_eq!(exp2(e), 2.0f64.powi(e), "exponent {e}");
        }
    }

    #[test]
    fn zero_vector_quantizes_to_zero() {
        let b = BfpBlock::quantize(&[0.0; 16], FMT2);
        assert!(b.dequantize().iter().all(|&v| v == 0.0));
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn empty_vector() {
        let b = BfpBlock::quantize(&[], FMT2);
        assert!(b.is_empty());
        assert!(b.dequantize().is_empty());
        assert_eq!(b.exponents().len(), 0);
    }

    #[test]
    fn largest_element_relative_error_bounded() {
        // The chunk max must be representable within one quantization step.
        for amax in [0.37f32, 1.0, 3.9, 100.0, 1e-3] {
            let b = BfpBlock::quantize(&[amax], FMT5);
            let back = b.dequantize()[0];
            let rel = (back - amax).abs() / amax;
            assert!(rel <= 1.0 / 31.0, "amax={amax} back={back} rel={rel}");
        }
    }

    #[test]
    fn chunked_exponents_are_independent() {
        let fmt = BfpFormat::new(5, 5, 2).unwrap();
        // Two chunks with very different magnitudes.
        let b = BfpBlock::quantize(&[1000.0, 900.0, 0.01, 0.02], fmt);
        assert_eq!(b.exponents().len(), 2);
        assert!(b.exponents()[0] > b.exponents()[1]);
        let back = b.dequantize();
        assert!((back[0] - 1000.0).abs() / 1000.0 < 0.05);
        assert!((back[3] - 0.02).abs() / 0.02 < 0.05);
    }

    #[test]
    fn small_values_in_large_chunk_are_crushed() {
        // With a 2-bit mantissa, anything below ~1/8 of the chunk max
        // quantizes to zero — the documented BFP quantization noise.
        let b = BfpBlock::quantize(&[8.0, 0.4], FMT2);
        let back = b.dequantize();
        assert_eq!(back[1], 0.0);
        assert!((back[0] - 8.0).abs() < 2.0);
    }

    #[test]
    fn exponent_clamps_and_saturates() {
        // 2^20 exceeds a 5-bit exponent's max of 16; mantissas saturate.
        let b = BfpBlock::quantize(&[2.0f32.powi(20)], FMT5);
        assert_eq!(b.exponents()[0], 16);
        assert_eq!(b.mantissas()[0], 31);
        // Denormal-small input underflows toward zero.
        let tiny = BfpBlock::quantize(&[2.0f32.powi(-30)], FMT5);
        assert_eq!(tiny.exponents()[0], -15);
        assert_eq!(tiny.dequantize()[0], 0.0);
    }

    #[test]
    fn non_finite_inputs_saturate() {
        let b = BfpBlock::quantize(&[f32::INFINITY, f32::NEG_INFINITY], FMT5);
        let back = b.dequantize();
        assert!(back[0] > 0.0);
        assert!(back[1] < 0.0);
        assert_eq!(b.mantissas()[0], 31);
        assert_eq!(b.mantissas()[1], -31);
    }

    #[test]
    fn dot_matches_reference_within_quantization_noise() {
        let a: Vec<f32> = (0..256)
            .map(|i| ((i * 37) % 19) as f32 / 19.0 - 0.5)
            .collect();
        let b: Vec<f32> = (0..256)
            .map(|i| ((i * 53) % 23) as f32 / 23.0 - 0.5)
            .collect();
        let qa = BfpBlock::quantize(&a, FMT5);
        let qb = BfpBlock::quantize(&b, FMT5);
        let reference: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = qa.dot(&qb).unwrap();
        assert!(
            (got - reference).abs() < 0.35,
            "got {got}, reference {reference}"
        );
    }

    #[test]
    fn dot_error_cases() {
        let a = BfpBlock::quantize(&[1.0, 2.0], FMT5);
        let b = BfpBlock::quantize(&[1.0], FMT5);
        assert_eq!(a.dot(&b), Err(DotError::LengthMismatch { lhs: 2, rhs: 1 }));
        let fmt_small = BfpFormat::new(5, 5, 64).unwrap();
        let c = BfpBlock::quantize(&[1.0, 2.0], fmt_small);
        assert_eq!(
            a.dot(&c),
            Err(DotError::BlockSizeMismatch { lhs: 128, rhs: 64 })
        );
    }

    #[test]
    fn quantize_into_matches_quantize_and_reuses_buffers() {
        let xs: Vec<f32> = (0..300).map(|i| (i as f32 * 0.77).sin() * 9.0).collect();
        let mut scratch = BfpBlock::empty(FMT2);
        for rounding in [Rounding::Nearest, Rounding::Stochastic(7)] {
            for fmt in [FMT2, FMT5] {
                BfpBlock::quantize_into(&xs, fmt, rounding, &mut scratch);
                assert_eq!(
                    scratch,
                    BfpBlock::quantize_with_rounding(&xs, fmt, rounding)
                );
            }
        }
        // Shrinking input must not leave stale tail data.
        BfpBlock::quantize_into(&xs[..3], FMT5, Rounding::Nearest, &mut scratch);
        assert_eq!(scratch, BfpBlock::quantize(&xs[..3], FMT5));
    }

    #[test]
    fn fast_dot_bit_identical_to_naive_on_edge_cases() {
        // Zero blocks, denormal-range values, saturating values, and a
        // length straddling a chunk boundary.
        let cases: Vec<Vec<f32>> = vec![
            vec![0.0; 200],
            vec![2.0f32.powi(-30); 129],
            vec![2.0f32.powi(20), -1.0e-20, 0.0, 5.5],
            (0..257).map(|i| ((i * 37) % 19) as f32 - 9.0).collect(),
        ];
        for xs in &cases {
            for fmt in [FMT2, BfpFormat::BFP_1S_5E_3M, FMT5] {
                let a = BfpBlock::quantize(xs, fmt);
                let neg: Vec<f32> = xs.iter().map(|v| -v * 0.3).collect();
                let b = BfpBlock::quantize(&neg, fmt);
                assert_eq!(
                    a.dot(&b).unwrap().to_bits(),
                    a.dot_naive(&b).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn fast_dot_uses_i64_fallback_for_wide_mantissas() {
        // 23-bit mantissas with a 128 chunk cannot use the i32 accumulator;
        // the fallback must still match the naive kernel bit-for-bit.
        let fmt = BfpFormat::new(8, 23, 128).unwrap();
        let xs: Vec<f32> = (0..256).map(|i| (i as f32 * 0.13).sin() * 100.0).collect();
        let ys: Vec<f32> = (0..256).map(|i| (i as f32 * 0.29).cos() * 100.0).collect();
        let a = BfpBlock::quantize(&xs, fmt);
        let b = BfpBlock::quantize(&ys, fmt);
        assert_eq!(
            a.dot(&b).unwrap().to_bits(),
            a.dot_naive(&b).unwrap().to_bits()
        );
    }

    #[test]
    fn dot_f32_equals_quantize_then_dot() {
        let a = BfpBlock::quantize(&[0.5, -0.25, 1.0], FMT5);
        let direct = a.dot_f32(&[1.0, 1.0, 1.0]).unwrap();
        let via = a.dot(&BfpBlock::quantize(&[1.0, 1.0, 1.0], FMT5)).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn stochastic_rounding_is_deterministic_in_seed() {
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let a = BfpBlock::quantize_with_rounding(&xs, FMT5, Rounding::Stochastic(9));
        let b = BfpBlock::quantize_with_rounding(&xs, FMT5, Rounding::Stochastic(9));
        assert_eq!(a, b);
        let c = BfpBlock::quantize_with_rounding(&xs, FMT5, Rounding::Stochastic(10));
        assert_ne!(a, c);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        // Quantizing the same mid-step value many times must average back
        // to the value itself (the property nearest-rounding lacks, and the
        // reason fine-tuning uses it).
        let fmt = BfpFormat::new(5, 3, 128).unwrap();
        // Chunk max 7.0 -> scale 2^(2-2)=1; 3.3 sits between 3 and 4.
        let xs = [7.0f32, 3.3];
        let trials = 4000;
        let mut sum = 0.0f64;
        for seed in 0..trials {
            let b = BfpBlock::quantize_with_rounding(&xs, fmt, Rounding::Stochastic(seed));
            sum += f64::from(b.dequantize()[1]);
        }
        let mean = sum / f64::from(trials as u32);
        assert!((mean - 3.3).abs() < 0.02, "mean {mean}");
        // Nearest rounding is biased to 3.0 here.
        let nearest = BfpBlock::quantize(&xs, fmt).dequantize()[1];
        assert_eq!(nearest, 3.0);
    }

    #[test]
    fn stochastic_error_still_bounded_by_one_step() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 * 0.11).cos() * 5.0).collect();
        let b = BfpBlock::quantize_with_rounding(&xs, FMT5, Rounding::Stochastic(1));
        let back = b.dequantize();
        let amax = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = amax / 31.0 * 1.01 + 1e-6;
        for (v, q) in xs.iter().zip(&back) {
            assert!((v - q).abs() <= step * 1.5, "{v} -> {q}");
        }
    }

    proptest! {
        #[test]
        fn quantize_error_bounded_by_chunk_max(values in prop::collection::vec(-100.0f32..100.0, 1..300)) {
            let b = BfpBlock::quantize(&values, FMT5);
            let back = b.dequantize();
            let chunk = FMT5.block_size() as usize;
            for (ci, group) in values.chunks(chunk).enumerate() {
                let amax = group.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                // One quantization step is at most chunk_max / (2^m - 1)
                // after the overflow bump; allow the half-step rounding.
                let step = (amax / 31.0).max(f32::EPSILON);
                for (i, &v) in group.iter().enumerate() {
                    let err = (back[ci * chunk + i] - v).abs();
                    prop_assert!(err <= step * 1.01 + 1e-6,
                        "chunk {ci} elem {i}: v={v} err={err} step={step}");
                }
            }
        }

        #[test]
        fn mantissas_within_format_bounds(values in prop::collection::vec(-1e6f32..1e6, 0..200)) {
            for fmt in [FMT2, FMT5, BfpFormat::BFP_1S_5E_3M] {
                let b = BfpBlock::quantize(&values, fmt);
                let bound = fmt.max_mantissa();
                prop_assert!(b.mantissas().iter().all(|&q| q.abs() <= bound));
                let (lo, hi) = fmt.exponent_range();
                prop_assert!(b.exponents().iter().all(|&e| e >= lo && e <= hi));
            }
        }

        #[test]
        fn dot_is_symmetric(
            a in prop::collection::vec(-10.0f32..10.0, 1..200),
            seed in 0u64..1000,
        ) {
            let b: Vec<f32> = a.iter().enumerate()
                .map(|(i, v)| v * (((i as u64 + seed) % 7) as f32 - 3.0))
                .collect();
            let qa = BfpBlock::quantize(&a, FMT5);
            let qb = BfpBlock::quantize(&b, FMT5);
            prop_assert_eq!(qa.dot(&qb).unwrap(), qb.dot(&qa).unwrap());
        }

        #[test]
        fn fast_dot_bit_identical_to_naive(
            a in prop::collection::vec(-100.0f32..100.0, 0..400),
            mantissa_bits in 2u8..=5,
            block_idx in 0usize..5,
            seed in 0u64..1000,
        ) {
            let block_size = [1u32, 2, 16, 64, 128][block_idx];
            let fmt = BfpFormat::new(5, mantissa_bits, block_size).unwrap();
            let b: Vec<f32> = a.iter().enumerate()
                .map(|(i, v)| v * (((i as u64 + seed) % 11) as f32 - 5.0) * 0.1)
                .collect();
            let qa = BfpBlock::quantize(&a, fmt);
            let qb = BfpBlock::quantize(&b, fmt);
            let fast = qa.dot(&qb).unwrap();
            let naive = qa.dot_naive(&qb).unwrap();
            prop_assert_eq!(fast.to_bits(), naive.to_bits(),
                "fast {} vs naive {}", fast, naive);
        }

        #[test]
        fn quantize_is_idempotent(values in prop::collection::vec(-50.0f32..50.0, 1..100)) {
            // Quantizing already-quantized values must be exact.
            let once = BfpBlock::quantize(&values, FMT5).dequantize();
            let twice = BfpBlock::quantize(&once, FMT5).dequantize();
            for (a, b) in once.iter().zip(&twice) {
                prop_assert!((a - b).abs() <= a.abs() * 1e-6 + 1e-9,
                    "once={a} twice={b}");
            }
        }
    }
}
