//! Quantization-error instrumentation.

use serde::{Deserialize, Serialize};

/// Summary statistics comparing an approximate signal against a reference.
///
/// Used by the narrow-precision experiments to quantify BFP quantization
/// noise (§VI reports "negligible impact on accuracy (within 1-2% of
/// baseline)"; we measure signal-to-noise directly since we have no
/// production scoring sets).
///
/// # Example
///
/// ```
/// use bw_bfp::ErrorStats;
///
/// let stats = ErrorStats::compare(&[1.0, 2.0], &[1.01, 1.98]).unwrap();
/// assert!(stats.max_abs_error <= 0.021);
/// assert!(stats.snr_db > 30.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Largest absolute difference.
    pub max_abs_error: f64,
    /// Largest relative difference among reference elements with magnitude
    /// above `1e-12` (0 when no such element exists).
    pub max_rel_error: f64,
    /// Mean absolute difference.
    pub mean_abs_error: f64,
    /// Root-mean-square difference.
    pub rmse: f64,
    /// Signal-to-noise ratio in decibels; `f64::INFINITY` when the error is
    /// exactly zero.
    pub snr_db: f64,
}

impl ErrorStats {
    /// Compares `actual` against `reference`.
    ///
    /// Returns `None` when the slices differ in length or are empty, since
    /// no meaningful statistic exists in either case.
    pub fn compare(reference: &[f32], actual: &[f32]) -> Option<ErrorStats> {
        if reference.len() != actual.len() || reference.is_empty() {
            return None;
        }
        let mut max_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        let mut sum_abs = 0.0f64;
        let mut sum_sq_err = 0.0f64;
        let mut sum_sq_sig = 0.0f64;
        for (&r, &a) in reference.iter().zip(actual) {
            let err = (f64::from(a) - f64::from(r)).abs();
            max_abs = max_abs.max(err);
            sum_abs += err;
            sum_sq_err += err * err;
            sum_sq_sig += f64::from(r) * f64::from(r);
            if f64::from(r).abs() > 1e-12 {
                max_rel = max_rel.max(err / f64::from(r).abs());
            }
        }
        let n = reference.len() as f64;
        let snr_db = if sum_sq_err == 0.0 {
            f64::INFINITY
        } else if sum_sq_sig == 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * (sum_sq_sig / sum_sq_err).log10()
        };
        Some(ErrorStats {
            max_abs_error: max_abs,
            max_rel_error: max_rel,
            mean_abs_error: sum_abs / n,
            rmse: (sum_sq_err / n).sqrt(),
            snr_db,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_infinite_snr() {
        let s = ErrorStats::compare(&[1.0, -2.0, 3.0], &[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(s.max_abs_error, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert!(s.snr_db.is_infinite() && s.snr_db > 0.0);
    }

    #[test]
    fn mismatched_or_empty_inputs_return_none() {
        assert!(ErrorStats::compare(&[1.0], &[1.0, 2.0]).is_none());
        assert!(ErrorStats::compare(&[], &[]).is_none());
    }

    #[test]
    fn known_error_statistics() {
        let s = ErrorStats::compare(&[1.0, 2.0, 4.0], &[1.1, 2.0, 4.0]).unwrap();
        assert!((s.max_abs_error - 0.1).abs() < 1e-6);
        assert!((s.max_rel_error - 0.1).abs() < 1e-6);
        assert!((s.mean_abs_error - 0.1 / 3.0).abs() < 1e-6);
        let expected_rmse = (0.01f64 / 3.0).sqrt();
        assert!((s.rmse - expected_rmse).abs() < 1e-6);
    }

    #[test]
    fn zero_reference_with_error_has_neg_infinite_snr() {
        let s = ErrorStats::compare(&[0.0, 0.0], &[0.1, 0.0]).unwrap();
        assert!(s.snr_db.is_infinite() && s.snr_db < 0.0);
        // Relative error skips near-zero reference elements.
        assert_eq!(s.max_rel_error, 0.0);
    }

    #[test]
    fn snr_of_ten_percent_noise() {
        let reference = vec![1.0f32; 100];
        let actual = vec![1.1f32; 100];
        let s = ErrorStats::compare(&reference, &actual).unwrap();
        assert!((s.snr_db - 20.0).abs() < 0.1, "snr {}", s.snr_db);
    }
}
