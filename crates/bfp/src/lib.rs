//! Narrow-precision numerics for the Brainwave NPU reproduction.
//!
//! The Brainwave NPU (ISCA 2018, §VI) runs its matrix-vector datapath in a
//! *block floating point* (BFP) format: a group of values — one native
//! vector's worth — shares a single 5-bit exponent, while each element keeps
//! its own sign and a narrow (2–5 bit) mantissa. Secondary operations
//! (point-wise vector arithmetic and activation functions in the MFUs)
//! execute as float16.
//!
//! This crate implements both numeric systems from scratch:
//!
//! * [`F16`] — software IEEE 754 binary16 with correct round-to-nearest-even
//!   conversions, used by the multifunction units.
//! * [`BfpFormat`], [`BfpBlock`], [`BfpMatrix`] — shared-exponent block
//!   quantization, the integer dot-product semantics the MVM datapath uses,
//!   and dequantization.
//! * [`ErrorStats`] — quantization-error instrumentation used by the
//!   narrow-precision accuracy experiments.
//!
//! # Example
//!
//! ```
//! use bw_bfp::{BfpFormat, BfpBlock};
//!
//! let fmt = BfpFormat::BFP_1S_5E_2M; // the BW_S10 format from the paper
//! let xs = [0.5_f32, -1.25, 3.0, 0.125];
//! let block = BfpBlock::quantize(&xs, fmt);
//! let back = block.dequantize();
//! assert_eq!(back.len(), xs.len());
//! // 2-bit mantissas are coarse, but the largest element is well preserved.
//! assert!((back[2] - 3.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod f16;
mod format;
mod matrix;

pub use block::{BfpBlock, DotError, Rounding};
pub use error::ErrorStats;
pub use f16::F16;
pub use format::{BfpFormat, FormatError};
pub use matrix::{BfpMatrix, BfpRowRef, MatrixShapeError};
