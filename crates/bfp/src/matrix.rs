//! Row-quantized BFP matrices, the storage format of the matrix register
//! file (MRF).

use serde::{Deserialize, Serialize};

use crate::block::{BfpBlock, DotError};
use crate::format::BfpFormat;

/// A dense matrix quantized to block floating point, row by row.
///
/// Model weights pinned in the MRF are stored this way: each row is a BFP
/// vector (chunked into shared-exponent groups), so a dot-product engine
/// multiplying the input vector by one row performs only integer MACs plus a
/// per-chunk exponent recombination.
///
/// # Example
///
/// ```
/// use bw_bfp::{BfpFormat, BfpMatrix};
///
/// let m = BfpMatrix::quantize(2, 3, &[1.0, 0.0, 0.0, 0.0, 2.0, 0.0], BfpFormat::BFP_1S_5E_5M)?;
/// let y = m.mv_mul_f32(&[1.0, 1.0, 1.0]).unwrap();
/// assert!((y[0] - 1.0).abs() < 0.1);
/// assert!((y[1] - 2.0).abs() < 0.1);
/// # Ok::<(), bw_bfp::MatrixShapeError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BfpMatrix {
    rows: usize,
    cols: usize,
    format: BfpFormat,
    row_blocks: Vec<BfpBlock>,
}

/// Error returned when the data length does not match the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixShapeError {
    /// Rows requested.
    pub rows: usize,
    /// Columns requested.
    pub cols: usize,
    /// Elements supplied.
    pub len: usize,
}

impl std::fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix shape {}x{} requires {} elements, got {}",
            self.rows,
            self.cols,
            self.rows * self.cols,
            self.len
        )
    }
}

impl std::error::Error for MatrixShapeError {}

impl BfpMatrix {
    /// Quantizes a row-major `rows × cols` slice of `f32` weights.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] if `data.len() != rows * cols`.
    pub fn quantize(
        rows: usize,
        cols: usize,
        data: &[f32],
        format: BfpFormat,
    ) -> Result<Self, MatrixShapeError> {
        if data.len() != rows * cols {
            return Err(MatrixShapeError {
                rows,
                cols,
                len: data.len(),
            });
        }
        let row_blocks = data
            .chunks(cols.max(1))
            .take(rows)
            .map(|row| BfpBlock::quantize(row, format))
            .collect();
        Ok(BfpMatrix {
            rows,
            cols,
            format,
            row_blocks,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization format.
    #[inline]
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Borrows one quantized row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &BfpBlock {
        &self.row_blocks[row]
    }

    /// Matrix-vector product against an already-quantized input vector.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` does not match the column count or chunk
    /// size.
    pub fn mv_mul(&self, x: &BfpBlock) -> Result<Vec<f32>, DotError> {
        self.row_blocks.iter().map(|row| row.dot(x)).collect()
    }

    /// Matrix-vector product; quantizes `x` with this matrix's format first.
    ///
    /// # Errors
    ///
    /// Returns [`DotError::LengthMismatch`] if `x.len() != self.cols()`.
    pub fn mv_mul_f32(&self, x: &[f32]) -> Result<Vec<f32>, DotError> {
        let qx = BfpBlock::quantize(x, self.format);
        self.mv_mul(&qx)
    }

    /// Reconstructs the approximate row-major `f32` contents.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for row in &self.row_blocks {
            out.extend(row.dequantize());
        }
        out
    }

    /// On-chip storage footprint in bytes under this BFP format.
    pub fn storage_bytes(&self) -> u64 {
        self.format.storage_bytes((self.rows * self.cols) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FMT: BfpFormat = BfpFormat::BFP_1S_5E_5M;

    #[test]
    fn identity_mv_mul() {
        let n = 8;
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let m = BfpMatrix::quantize(n, n, &data, FMT).unwrap();
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y = m.mv_mul_f32(&x).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - x[i]).abs() < 0.3, "row {i}: {v} vs {}", x[i]);
        }
    }

    #[test]
    fn shape_validation() {
        let err = BfpMatrix::quantize(2, 3, &[0.0; 5], FMT).unwrap_err();
        assert_eq!(
            err,
            MatrixShapeError {
                rows: 2,
                cols: 3,
                len: 5
            }
        );
        assert!(err.to_string().contains("6 elements"));
    }

    #[test]
    fn zero_sized_matrix() {
        let m = BfpMatrix::quantize(0, 0, &[], FMT).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.mv_mul_f32(&[]).unwrap(), Vec::<f32>::new());
        assert_eq!(m.storage_bytes(), 0);
    }

    #[test]
    fn mv_mul_matches_dense_reference() {
        let (rows, cols) = (5, 130); // spans a chunk boundary at 128
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 17) as f32 / 17.0 - 0.5)
            .collect();
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let m = BfpMatrix::quantize(rows, cols, &data, FMT).unwrap();
        let y = m.mv_mul_f32(&x).unwrap();
        for r in 0..rows {
            let reference: f32 = (0..cols).map(|c| data[r * cols + c] * x[c]).sum();
            assert!(
                (y[r] - reference).abs() < 0.3,
                "row {r}: {} vs {}",
                y[r],
                reference
            );
        }
    }

    #[test]
    fn storage_matches_format_accounting() {
        let m = BfpMatrix::quantize(4, 128, &[1.0; 512], FMT).unwrap();
        assert_eq!(m.storage_bytes(), FMT.storage_bytes(512));
    }

    #[test]
    fn row_access_and_dequantize_shape() {
        let m = BfpMatrix::quantize(3, 4, &[2.0; 12], FMT).unwrap();
        assert_eq!(m.row(1).len(), 4);
        assert_eq!(m.dequantize().len(), 12);
    }
}
