//! Row-quantized BFP matrices, the storage format of the matrix register
//! file (MRF).

use serde::{Deserialize, Serialize};

use crate::block::{dot_flat, dot_flat_naive, exp2, quantize_append, BfpBlock, DotError, Rounding};
use crate::format::BfpFormat;

/// A dense matrix quantized to block floating point, row by row.
///
/// Model weights pinned in the MRF are stored this way: each row is a BFP
/// vector (chunked into shared-exponent groups), so a dot-product engine
/// multiplying the input vector by one row performs only integer MACs plus a
/// per-chunk exponent recombination.
///
/// Storage is a single flat mantissa slab (`rows * cols` signed mantissas,
/// row-major) plus a flat exponent slab (one per chunk per row) — the layout
/// the fast dot kernel streams through without per-row indirection.
///
/// # Example
///
/// ```
/// use bw_bfp::{BfpFormat, BfpMatrix};
///
/// let m = BfpMatrix::quantize(2, 3, &[1.0, 0.0, 0.0, 0.0, 2.0, 0.0], BfpFormat::BFP_1S_5E_5M)?;
/// let y = m.mv_mul_f32(&[1.0, 1.0, 1.0]).unwrap();
/// assert!((y[0] - 1.0).abs() < 0.1);
/// assert!((y[1] - 2.0).abs() < 0.1);
/// # Ok::<(), bw_bfp::MatrixShapeError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BfpMatrix {
    rows: usize,
    cols: usize,
    format: BfpFormat,
    /// `rows * cols` signed mantissas, row-major.
    mantissas: Vec<i32>,
    /// `rows * chunks_per_row` shared exponents, row-major.
    exponents: Vec<i32>,
}

/// A borrowed view of one quantized matrix row: slices into the matrix's
/// flat mantissa/exponent slabs.
#[derive(Clone, Copy, Debug)]
pub struct BfpRowRef<'a> {
    format: BfpFormat,
    mantissas: &'a [i32],
    exponents: &'a [i32],
}

impl BfpRowRef<'_> {
    /// Number of elements in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.mantissas.len()
    }

    /// Returns `true` if the row holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mantissas.is_empty()
    }

    /// The quantization format.
    #[inline]
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// The row's signed mantissas.
    #[inline]
    pub fn mantissas(&self) -> &[i32] {
        self.mantissas
    }

    /// The row's shared exponents, one per chunk.
    #[inline]
    pub fn exponents(&self) -> &[i32] {
        self.exponents
    }

    /// Dot product of this row against a quantized vector (fast kernel).
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` differs in length or chunk size.
    pub fn dot(&self, x: &BfpBlock) -> Result<f32, DotError> {
        check_operand(self.format, self.mantissas.len(), x)?;
        Ok(dot_flat(
            self.mantissas,
            self.exponents,
            self.format,
            x.mantissas(),
            x.exponents(),
            x.format(),
        ))
    }

    /// Reconstructs the approximate `f32` values of the row.
    pub fn dequantize(&self) -> Vec<f32> {
        let chunk = (self.format.block_size() as usize).max(1);
        let m = i32::from(self.format.mantissa_bits());
        let mut out = Vec::with_capacity(self.len());
        for (gi, group) in self.mantissas.chunks(chunk).enumerate() {
            let scale = exp2(self.exponents[gi] - (m - 1));
            for &q in group {
                out.push((f64::from(q) * scale) as f32);
            }
        }
        out
    }
}

#[inline]
fn check_operand(format: BfpFormat, cols: usize, x: &BfpBlock) -> Result<(), DotError> {
    if cols != x.len() {
        return Err(DotError::LengthMismatch {
            lhs: cols,
            rhs: x.len(),
        });
    }
    if format.block_size() != x.format().block_size() {
        return Err(DotError::BlockSizeMismatch {
            lhs: format.block_size(),
            rhs: x.format().block_size(),
        });
    }
    Ok(())
}

/// Error returned when the data length does not match the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixShapeError {
    /// Rows requested.
    pub rows: usize,
    /// Columns requested.
    pub cols: usize,
    /// Elements supplied.
    pub len: usize,
}

impl std::fmt::Display for MatrixShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix shape {}x{} requires {} elements, got {}",
            self.rows,
            self.cols,
            self.rows * self.cols,
            self.len
        )
    }
}

impl std::error::Error for MatrixShapeError {}

impl BfpMatrix {
    /// Quantizes a row-major `rows × cols` slice of `f32` weights.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixShapeError`] if `data.len() != rows * cols`.
    pub fn quantize(
        rows: usize,
        cols: usize,
        data: &[f32],
        format: BfpFormat,
    ) -> Result<Self, MatrixShapeError> {
        if data.len() != rows * cols {
            return Err(MatrixShapeError {
                rows,
                cols,
                len: data.len(),
            });
        }
        let mut mantissas = Vec::with_capacity(rows * cols);
        let mut exponents = Vec::new();
        for row in data.chunks(cols.max(1)).take(rows) {
            quantize_append(
                row,
                format,
                Rounding::Nearest,
                &mut mantissas,
                &mut exponents,
            );
        }
        Ok(BfpMatrix {
            rows,
            cols,
            format,
            mantissas,
            exponents,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization format.
    #[inline]
    pub fn format(&self) -> BfpFormat {
        self.format
    }

    /// Exponent groups per row.
    #[inline]
    fn chunks_per_row(&self) -> usize {
        self.cols
            .div_ceil((self.format.block_size() as usize).max(1))
    }

    /// Borrows one quantized row as slices into the flat slabs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> BfpRowRef<'_> {
        assert!(row < self.rows, "row {row} out of range ({})", self.rows);
        let cpr = self.chunks_per_row();
        BfpRowRef {
            format: self.format,
            mantissas: &self.mantissas[row * self.cols..(row + 1) * self.cols],
            exponents: &self.exponents[row * cpr..(row + 1) * cpr],
        }
    }

    /// Matrix-vector product against an already-quantized input vector.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` does not match the column count or chunk
    /// size.
    pub fn mv_mul(&self, x: &BfpBlock) -> Result<Vec<f32>, DotError> {
        let mut out = Vec::new();
        self.mv_mul_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product written into a reusable output buffer.
    ///
    /// `out` is cleared and filled with `rows` elements; its allocation is
    /// reused across calls.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` does not match the column count or chunk
    /// size.
    pub fn mv_mul_into(&self, x: &BfpBlock, out: &mut Vec<f32>) -> Result<(), DotError> {
        out.clear();
        if self.rows == 0 {
            return Ok(());
        }
        check_operand(self.format, self.cols, x)?;
        out.reserve(self.rows);
        let cpr = self.chunks_per_row();
        for r in 0..self.rows {
            out.push(dot_flat(
                &self.mantissas[r * self.cols..(r + 1) * self.cols],
                &self.exponents[r * cpr..(r + 1) * cpr],
                self.format,
                x.mantissas(),
                x.exponents(),
                x.format(),
            ));
        }
        Ok(())
    }

    /// Matrix-vector product *accumulated* into `acc`: `acc[r] += row_r · x`.
    ///
    /// The per-row dot is computed as an `f32` (exactly as [`mv_mul`]
    /// produces it) and then added in `f32`, matching the MVM datapath's
    /// tile-accumulation order bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` does not match the column count or chunk
    /// size, or [`DotError::LengthMismatch`] if `acc.len() != self.rows()`.
    ///
    /// [`mv_mul`]: BfpMatrix::mv_mul
    pub fn mv_mul_acc(&self, x: &BfpBlock, acc: &mut [f32]) -> Result<(), DotError> {
        if acc.len() != self.rows {
            return Err(DotError::LengthMismatch {
                lhs: self.rows,
                rhs: acc.len(),
            });
        }
        if self.rows == 0 {
            return Ok(());
        }
        check_operand(self.format, self.cols, x)?;
        let cpr = self.chunks_per_row();
        for (r, slot) in acc.iter_mut().enumerate() {
            *slot += dot_flat(
                &self.mantissas[r * self.cols..(r + 1) * self.cols],
                &self.exponents[r * cpr..(r + 1) * cpr],
                self.format,
                x.mantissas(),
                x.exponents(),
                x.format(),
            );
        }
        Ok(())
    }

    /// Matrix-vector product using the retained naive reference kernel;
    /// bit-identical to [`BfpMatrix::mv_mul`] (the differential property
    /// tests pin this).
    ///
    /// # Errors
    ///
    /// Returns [`DotError`] if `x` does not match the column count or chunk
    /// size.
    pub fn mv_mul_naive(&self, x: &BfpBlock) -> Result<Vec<f32>, DotError> {
        if self.rows == 0 {
            return Ok(Vec::new());
        }
        check_operand(self.format, self.cols, x)?;
        let cpr = self.chunks_per_row();
        (0..self.rows)
            .map(|r| {
                Ok(dot_flat_naive(
                    &self.mantissas[r * self.cols..(r + 1) * self.cols],
                    &self.exponents[r * cpr..(r + 1) * cpr],
                    self.format,
                    x.mantissas(),
                    x.exponents(),
                    x.format(),
                ))
            })
            .collect()
    }

    /// Matrix-vector product; quantizes `x` with this matrix's format first.
    ///
    /// # Errors
    ///
    /// Returns [`DotError::LengthMismatch`] if `x.len() != self.cols()`.
    pub fn mv_mul_f32(&self, x: &[f32]) -> Result<Vec<f32>, DotError> {
        let qx = BfpBlock::quantize(x, self.format);
        self.mv_mul(&qx)
    }

    /// Reconstructs the approximate row-major `f32` contents.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            out.extend(self.row(r).dequantize());
        }
        out
    }

    /// On-chip storage footprint in bytes under this BFP format.
    pub fn storage_bytes(&self) -> u64 {
        self.format.storage_bytes((self.rows * self.cols) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const FMT: BfpFormat = BfpFormat::BFP_1S_5E_5M;

    #[test]
    fn identity_mv_mul() {
        let n = 8;
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        let m = BfpMatrix::quantize(n, n, &data, FMT).unwrap();
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y = m.mv_mul_f32(&x).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - x[i]).abs() < 0.3, "row {i}: {v} vs {}", x[i]);
        }
    }

    #[test]
    fn shape_validation() {
        let err = BfpMatrix::quantize(2, 3, &[0.0; 5], FMT).unwrap_err();
        assert_eq!(
            err,
            MatrixShapeError {
                rows: 2,
                cols: 3,
                len: 5
            }
        );
        assert!(err.to_string().contains("6 elements"));
    }

    #[test]
    fn zero_sized_matrix() {
        let m = BfpMatrix::quantize(0, 0, &[], FMT).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.mv_mul_f32(&[]).unwrap(), Vec::<f32>::new());
        assert_eq!(
            m.mv_mul_naive(&BfpBlock::quantize(&[], FMT)).unwrap().len(),
            0
        );
        assert_eq!(m.storage_bytes(), 0);
    }

    #[test]
    fn mv_mul_matches_dense_reference() {
        let (rows, cols) = (5, 130); // spans a chunk boundary at 128
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 17) as f32 / 17.0 - 0.5)
            .collect();
        let x: Vec<f32> = (0..cols)
            .map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let m = BfpMatrix::quantize(rows, cols, &data, FMT).unwrap();
        let y = m.mv_mul_f32(&x).unwrap();
        for r in 0..rows {
            let reference: f32 = (0..cols).map(|c| data[r * cols + c] * x[c]).sum();
            assert!(
                (y[r] - reference).abs() < 0.3,
                "row {r}: {} vs {}",
                y[r],
                reference
            );
        }
    }

    #[test]
    fn flat_rows_match_per_row_quantization() {
        // Quantizing the matrix row-by-row into flat slabs must equal
        // quantizing each row as a standalone BfpBlock.
        let (rows, cols) = (4, 200);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 13) % 29) as f32 - 14.0)
            .collect();
        let m = BfpMatrix::quantize(rows, cols, &data, FMT).unwrap();
        for r in 0..rows {
            let standalone = BfpBlock::quantize(&data[r * cols..(r + 1) * cols], FMT);
            assert_eq!(m.row(r).mantissas(), standalone.mantissas());
            assert_eq!(m.row(r).exponents(), standalone.exponents());
            assert_eq!(m.row(r).dequantize(), standalone.dequantize());
        }
    }

    #[test]
    fn mv_mul_error_cases_match_block_dot() {
        let m = BfpMatrix::quantize(2, 3, &[1.0; 6], FMT).unwrap();
        let short = BfpBlock::quantize(&[1.0], FMT);
        assert_eq!(
            m.mv_mul(&short),
            Err(DotError::LengthMismatch { lhs: 3, rhs: 1 })
        );
        let fmt_small = BfpFormat::new(5, 5, 64).unwrap();
        let wrong_chunk = BfpBlock::quantize(&[1.0; 3], fmt_small);
        assert_eq!(
            m.mv_mul(&wrong_chunk),
            Err(DotError::BlockSizeMismatch { lhs: 128, rhs: 64 })
        );
    }

    #[test]
    fn mv_mul_acc_accumulates_in_f32() {
        let m = BfpMatrix::quantize(3, 4, &[0.5; 12], FMT).unwrap();
        let x = BfpBlock::quantize(&[1.0, 2.0, 3.0, 4.0], FMT);
        let base = m.mv_mul(&x).unwrap();
        let mut acc = base.clone();
        m.mv_mul_acc(&x, &mut acc).unwrap();
        for (a, b) in acc.iter().zip(&base) {
            assert_eq!(*a, b + b);
        }
        let mut wrong = vec![0.0; 2];
        assert_eq!(
            m.mv_mul_acc(&x, &mut wrong),
            Err(DotError::LengthMismatch { lhs: 3, rhs: 2 })
        );
    }

    #[test]
    fn storage_matches_format_accounting() {
        let m = BfpMatrix::quantize(4, 128, &[1.0; 512], FMT).unwrap();
        assert_eq!(m.storage_bytes(), FMT.storage_bytes(512));
    }

    #[test]
    fn row_access_and_dequantize_shape() {
        let m = BfpMatrix::quantize(3, 4, &[2.0; 12], FMT).unwrap();
        assert_eq!(m.row(1).len(), 4);
        assert_eq!(m.dequantize().len(), 12);
    }

    proptest! {
        #[test]
        fn fast_mv_mul_bit_identical_to_naive(
            rows in 0usize..6,
            cols in 0usize..160,
            mantissa_bits in 2u8..=5,
            seed in 0u64..500,
        ) {
            let fmt = BfpFormat::new(5, mantissa_bits, 128).unwrap();
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| (((i as u64).wrapping_mul(seed + 3)) % 37) as f32 - 18.0)
                .collect();
            let x: Vec<f32> = (0..cols)
                .map(|i| (((i as u64).wrapping_mul(seed + 11)) % 23) as f32 * 0.25 - 2.5)
                .collect();
            let m = BfpMatrix::quantize(rows, cols, &data, fmt).unwrap();
            let qx = BfpBlock::quantize(&x, fmt);
            let fast = m.mv_mul(&qx).unwrap();
            let naive = m.mv_mul_naive(&qx).unwrap();
            prop_assert_eq!(fast.len(), naive.len());
            for (f, n) in fast.iter().zip(&naive) {
                prop_assert_eq!(f.to_bits(), n.to_bits(), "fast {} vs naive {}", f, n);
            }
            // mv_mul_into reuses buffers but must produce the same values.
            let mut buf = vec![9.0f32; 3];
            m.mv_mul_into(&qx, &mut buf).unwrap();
            prop_assert_eq!(&buf, &fast);
        }
    }
}
