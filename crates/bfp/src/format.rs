//! Block floating point format descriptors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A block floating point format: a group of `block_size` values shares one
/// exponent of `exponent_bits`, and each element carries a sign bit plus
/// `mantissa_bits` of magnitude.
///
/// The paper (§VI) uses a 5-bit shared exponent with mantissas trimmed to
/// between 2 bits (large RNN serving on BW_S10, written `1s.5e.2m`) and
/// 5 bits (the CNN featurizer on Arria 10, `1s.5e.5m`).
///
/// # Example
///
/// ```
/// use bw_bfp::BfpFormat;
///
/// let fmt = BfpFormat::new(5, 2, 128)?;
/// assert_eq!(fmt.bits_per_element_amortized(), 3.0 + 5.0 / 128.0);
/// assert_eq!(fmt.to_string(), "1s.5e.2m/128");
/// # Ok::<(), bw_bfp::FormatError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BfpFormat {
    exponent_bits: u8,
    mantissa_bits: u8,
    block_size: u32,
}

/// Error returned when constructing an invalid [`BfpFormat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The exponent width was zero or wider than 8 bits.
    ExponentBits(u8),
    /// The mantissa width was zero or wider than 23 bits.
    MantissaBits(u8),
    /// The block size was zero.
    BlockSize,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::ExponentBits(b) => {
                write!(f, "exponent width {b} outside the supported 1..=8 bits")
            }
            FormatError::MantissaBits(b) => {
                write!(f, "mantissa width {b} outside the supported 1..=23 bits")
            }
            FormatError::BlockSize => write!(f, "block size must be non-zero"),
        }
    }
}

impl std::error::Error for FormatError {}

impl BfpFormat {
    /// The production BW_S10 RNN serving format: 1 sign, 5-bit shared
    /// exponent, 2-bit mantissa, shared at the native-vector level
    /// (128 elements is the paper's quoted sharing group).
    pub const BFP_1S_5E_2M: BfpFormat = BfpFormat {
        exponent_bits: 5,
        mantissa_bits: 2,
        block_size: 128,
    };

    /// The BW_CNN_A10 featurizer format: 1 sign, 5-bit shared exponent,
    /// 5-bit mantissa (Table VI).
    pub const BFP_1S_5E_5M: BfpFormat = BfpFormat {
        exponent_bits: 5,
        mantissa_bits: 5,
        block_size: 128,
    };

    /// A 3-bit mantissa variant, in the paper's validated 2–5 bit range.
    pub const BFP_1S_5E_3M: BfpFormat = BfpFormat {
        exponent_bits: 5,
        mantissa_bits: 3,
        block_size: 128,
    };

    /// Creates a format, validating the field widths.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if the exponent is not 1–8 bits, the mantissa
    /// is not 1–23 bits, or the block size is zero.
    pub fn new(exponent_bits: u8, mantissa_bits: u8, block_size: u32) -> Result<Self, FormatError> {
        if exponent_bits == 0 || exponent_bits > 8 {
            return Err(FormatError::ExponentBits(exponent_bits));
        }
        if mantissa_bits == 0 || mantissa_bits > 23 {
            return Err(FormatError::MantissaBits(mantissa_bits));
        }
        if block_size == 0 {
            return Err(FormatError::BlockSize);
        }
        Ok(BfpFormat {
            exponent_bits,
            mantissa_bits,
            block_size,
        })
    }

    /// Width of the shared exponent in bits.
    #[inline]
    pub fn exponent_bits(self) -> u8 {
        self.exponent_bits
    }

    /// Width of each element's mantissa in bits (excluding the sign).
    #[inline]
    pub fn mantissa_bits(self) -> u8 {
        self.mantissa_bits
    }

    /// Number of elements sharing one exponent.
    #[inline]
    pub fn block_size(self) -> u32 {
        self.block_size
    }

    /// The largest representable mantissa magnitude, `2^m - 1`.
    #[inline]
    pub fn max_mantissa(self) -> i32 {
        (1i32 << self.mantissa_bits) - 1
    }

    /// The exponent bias; shared exponents are stored biased like IEEE
    /// exponents so a 5-bit field covers `-15..=16` unbiased.
    #[inline]
    pub fn exponent_bias(self) -> i32 {
        (1i32 << (self.exponent_bits - 1)) - 1
    }

    /// The smallest and largest storable unbiased exponents.
    #[inline]
    pub fn exponent_range(self) -> (i32, i32) {
        let bias = self.exponent_bias();
        (-bias, (1i32 << self.exponent_bits) - 1 - bias)
    }

    /// Average storage cost per element in bits: sign + mantissa + the
    /// shared exponent amortized over the block.
    pub fn bits_per_element_amortized(self) -> f64 {
        1.0 + f64::from(self.mantissa_bits)
            + f64::from(self.exponent_bits) / f64::from(self.block_size)
    }

    /// Storage in bytes for `n` elements laid out in ceil(n/block) blocks,
    /// rounding each block's payload up to whole bytes. This is the figure
    /// used for the "Data" column of Table I and MRF capacity accounting.
    pub fn storage_bytes(self, n: u64) -> u64 {
        let blocks = n.div_ceil(u64::from(self.block_size));
        let payload_bits =
            n * (1 + u64::from(self.mantissa_bits)) + blocks * u64::from(self.exponent_bits);
        payload_bits.div_ceil(8)
    }
}

impl fmt::Display for BfpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1s.{}e.{}m/{}",
            self.exponent_bits, self.mantissa_bits, self.block_size
        )
    }
}

impl Default for BfpFormat {
    fn default() -> Self {
        BfpFormat::BFP_1S_5E_2M
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_formats_match_paper() {
        assert_eq!(BfpFormat::BFP_1S_5E_2M.exponent_bits(), 5);
        assert_eq!(BfpFormat::BFP_1S_5E_2M.mantissa_bits(), 2);
        assert_eq!(BfpFormat::BFP_1S_5E_5M.mantissa_bits(), 5);
        assert_eq!(BfpFormat::BFP_1S_5E_2M.to_string(), "1s.5e.2m/128");
    }

    #[test]
    fn validation_rejects_bad_widths() {
        assert_eq!(BfpFormat::new(0, 2, 128), Err(FormatError::ExponentBits(0)));
        assert_eq!(BfpFormat::new(9, 2, 128), Err(FormatError::ExponentBits(9)));
        assert_eq!(BfpFormat::new(5, 0, 128), Err(FormatError::MantissaBits(0)));
        assert_eq!(
            BfpFormat::new(5, 24, 128),
            Err(FormatError::MantissaBits(24))
        );
        assert_eq!(BfpFormat::new(5, 2, 0), Err(FormatError::BlockSize));
    }

    #[test]
    fn exponent_bias_and_range() {
        let fmt = BfpFormat::BFP_1S_5E_2M;
        assert_eq!(fmt.exponent_bias(), 15);
        assert_eq!(fmt.exponent_range(), (-15, 16));
    }

    #[test]
    fn max_mantissa_values() {
        assert_eq!(BfpFormat::BFP_1S_5E_2M.max_mantissa(), 3);
        assert_eq!(BfpFormat::BFP_1S_5E_5M.max_mantissa(), 31);
    }

    #[test]
    fn storage_accounting() {
        let fmt = BfpFormat::BFP_1S_5E_2M;
        // 128 elements: 128 * 3 bits + 5 bits = 389 bits = 49 bytes.
        assert_eq!(fmt.storage_bytes(128), 49);
        // Zero elements cost nothing.
        assert_eq!(fmt.storage_bytes(0), 0);
        // Partial block still pays a full exponent.
        assert_eq!(fmt.storage_bytes(1), 1);
    }

    #[test]
    fn amortized_bits() {
        let fmt = BfpFormat::new(5, 2, 128).unwrap();
        let bits = fmt.bits_per_element_amortized();
        assert!((bits - 3.0390625).abs() < 1e-12);
    }
}
