//! BW12x — static cycle bounds via abstract interpretation of the chain
//! schedule.
//!
//! The NPU's scheduler is deterministic: completion cycles depend only on
//! the program, the [`NpuConfig`] timing parameters, and the arrival
//! cycles of NetQ input vectors (§V-C of the paper — "the schedule is
//! static, so latency is known before the first request arrives"). This
//! module replays that recurrence symbolically, with the *data* abstracted
//! away and each NetQ input arrival replaced by an interval
//! `[input_arrival_lo, input_arrival_hi]`. Because every timing equation
//! in the scheduler is monotone in the arrival times (max-plus algebra:
//! only `max`, `+` and saturating `-` of cycle counts appear), replaying
//! once at the lower end and once at the upper end yields guaranteed
//! bounds:
//!
//! ```text
//! lower <= measured cycles <= upper    for any arrivals in the window
//! ```
//!
//! With the default window `[0, 0]` — the single-device serving runtime
//! stages every input before `run` — the two replays coincide and the
//! "bounds" are the *exact* simulator cycle count, which the golden-suite
//! containment tests pin.
//!
//! The replay is *sound, not total*: [`cycle_bounds`] returns `None`
//! whenever the timing-only simulator would fault (capacity overflow,
//! queue underflow against the declared budgets, a zero register write) or
//! when the program is too large to replay cheaply. A program with no
//! bounds has no guaranteed latency; deployment gates treat `None` as "not
//! provable", never as "fits".
//!
//! [`NpuConfig`]: crate::NpuConfig

use serde::Serialize;

use crate::analysis::{AnalysisPass, Diagnostic, PassContext};
use crate::config::NpuConfig;
use crate::isa::{Chain, Instruction, Item, MemId, Program, ScalarReg};
use crate::{mvm, DiagCode};

use super::AnalysisOptions;

/// Replay cost cap: programs whose `Σ items × iterations` exceeds this are
/// not replayed (`cycle_bounds` returns `None`). Far above any real
/// firmware (the golden suite tops out near 60k items) while bounding the
/// analyzer's own runtime on adversarial inputs.
const MAX_REPLAY_ITEMS: u64 = 2_000_000;

/// Matrix-chain tile cap per chain, and the cap on DRAM scoreboard
/// indices the replay will track. Corrupt programs can request absurd
/// `rows × cols` grids; the replay refuses rather than loop.
const MAX_TILES: u64 = 1 << 22;

/// Guaranteed min/max completion cycles for one program on one config.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CycleBounds {
    /// No execution with arrivals inside the declared window finishes in
    /// fewer cycles than this.
    pub lower: u64,
    /// No execution with arrivals inside the declared window takes more
    /// cycles than this.
    pub upper: u64,
}

impl CycleBounds {
    /// Whether a measured cycle count lies inside the bound.
    #[must_use]
    pub fn contains(&self, measured: u64) -> bool {
        self.lower <= measured && measured <= self.upper
    }

    /// Sequential composition: this program followed by `next`.
    #[must_use]
    pub fn then(&self, next: &CycleBounds) -> CycleBounds {
        CycleBounds {
            lower: self.lower.saturating_add(next.lower),
            upper: self.upper.saturating_add(next.upper),
        }
    }

    /// Parallel composition: shards run concurrently, a gather waits for
    /// the slowest, so both ends take the max.
    #[must_use]
    pub fn join_max(&self, other: &CycleBounds) -> CycleBounds {
        CycleBounds {
            lower: self.lower.max(other.lower),
            upper: self.upper.max(other.upper),
        }
    }
}

/// Computes guaranteed cycle bounds for `program` on `config`, with NetQ
/// input arrivals ranging over `[options.input_arrival_lo,
/// options.input_arrival_hi]` and queue budgets as declared in `options`.
///
/// Returns `None` when no bound can be proven: the replay would fault
/// exactly where the timing-only simulator faults (so no measured value
/// exists either), or the program exceeds the replay size cap
/// (`MAX_REPLAY_ITEMS`, 2M scheduled items).
#[must_use]
pub fn cycle_bounds(
    program: &Program,
    config: &NpuConfig,
    options: &AnalysisOptions,
) -> Option<CycleBounds> {
    let mut total: u64 = 0;
    for seg in &program.segments {
        let items = (seg.items.len() as u64).checked_mul(u64::from(seg.iterations))?;
        total = total.checked_add(items)?;
        if total > MAX_REPLAY_ITEMS {
            return None;
        }
    }
    let lo = options.input_arrival_lo;
    let hi = options.input_arrival_hi.max(lo);
    let lower = Replay::new(config, options, lo).run(program)?;
    let upper = if hi == lo {
        lower
    } else {
        Replay::new(config, options, hi).run(program)?
    };
    Some(CycleBounds {
        lower,
        upper: upper.max(lower),
    })
}

/// One end-point replay of the scheduler recurrence: a faithful,
/// data-free mirror of `Npu::run` in timing-only mode with every NetQ
/// vector arriving at the fixed cycle `arrival`.
struct Replay<'a> {
    config: &'a NpuConfig,
    arrival: u64,
    vec_budget: Option<u64>,
    mat_budget: Option<u64>,

    rows: u32,
    cols: u32,
    nios_cursor: u64,
    dispatch_cost: u64,
    mvm_free_at: u64,
    mfu_free_at: u64,
    mem_free_at: u64,
    cycles: u64,

    /// Ready scoreboards: `[initial, addsub 0.., multiply 0..]`, each
    /// `vrf_entries` long — mirrors `VectorFile::ready`.
    vrfs: Vec<Vec<u64>>,
    mrf_ready: Vec<u64>,
    mrf_read_until: Vec<u64>,
    dram_vectors: Vec<u64>,
    dram_matrices: Vec<u64>,

    vec_pops: u64,
    mat_pops: u64,
}

impl<'a> Replay<'a> {
    fn new(config: &'a NpuConfig, options: &AnalysisOptions, arrival: u64) -> Replay<'a> {
        let mfus = config.mfus() as usize;
        let vrf = config.vrf_entries() as usize;
        let mrf = config.mrf_entries() as usize;
        Replay {
            config,
            arrival,
            vec_budget: options.netq_input_vectors,
            mat_budget: options.netq_input_matrices,
            rows: 1,
            cols: 1,
            nios_cursor: 0,
            dispatch_cost: 0,
            mvm_free_at: 0,
            mfu_free_at: 0,
            mem_free_at: 0,
            cycles: 0,
            vrfs: vec![vec![0; vrf]; 1 + 2 * mfus],
            mrf_ready: vec![0; mrf],
            mrf_read_until: vec![0; mrf],
            dram_vectors: Vec::new(),
            dram_matrices: Vec::new(),
            vec_pops: 0,
            mat_pops: 0,
        }
    }

    fn run(mut self, program: &Program) -> Option<u64> {
        let interval = u64::from(self.config.timing().dispatch_interval);
        for segment in &program.segments {
            for iteration in 0..segment.iterations {
                self.dispatch_cost = if iteration == 0 { interval } else { 1 };
                for item in &segment.items {
                    match item {
                        Item::SetReg { reg, value } => self.set_reg(*reg, *value)?,
                        Item::Chain(chain) => self.chain(chain, interval)?,
                    }
                }
            }
        }
        Some(
            self.cycles
                .max(self.mvm_free_at.max(self.mfu_free_at).max(self.mem_free_at)),
        )
    }

    fn set_reg(&mut self, reg: ScalarReg, value: u32) -> Option<()> {
        if value == 0 {
            return None; // SimError::BadRegValue
        }
        self.nios_cursor += self.dispatch_cost;
        match reg {
            ScalarReg::Rows => self.rows = value,
            ScalarReg::Cols => self.cols = value,
        }
        Some(())
    }

    fn chain(&mut self, chain: &Chain, interval: u64) -> Option<()> {
        let n_instr = chain.instructions().len() as u64 + 1;
        self.nios_cursor += if self.dispatch_cost == interval {
            n_instr * interval
        } else {
            self.dispatch_cost
        };
        if chain.is_matrix_chain() {
            self.matrix_chain(chain)
        } else {
            // `validate_chain`: per-chain MFU unit budgets.
            let mfus = self.config.mfus() as usize;
            if chain.addsub_ops() > mfus
                || chain.multiply_ops() > mfus
                || chain.activation_ops() > mfus
            {
                return None; // SimError::MfuCapacityExceeded
            }
            self.vector_chain(chain)
        }
    }

    fn matrix_chain(&mut self, chain: &Chain) -> Option<()> {
        let count = u64::from(self.rows).checked_mul(u64::from(self.cols))?;
        if count > MAX_TILES {
            return None;
        }
        let (src_mem, src_index) = match chain.instructions()[0] {
            Instruction::MRd { mem, index } => (mem, index),
            _ => return None,
        };
        let (dst_mem, dst_index) = match chain.instructions()[1] {
            Instruction::MWr { mem, index } => (mem, index),
            _ => return None,
        };

        let mut dep_ready: u64 = 0;
        if dst_mem == MemId::MatrixRf {
            dep_ready = dep_ready.max(self.mrf_read_until_at(u64::from(dst_index), count));
        }
        for i in 0..count {
            match src_mem {
                MemId::NetQ => {
                    // Matrix pops come from a separate queue with no
                    // arrival stamp — budget accounting only.
                    self.mat_pops += 1;
                    match self.mat_budget {
                        Some(budget) if self.mat_pops <= budget => {}
                        _ => return None, // SimError::NetQueueEmpty
                    }
                }
                MemId::Dram => {
                    let idx = u64::from(src_index).checked_add(i)?;
                    let t = self
                        .dram_matrices
                        .get(usize::try_from(idx).ok()?)
                        .copied()
                        .unwrap_or(0); // host-staged tiles are ready at 0
                    dep_ready = dep_ready.max(t);
                }
                _ => return None,
            }
        }

        let occupancy = count.checked_mul(u64::from(self.config.timing().dram_tile_cycles))?;
        let start = self.nios_cursor.max(dep_ready).max(self.mem_free_at);
        let completion = start.checked_add(occupancy)?;
        self.mem_free_at = completion;
        self.cycles = self.cycles.max(completion);

        for i in 0..count {
            let idx = u64::from(dst_index).checked_add(i)?;
            match dst_mem {
                MemId::MatrixRf => {
                    // `MatrixFile::store` faults out of range.
                    let slot = self.mrf_ready.get_mut(usize::try_from(idx).ok()?)?;
                    *slot = completion;
                }
                MemId::Dram => {
                    if idx > MAX_TILES {
                        return None;
                    }
                    let idx = usize::try_from(idx).ok()?;
                    if self.dram_matrices.len() <= idx {
                        self.dram_matrices.resize(idx + 1, 0);
                    }
                    self.dram_matrices[idx] = completion;
                }
                _ => return None,
            }
        }
        Some(())
    }

    #[allow(clippy::too_many_lines)]
    fn vector_chain(&mut self, chain: &Chain) -> Option<()> {
        let timing = self.config.timing();
        let vrf_access_depth = u64::from(timing.vrf_access_depth);
        let net_depth = u64::from(timing.net_depth);
        let w_in = if chain.has_mv_mul() {
            self.cols
        } else {
            self.rows
        };
        let w_out = self.rows;

        let mut dep_ready: u64 = 0;
        let mut depth: u64 = 0;
        let mut mvm_occ: u64 = 0;
        let mut addsub_seen: usize = 0;
        let mut multiply_seen: usize = 0;
        let mut mvm_tiles: Option<(u32, u64)> = None;
        let mut writes: Vec<(MemId, u32)> = Vec::new();

        for instr in chain.instructions() {
            match *instr {
                Instruction::VRd { mem, index } => {
                    match mem {
                        MemId::NetQ => {
                            self.vec_pops = self.vec_pops.checked_add(u64::from(w_in))?;
                            match self.vec_budget {
                                Some(budget) if self.vec_pops <= budget => {}
                                _ => return None, // SimError::NetQueueEmpty
                            }
                            dep_ready = dep_ready.max(self.arrival.saturating_sub(depth));
                            depth += net_depth;
                        }
                        MemId::Dram => {
                            let t = self.dram_vector_ready_at(index, w_in);
                            dep_ready = dep_ready.max(t.saturating_sub(depth));
                        }
                        vrf => {
                            let t = self.vrf_ready_at(vrf, index, w_in)?;
                            dep_ready = dep_ready.max(t.saturating_sub(depth));
                        }
                    }
                    depth += vrf_access_depth;
                }
                Instruction::MvMul { mrf_index } => {
                    mvm_occ = mvm::occupancy(self.config, self.rows, self.cols);
                    let count = u64::from(self.rows).checked_mul(u64::from(self.cols))?;
                    mvm_tiles = Some((mrf_index, count));
                    // `MatrixFile::ready_at` clamps out-of-range reads.
                    let t = self.mrf_ready_at(u64::from(mrf_index), count);
                    dep_ready = dep_ready.max(t.saturating_sub(depth));
                    depth += u64::from(timing.mvm_depth);
                }
                Instruction::VWr { mem, index } => {
                    depth += vrf_access_depth;
                    if mem == MemId::NetQ {
                        depth += net_depth;
                    }
                    writes.push((mem, index));
                }
                Instruction::VvAdd { index }
                | Instruction::VvASubB { index }
                | Instruction::VvBSubA { index }
                | Instruction::VvMax { index } => {
                    let mem = MemId::AddSubVrf(u8::try_from(addsub_seen).ok()?);
                    addsub_seen += 1;
                    let t = self.vrf_ready_at(mem, index, w_out)?;
                    dep_ready = dep_ready.max(t.saturating_sub(depth));
                    depth += u64::from(timing.mfu_op_depth);
                }
                Instruction::VvMul { index } => {
                    let mem = MemId::MultiplyVrf(u8::try_from(multiply_seen).ok()?);
                    multiply_seen += 1;
                    let t = self.vrf_ready_at(mem, index, w_out)?;
                    dep_ready = dep_ready.max(t.saturating_sub(depth));
                    depth += u64::from(timing.mfu_op_depth);
                }
                Instruction::VRelu | Instruction::VSigm | Instruction::VTanh => {
                    depth += u64::from(timing.mfu_op_depth);
                }
                Instruction::MRd { .. }
                | Instruction::MWr { .. }
                | Instruction::SWr { .. }
                | Instruction::EndChain => return None,
            }
        }

        let mfu_stream = u64::from(self.config.mfu_stream_cycles());
        let (free_at, occupancy) = if mvm_occ > 0 {
            let occ = mvm_occ.max(u64::from(w_out) * mfu_stream);
            (&mut self.mvm_free_at, occ)
        } else {
            let occ = u64::from(w_in.max(w_out)) * mfu_stream;
            if chain.mfu_ops() > 0 {
                (&mut self.mfu_free_at, occ)
            } else {
                (&mut self.mem_free_at, occ)
            }
        };
        let start = self.nios_cursor.max(dep_ready).max(*free_at);
        let busy_until = start.checked_add(occupancy)?;
        *free_at = busy_until;
        let completion = busy_until.checked_add(depth)?;
        self.cycles = self.cycles.max(completion);

        if let Some((base, count)) = mvm_tiles {
            self.mrf_mark_read_until(u64::from(base), count, busy_until);
        }
        for (mem, index) in writes {
            match mem {
                MemId::NetQ => {} // output queue: no scoreboard
                MemId::Dram => {
                    let end = u64::from(index).checked_add(u64::from(w_out))?;
                    if end > MAX_TILES {
                        return None;
                    }
                    let end = usize::try_from(end).ok()?;
                    if self.dram_vectors.len() < end {
                        self.dram_vectors.resize(end, 0);
                    }
                    for slot in &mut self.dram_vectors[index as usize..end] {
                        *slot = completion;
                    }
                }
                vrf => self.vrf_mark_ready(vrf, index, w_out, completion)?,
            }
        }
        Some(())
    }

    /// Mirrors `Npu::vrf`: `None` exactly where it errors (an MFU-owned
    /// file beyond `mfus`, or a non-VRF id).
    fn vrf_slot(&self, mem: MemId) -> Option<usize> {
        let mfus = self.config.mfus() as usize;
        match mem {
            MemId::InitialVrf => Some(0),
            MemId::AddSubVrf(i) if (i as usize) < mfus => Some(1 + i as usize),
            MemId::MultiplyVrf(i) if (i as usize) < mfus => Some(1 + mfus + i as usize),
            _ => None,
        }
    }

    /// `VectorFile::read` + `ready_at`: bounds-checked, max over the span.
    fn vrf_ready_at(&self, mem: MemId, index: u32, width: u32) -> Option<u64> {
        let file = &self.vrfs[self.vrf_slot(mem)?];
        let end = index.checked_add(width)? as usize;
        if end > file.len() || width == 0 {
            return None; // SimError::VrfIndexOutOfRange
        }
        Some(file[index as usize..end].iter().copied().max().unwrap_or(0))
    }

    /// `VectorFile::write` + `mark_ready`: bounds-checked, exact-set.
    fn vrf_mark_ready(&mut self, mem: MemId, index: u32, width: u32, at: u64) -> Option<()> {
        let slot = self.vrf_slot(mem)?;
        let file = &mut self.vrfs[slot];
        let end = index.checked_add(width)? as usize;
        if end > file.len() || width == 0 {
            return None;
        }
        for t in &mut file[index as usize..end] {
            *t = at;
        }
        Some(())
    }

    /// `MatrixFile::ready_at`: clamps the span, 0 when empty.
    fn mrf_ready_at(&self, index: u64, count: u64) -> u64 {
        let len = self.mrf_ready.len() as u64;
        let start = index.min(len) as usize;
        let end = index.saturating_add(count).min(len) as usize;
        self.mrf_ready[start..end]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// `MatrixFile::read_until_at`: clamps, max over the span.
    fn mrf_read_until_at(&self, index: u64, count: u64) -> u64 {
        let len = self.mrf_read_until.len() as u64;
        let start = index.min(len) as usize;
        let end = index.saturating_add(count).min(len) as usize;
        self.mrf_read_until[start..end]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// `MatrixFile::mark_read_until`: clamps, max-extends.
    fn mrf_mark_read_until(&mut self, index: u64, count: u64, at: u64) {
        let len = self.mrf_read_until.len() as u64;
        let start = index.min(len) as usize;
        let end = index.saturating_add(count).min(len) as usize;
        for t in &mut self.mrf_read_until[start..end] {
            *t = (*t).max(at);
        }
    }

    /// `Dram::vector_ready_at`: clamped max, 0 beyond the scoreboard.
    fn dram_vector_ready_at(&self, index: u32, width: u32) -> u64 {
        let len = self.dram_vectors.len();
        let start = (index as usize).min(len);
        let end = (index as usize).saturating_add(width as usize).min(len);
        self.dram_vectors[start..end]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// BW120–BW122: compares the static cycle bound against the SLA declared
/// in [`AnalysisOptions::sla_cycles`]. Silent when no SLA is declared, so
/// the default pipeline stays quiet on plain lint runs.
pub struct CycleBoundPass;

impl AnalysisPass for CycleBoundPass {
    fn name(&self) -> &'static str {
        "cycle-bounds"
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(sla) = cx.options.sla_cycles else {
            return;
        };
        let last_segment = cx.program.segments.len().saturating_sub(1);
        let Some(bounds) = cycle_bounds(cx.program, cx.config, cx.options) else {
            out.push(Diagnostic::new(
                DiagCode::SlaViolation,
                last_segment,
                0,
                format!(
                    "no static cycle bound is provable for this program, so the declared \
                     SLA of {sla} cycles cannot be guaranteed"
                ),
            ));
            return;
        };
        if bounds.lower > sla {
            out.push(Diagnostic::new(
                DiagCode::SlaViolation,
                last_segment,
                0,
                format!(
                    "guaranteed minimum of {} cycles exceeds the declared SLA of {sla} \
                     cycles — unmeetable on this config",
                    bounds.lower
                ),
            ));
        } else if bounds.upper > sla {
            out.push(Diagnostic::new(
                DiagCode::SlaAtRisk,
                last_segment,
                0,
                format!(
                    "worst-case bound of {} cycles exceeds the declared SLA of {sla} \
                     cycles (best case {})",
                    bounds.upper, bounds.lower
                ),
            ));
        } else {
            out.push(Diagnostic::new(
                DiagCode::SlaMet,
                last_segment,
                0,
                format!(
                    "static bound [{}, {}] cycles meets the declared SLA of {sla} cycles",
                    bounds.lower, bounds.upper
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;
    use crate::{analyze_with, ExecMode, Npu, Severity};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(64)
            .build()
            .unwrap()
    }

    fn small_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.begin_loop(3).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .vv_add(0)
            .v_tanh()
            .v_wr(MemId::InitialVrf, 8)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 8)
            .vv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        b.build()
    }

    fn small_options() -> AnalysisOptions {
        AnalysisOptions::default()
            .preload(MemId::MatrixRf, 0, 4)
            .preload(MemId::AddSubVrf(0), 0, 2)
            .preload(MemId::MultiplyVrf(0), 0, 2)
            .with_input_vectors(6)
    }

    fn measured(program: &Program, pushes: usize) -> u64 {
        let mut npu = Npu::with_mode(cfg(), ExecMode::TimingOnly);
        npu.push_input_zeros(pushes);
        npu.run(program).expect("timing run succeeds").cycles
    }

    #[test]
    fn bounds_are_exact_when_inputs_are_staged() {
        let program = small_program();
        let b = cycle_bounds(&program, &cfg(), &small_options()).expect("bounded");
        assert_eq!(b.lower, b.upper, "zero-width arrival window is exact");
        let m = measured(&program, 6);
        assert!(
            b.contains(m),
            "measured {m} outside [{}, {}]",
            b.lower,
            b.upper
        );
        assert_eq!(b.lower, m, "replay mirrors the scheduler exactly");
    }

    #[test]
    fn arrival_window_widens_the_bound_and_still_contains_late_arrivals() {
        let program = small_program();
        let opts = small_options().with_input_arrival(0, 50_000);
        let b = cycle_bounds(&program, &cfg(), &opts).expect("bounded");
        assert!(b.lower < b.upper);

        // An actual run with inputs arriving inside the window must land
        // inside the bound. `push_input_zeros` stamps arrival 0 == lo.
        let m = measured(&program, 6);
        assert!(b.contains(m));
    }

    #[test]
    fn matrix_chains_and_dram_traffic_are_bounded_exactly() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 4)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(4)
            .v_wr(MemId::Dram, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::Dram, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let program = b.build();
        let opts = AnalysisOptions::default()
            .with_input_vectors(2)
            .with_input_matrices(4);

        let bounds = cycle_bounds(&program, &cfg(), &opts).expect("bounded");

        let mut npu = Npu::with_mode(cfg(), ExecMode::TimingOnly);
        npu.push_input_zeros(2);
        let nd = cfg().native_dim() as usize;
        for _ in 0..4 {
            let tile =
                bw_bfp::BfpMatrix::quantize(nd, nd, &vec![0.25; nd * nd], cfg().matrix_format())
                    .unwrap();
            npu.push_input_matrix(tile);
        }
        let m = npu.run(&program).unwrap().cycles;
        assert_eq!(bounds.lower, m);
        assert_eq!(bounds.upper, m);
    }

    #[test]
    fn faulting_programs_have_no_bound() {
        // Pops with no declared input budget.
        let program = small_program();
        assert_eq!(
            cycle_bounds(&program, &cfg(), &AnalysisOptions::default()),
            None
        );

        // Pops beyond the declared budget.
        let short = small_options().with_input_vectors(2);
        assert_eq!(cycle_bounds(&program, &cfg(), &short), None);

        // VRF write out of range.
        let mut b = ProgramBuilder::new();
        b.set_rows(4);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 62)
            .end_chain()
            .unwrap();
        let oob = b.build();
        let opts = AnalysisOptions::default().with_input_vectors(4);
        assert_eq!(cycle_bounds(&oob, &cfg(), &opts), None);
    }

    #[test]
    fn composition_helpers_compose() {
        let a = CycleBounds {
            lower: 10,
            upper: 20,
        };
        let b = CycleBounds {
            lower: 5,
            upper: 40,
        };
        assert_eq!(
            a.then(&b),
            CycleBounds {
                lower: 15,
                upper: 60
            }
        );
        assert_eq!(
            a.join_max(&b),
            CycleBounds {
                lower: 10,
                upper: 40
            }
        );
    }

    #[test]
    fn sla_pass_emits_the_bw12x_family() {
        let program = small_program();
        let exact = cycle_bounds(&program, &cfg(), &small_options())
            .unwrap()
            .lower;

        // Generous SLA: BW122 info.
        let report = analyze_with(&program, &cfg(), small_options().with_sla_cycles(exact));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::SlaMet));
        assert_eq!(report.error_count(), 0);

        // Impossible SLA: BW120 error.
        let report = analyze_with(&program, &cfg(), small_options().with_sla_cycles(exact - 1));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::SlaViolation)
            .expect("BW120 fires");
        assert_eq!(d.severity, Severity::Error);

        // At-risk: lower meets, upper does not.
        let windowed = small_options()
            .with_input_arrival(0, 1_000_000)
            .with_sla_cycles(exact);
        let report = analyze_with(&program, &cfg(), windowed);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::SlaAtRisk));

        // No SLA declared: the pass stays silent.
        let report = analyze_with(&program, &cfg(), small_options());
        assert!(!report.diagnostics.iter().any(|d| matches!(
            d.code,
            DiagCode::SlaMet | DiagCode::SlaAtRisk | DiagCode::SlaViolation
        )));
    }
}
