//! Capacity and structural checks — the original `Program::validate`
//! logic, shared between that API and the diagnostic pipeline.

use crate::config::NpuConfig;
use crate::isa::{Chain, Instruction, Item, MemId, Program};
use crate::validate::{ValidateError, ValidateErrorKind};

use super::{walk, AnalysisPass, DiagCode, Diagnostic, PassContext, WalkMode};

/// Capacity of the vector register file `mem`, or `None` when the config
/// lacks the MFU hosting it.
///
/// Only meaningful for VRF memories: callers gate on [`MemId::is_vrf`]
/// first (the single source of truth for VRF-ness), which keeps the
/// non-VRF arm unreachable — there is no sentinel capacity for NetQ, DRAM,
/// or the MRF.
fn vrf_capacity(config: &NpuConfig, mem: MemId) -> Option<u32> {
    debug_assert!(mem.is_vrf(), "vrf_capacity is only defined for VRFs");
    match mem {
        MemId::InitialVrf => Some(config.vrf_entries()),
        MemId::AddSubVrf(i) | MemId::MultiplyVrf(i) => {
            (u32::from(i) < config.mfus()).then(|| config.vrf_entries())
        }
        MemId::MatrixRf | MemId::NetQ | MemId::Dram => None,
    }
}

/// MFU operand files are addressed by an 8-bit index; chains with more
/// seen operands than that saturate (the per-kind capacity check has
/// already errored long before 256 MFUs could exist).
fn operand_file(seen: usize) -> u8 {
    u8::try_from(seen).unwrap_or(u8::MAX)
}

fn check_vrf(
    config: &NpuConfig,
    at: (usize, usize),
    mem: MemId,
    index: u32,
    width: u32,
    errors: &mut Vec<ValidateError>,
) {
    if !mem.is_vrf() {
        return;
    }
    let Some(capacity) = vrf_capacity(config, mem) else {
        errors.push(ValidateError {
            segment: at.0,
            item: at.1,
            kind: ValidateErrorKind::MissingMfu {
                mem,
                mfus: config.mfus(),
            },
        });
        return;
    };
    if u64::from(index) + u64::from(width) > u64::from(capacity) {
        errors.push(ValidateError {
            segment: at.0,
            item: at.1,
            kind: ValidateErrorKind::VrfOverflow {
                mem,
                index,
                width,
                capacity,
            },
        });
    }
}

fn check_mrf(
    config: &NpuConfig,
    at: (usize, usize),
    index: u32,
    tiles: u32,
    errors: &mut Vec<ValidateError>,
) {
    let capacity = config.mrf_entries();
    if u64::from(index) + u64::from(tiles) > u64::from(capacity) {
        errors.push(ValidateError {
            segment: at.0,
            item: at.1,
            kind: ValidateErrorKind::MrfOverflow {
                index,
                tiles,
                capacity,
            },
        });
    }
}

fn check_chain(
    config: &NpuConfig,
    at: (usize, usize),
    rows: u32,
    cols: u32,
    chain: &Chain,
    errors: &mut Vec<ValidateError>,
) {
    // MFU unit capacity.
    let mfus = config.mfus();
    for (kind, used) in [
        ("add/sub", chain.addsub_ops()),
        ("multiply", chain.multiply_ops()),
        ("activation", chain.activation_ops()),
    ] {
        if used > mfus as usize {
            errors.push(ValidateError {
                segment: at.0,
                item: at.1,
                kind: ValidateErrorKind::MfuCapacity {
                    kind,
                    used,
                    available: mfus,
                },
            });
        }
    }

    let has_mvm = chain.has_mv_mul();
    let w_in = if has_mvm { cols } else { rows };
    let w_out = rows;
    let mut addsub_seen: usize = 0;
    let mut multiply_seen: usize = 0;
    for instr in chain.instructions() {
        match *instr {
            Instruction::VRd { mem, index } => check_vrf(config, at, mem, index, w_in, errors),
            Instruction::VWr { mem, index } => check_vrf(config, at, mem, index, w_out, errors),
            Instruction::MvMul { mrf_index } => {
                check_mrf(config, at, mrf_index, rows.saturating_mul(cols), errors);
            }
            Instruction::MWr {
                mem: MemId::MatrixRf,
                index,
            } => check_mrf(config, at, index, rows.saturating_mul(cols), errors),
            Instruction::VvAdd { index }
            | Instruction::VvASubB { index }
            | Instruction::VvBSubA { index }
            | Instruction::VvMax { index } => {
                let mem = MemId::AddSubVrf(operand_file(addsub_seen));
                check_vrf(config, at, mem, index, w_out, errors);
                addsub_seen += 1;
            }
            Instruction::VvMul { index } => {
                let mem = MemId::MultiplyVrf(operand_file(multiply_seen));
                check_vrf(config, at, mem, index, w_out, errors);
                multiply_seen += 1;
            }
            _ => {}
        }
    }
}

/// Collects every capacity/structural violation of `program` against
/// `config`. Backs both [`Program::validate`] and [`CapacityPass`]; one
/// static iteration per segment suffices because accesses do not change
/// across iterations.
pub(crate) fn collect(program: &Program, config: &NpuConfig) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    walk(program, WalkMode::Static, |step| {
        let at = (step.segment, step.item);
        match step.item_ref {
            Item::SetReg { reg, value } => {
                if *value == 0 {
                    errors.push(ValidateError {
                        segment: at.0,
                        item: at.1,
                        kind: ValidateErrorKind::ZeroRegister(*reg),
                    });
                }
            }
            Item::Chain(chain) => {
                check_chain(config, at, step.rows, step.cols, chain, &mut errors);
            }
        }
    });
    errors
}

/// BW001–BW006: capacity and structural checks as a diagnostic pass.
///
/// Wraps the same implementation as [`Program::validate`] so the two
/// frontends can never disagree; each structured [`ValidateError`] becomes
/// a diagnostic, and every rejected zero register write additionally gets
/// a BW006 info note recording the analyzer/scheduler divergence.
pub struct CapacityPass;

impl AnalysisPass for CapacityPass {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        for err in collect(cx.program, cx.config) {
            let code = match err.kind {
                ValidateErrorKind::ZeroRegister(_) => DiagCode::ZeroRegister,
                ValidateErrorKind::VrfOverflow { .. } => DiagCode::VrfOverflow,
                ValidateErrorKind::MrfOverflow { .. } => DiagCode::MrfOverflow,
                ValidateErrorKind::MissingMfu { .. } => DiagCode::MissingMfu,
                ValidateErrorKind::MfuCapacity { .. } => DiagCode::MfuCapacity,
            };
            let stale = match &err.kind {
                ValidateErrorKind::ZeroRegister(reg) => Some(format!(
                    "analysis continues with the previous {reg} value after the \
                     rejected zero write; the scheduler faults at dispatch instead, \
                     so later diagnostics in this report assume the stale value"
                )),
                _ => None,
            };
            let (segment, item) = (err.segment, err.item);
            out.push(Diagnostic::new(code, segment, item, err.kind.to_string()));
            if let Some(message) = stale {
                out.push(Diagnostic::new(
                    DiagCode::StaleRegister,
                    segment,
                    item,
                    message,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Severity};
    use crate::isa::ProgramBuilder;

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    #[test]
    fn pass_mirrors_validate_errors() {
        let mut b = ProgramBuilder::new();
        b.set_rows(4);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 30) // 30..34 > 32
            .end_chain()
            .unwrap();
        let p = b.build();
        let errors = p.validate(&cfg());
        let report = analyze(&p, &cfg());
        let caps: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::VrfOverflow)
            .collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(caps.len(), 1);
        assert_eq!(
            (caps[0].segment, caps[0].item),
            (errors[0].segment, errors[0].item)
        );
        assert_eq!(caps[0].severity, Severity::Error);
    }

    #[test]
    fn zero_register_emits_error_and_stale_info() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.set_rows(0);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze(&b.build(), &cfg());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ZeroRegister && d.item == 2));
        let stale: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::StaleRegister)
            .collect();
        assert_eq!(stale.len(), 1);
        assert_eq!((stale[0].segment, stale[0].item), (0, 2));
        assert_eq!(stale[0].severity, Severity::Info);
    }

    #[test]
    fn non_vrf_memories_have_no_capacity() {
        let cfg = cfg();
        assert_eq!(vrf_capacity(&cfg, MemId::InitialVrf), Some(32));
        assert_eq!(vrf_capacity(&cfg, MemId::AddSubVrf(1)), Some(32));
        assert_eq!(vrf_capacity(&cfg, MemId::AddSubVrf(2)), None);
        assert_eq!(vrf_capacity(&cfg, MemId::MultiplyVrf(200)), None);
    }
}
