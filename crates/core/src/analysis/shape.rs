//! Chain-shape lints: suspicious but structurally legal chains.
//!
//! * **BW040** (warning) — an `mv_mul` executes while `rows`/`cols` still
//!   hold the power-on 1×1 default: the matrix-vector unit multiplies a
//!   single native tile, which is almost never what firmware means.
//! * **BW041** (warning) — an operation is an identity on its input
//!   (e.g. `v_relu` directly after `v_relu` or `v_sigm`).
//! * **BW042** (warning) — two multicast writes in one chain cover
//!   overlapping destination ranges; the later write wins and the earlier
//!   one is wasted bandwidth.
//! * **BW043** (warning) — a chain with an `mv_mul` reads and writes
//!   overlapping ranges of the same memory at different widths (`cols`
//!   native vectors in, `rows` out): an aliasing width mismatch.

use crate::isa::{Chain, Instruction, Item, MemId, Opcode};

use super::{walk, AnalysisPass, DiagCode, Diagnostic, PassContext, Step, WalkMode};

fn overlaps(a: u32, a_w: u32, b: u32, b_w: u32) -> bool {
    u64::from(a) < u64::from(b) + u64::from(b_w) && u64::from(b) < u64::from(a) + u64::from(a_w)
}

fn check_chain(step: &Step<'_>, chain: &Chain, out: &mut Vec<Diagnostic>) {
    let (segment, item) = (step.segment, step.item);
    let w_in = step.w_in(chain);
    let w_out = step.w_out();

    if chain.has_mv_mul() && !step.tiling_set {
        out.push(Diagnostic::new(
            DiagCode::DefaultTiling,
            segment,
            item,
            "mv_mul executes with the power-on 1x1 tiling; neither rows nor \
             cols has been set"
                .into(),
        ));
    }

    // Redundant identity ops: relu of an already non-negative value.
    for pair in chain.instructions().windows(2) {
        let prev = pair[0].opcode();
        if pair[1].opcode() == Opcode::VRelu && matches!(prev, Opcode::VRelu | Opcode::VSigm) {
            out.push(Diagnostic::new(
                DiagCode::RedundantOp,
                segment,
                item,
                format!(
                    "v_relu after {} is an identity: its input is already \
                     non-negative",
                    prev.mnemonic()
                ),
            ));
        }
    }

    // Destination overlap among the chain's multicast writes, and between
    // any write and the (differently sized) source range of an mv_mul
    // chain.
    let src = chain.instructions().first().and_then(|i| match *i {
        Instruction::VRd { mem, index } if mem.is_vrf() => Some((mem, index)),
        _ => None,
    });
    let mut writes: Vec<(MemId, u32)> = Vec::new();
    for instr in chain.instructions() {
        let Instruction::VWr { mem, index } = *instr else {
            continue;
        };
        if mem != MemId::NetQ {
            for &(pmem, pindex) in &writes {
                if pmem == mem && overlaps(pindex, w_out, index, w_out) {
                    out.push(Diagnostic::new(
                        DiagCode::OverlappingMulticast,
                        segment,
                        item,
                        format!(
                            "multicast writes v_wr({mem}, {pindex}) and \
                             v_wr({mem}, {index}) overlap at width {w_out}; \
                             the later write wins"
                        ),
                    ));
                }
            }
            if chain.has_mv_mul() && w_in != w_out {
                if let Some((smem, sindex)) = src {
                    if smem == mem && overlaps(sindex, w_in, index, w_out) {
                        out.push(Diagnostic::new(
                            DiagCode::AliasedChainIo,
                            segment,
                            item,
                            format!(
                                "chain reads {mem}[{sindex}..{}] at width cols={w_in} \
                                 but writes the overlapping {mem}[{index}..{}] at \
                                 width rows={w_out}",
                                u64::from(sindex) + u64::from(w_in),
                                u64::from(index) + u64::from(w_out),
                            ),
                        ));
                    }
                }
            }
            writes.push((mem, index));
        }
    }
}

/// BW040–BW043: chain-shape lints.
pub struct ChainShapePass;

impl AnalysisPass for ChainShapePass {
    fn name(&self) -> &'static str {
        "chain-shape"
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        walk(cx.program, WalkMode::Runtime, |step| {
            if step.unroll > 0 {
                return;
            }
            if let Item::Chain(chain) = step.item_ref {
                check_chain(step, chain, out);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze_with, AnalysisOptions, DiagCode};
    use crate::config::NpuConfig;
    use crate::isa::{MemId, ProgramBuilder};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    fn options() -> AnalysisOptions {
        AnalysisOptions::default()
            .with_input_vectors(1_000)
            .preload(MemId::InitialVrf, 0, 32)
            .preload(MemId::MatrixRf, 0, 16)
    }

    #[test]
    fn mv_mul_with_default_tiling_warns() {
        let mut b = ProgramBuilder::new();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), options());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::DefaultTiling)
            .expect("BW040 expected");
        assert_eq!((d.segment, d.item), (0, 0));
    }

    #[test]
    fn relu_after_sigmoid_is_redundant() {
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.v_rd(MemId::NetQ, 0)
            .v_sigm()
            .v_relu()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), options());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::RedundantOp),
            "{report}"
        );
    }

    #[test]
    fn overlapping_multicast_destinations_warn() {
        let mut b = ProgramBuilder::new();
        b.set_rows(4);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 8)
            .v_wr(MemId::InitialVrf, 10) // 10..14 overlaps 8..12
            .end_chain()
            .unwrap();
        // A second chain reads both ranges so liveness stays quiet.
        b.v_rd(MemId::InitialVrf, 8)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 10)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), options());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::OverlappingMulticast)
            .expect("BW042 expected");
        assert_eq!((d.segment, d.item), (0, 1));
    }

    #[test]
    fn aliased_mv_mul_io_warns_on_width_mismatch() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(4);
        b.v_rd(MemId::InitialVrf, 4) // reads 4..8 at width cols=4
            .mv_mul(0)
            .v_wr(MemId::InitialVrf, 6) // writes 6..8 at width rows=2
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 6)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), options());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::AliasedChainIo),
            "{report}"
        );
    }

    #[test]
    fn disjoint_multicast_is_quiet() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 8)
            .v_wr(MemId::InitialVrf, 10)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 8)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 10)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), options());
        assert!(report.is_clean(), "{report}");
    }
}
