//! BW11x — interprocedural, whole-artifact analysis.
//!
//! A sharded deployment is a pipeline of *stages*; each stage is either a
//! single program or a scatter/gather group of shard programs (§II-A's
//! spatially distributed hardware microservices). The single-program
//! linter cannot see cross-shard contracts: a shard that pops more input
//! vectors than its peers scatter blocks forever on its NetQ, and no
//! amount of per-device linting will say so. This module models the
//! artifact as a dataflow graph over per-unit *summaries* and proves (or
//! refutes) the scatter/gather transfer contract:
//!
//! * every stage's input availability is solved by a worklist fixpoint
//!   over the stage graph — a stage whose input never becomes available
//!   is part of an ordering cycle (BW115);
//! * for each shard of a resolved stage, the runtime scatters
//!   `ceil(incoming_dim / native_dim)` vectors and gathers the shard's
//!   declared output grid; the program's closed-form pop/push totals must
//!   match exactly, or the artifact deadlocks (BW110) / leaves residue
//!   that poisons the next request (BW111);
//! * inter-stage dimensions must agree (BW112), serving shards must not
//!   pop matrix tiles the runtime never pushes (BW113), and a "sharded"
//!   group of one is flagged as degenerate (BW114);
//! * with an SLA declared, per-unit [`CycleBounds`] compose across the
//!   pipeline — sequential stages add, parallel shards take the max — and
//!   the artifact-level BW12x verdict is emitted against the composed
//!   bound.
//!
//! The shard ownership scheme (`worker w owns shard k of a width-`K`
//! group iff `w % K == k`) never changes which transfers occur, only
//! which worker executes them, so the balance proof is ownership-
//! independent: it quantifies over the transfers themselves.

use super::bounds::{cycle_bounds, CycleBounds};
use super::netq::{program_traffic, TrafficTotals};
use super::{AnalysisOptions, AnalysisReport, DiagCode, Diagnostic};
use crate::config::NpuConfig;
use crate::isa::Program;

/// One analyzable unit of an artifact: a single device's program plus the
/// deployment facts its host runtime establishes.
#[derive(Clone, Debug)]
pub struct ArtifactUnit<'a> {
    /// Diagnostic anchor, e.g. `"big#g0s1"`.
    pub name: String,
    /// The unit's firmware.
    pub program: &'a Program,
    /// The NPU config the unit is pinned on.
    pub config: &'a NpuConfig,
    /// Preloads, queue budgets, and bound window for this unit.
    pub options: AnalysisOptions,
    /// Logical input width (elements) the unit consumes per request.
    pub input_dim: usize,
    /// Logical output width (elements) the unit produces per request.
    pub output_dim: usize,
}

impl ArtifactUnit<'_> {
    /// Vectors the runtime scatters to this unit for a `dim`-element
    /// payload: `ceil(dim / native_dim)`, the padded-push contract.
    fn vectors_for(&self, dim: usize) -> u128 {
        let nd = self.config.native_dim() as usize;
        (dim.div_ceil(nd.max(1))) as u128
    }
}

/// One pipeline stage: a single unit, or a scatter/gather shard group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactStage {
    /// One unit runs the whole stage.
    Single(usize),
    /// Shards split the stage; each receives the full scatter input and
    /// their gathered outputs concatenate.
    Sharded(Vec<usize>),
}

impl ArtifactStage {
    /// Member unit indices.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        match self {
            ArtifactStage::Single(u) => std::slice::from_ref(u),
            ArtifactStage::Sharded(us) => us,
        }
    }
}

/// Where a stage's input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StageInput {
    /// The linear default: the previous stage, or the artifact input for
    /// stage 0.
    Default,
    /// The artifact's external input.
    External,
    /// The gathered output of a specific stage.
    Stage(usize),
}

/// The whole-artifact view the interprocedural passes run over.
#[derive(Clone, Debug)]
pub struct ArtifactView<'a> {
    name: String,
    input_dim: usize,
    units: Vec<ArtifactUnit<'a>>,
    stages: Vec<ArtifactStage>,
    stage_inputs: Vec<StageInput>,
    sla_cycles: Option<u64>,
}

impl<'a> ArtifactView<'a> {
    /// An empty view for the artifact `name` taking `input_dim` elements.
    #[must_use]
    pub fn new(name: impl Into<String>, input_dim: usize) -> ArtifactView<'a> {
        ArtifactView {
            name: name.into(),
            input_dim,
            units: Vec::new(),
            stages: Vec::new(),
            stage_inputs: Vec::new(),
            sla_cycles: None,
        }
    }

    /// Registers a unit; returns its index for stage membership.
    pub fn add_unit(&mut self, unit: ArtifactUnit<'a>) -> usize {
        self.units.push(unit);
        self.units.len() - 1
    }

    /// Appends a single-unit stage; returns the stage index.
    pub fn push_single(&mut self, unit: usize) -> usize {
        self.stages.push(ArtifactStage::Single(unit));
        self.stage_inputs.push(StageInput::Default);
        self.stages.len() - 1
    }

    /// Appends a scatter/gather stage over `units`; returns the stage
    /// index.
    pub fn push_sharded(&mut self, units: Vec<usize>) -> usize {
        self.stages.push(ArtifactStage::Sharded(units));
        self.stage_inputs.push(StageInput::Default);
        self.stages.len() - 1
    }

    /// Overrides which stage feeds `stage` (default: the previous one).
    /// Declaring a self or mutually-referential producer creates an
    /// ordering cycle the fixpoint will refuse (BW115).
    pub fn set_stage_input(&mut self, stage: usize, producer: usize) {
        self.stage_inputs[stage] = StageInput::Stage(producer);
    }

    /// Declares that `stage` consumes the artifact's external input
    /// rather than a predecessor's gather.
    pub fn set_stage_input_external(&mut self, stage: usize) {
        self.stage_inputs[stage] = StageInput::External;
    }

    /// Declares the artifact-level SLA in cycles (of the slowest-clock
    /// member device, when clocks differ).
    #[must_use]
    pub fn with_sla_cycles(mut self, cycles: u64) -> ArtifactView<'a> {
        self.sla_cycles = Some(cycles);
        self
    }

    /// The artifact name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered units.
    #[must_use]
    pub fn units(&self) -> &[ArtifactUnit<'a>] {
        &self.units
    }

    /// The pipeline stages.
    #[must_use]
    pub fn stages(&self) -> &[ArtifactStage] {
        &self.stages
    }

    /// The declared artifact input width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

/// Closed-form facts about one unit, computed once and shared by every
/// artifact pass — the "per-segment summary" of the fixpoint engine.
#[derive(Clone, Debug)]
pub struct UnitSummary {
    /// Input vectors the program pops from its NetQ per run.
    pub vec_pops: u128,
    /// Output vectors the program pushes per run.
    pub vec_pushes: u128,
    /// Matrix tiles the program pops per run.
    pub mat_pops: u128,
    /// Static cycle bounds, when provable.
    pub bounds: Option<CycleBounds>,
}

/// The solved dataflow facts of one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageFlow {
    /// The element width delivered to this stage, once its producer is
    /// known to complete. `None` = unresolved (ordering cycle).
    pub input_dim: Option<usize>,
    /// The stage's gathered output width: the concatenation of member
    /// outputs.
    pub output_dim: usize,
}

/// Everything an [`ArtifactPass`] sees.
pub struct ArtifactContext<'a, 'v> {
    /// The artifact under analysis.
    pub view: &'v ArtifactView<'a>,
    /// Per-unit summaries, indexed like [`ArtifactView::units`].
    pub summaries: &'v [UnitSummary],
    /// Per-stage solved flows, indexed like [`ArtifactView::stages`].
    pub flows: &'v [StageFlow],
}

/// An artifact-level analysis pass. The program-level [`AnalysisPass`]
/// sees one `Program`; an `ArtifactPass` sees the whole pipeline with
/// summaries and solved flows.
///
/// [`AnalysisPass`]: super::AnalysisPass
pub trait ArtifactPass {
    /// Short stable name for tooling.
    fn name(&self) -> &'static str;
    /// Appends diagnostics for the artifact.
    fn run(&self, cx: &ArtifactContext<'_, '_>, out: &mut Vec<Diagnostic>);
}

fn producer_of(view: &ArtifactView<'_>, stage: usize) -> StageInput {
    match view.stage_inputs[stage] {
        StageInput::Default if stage == 0 => StageInput::External,
        StageInput::Default => StageInput::Stage(stage - 1),
        declared => declared,
    }
}

/// The worklist fixpoint: propagates input availability through the stage
/// graph. Stages fed by the artifact input seed the worklist; resolving a
/// stage releases its consumers. Anything left unresolved depends —
/// directly or transitively — on its own output.
fn solve_flows(view: &ArtifactView<'_>) -> Vec<StageFlow> {
    let n = view.stages.len();
    let mut flows: Vec<StageFlow> = view
        .stages
        .iter()
        .map(|stage| StageFlow {
            input_dim: None,
            output_dim: stage
                .members()
                .iter()
                .filter_map(|&u| view.units.get(u))
                .map(|u| u.output_dim)
                .sum(),
        })
        .collect();

    let mut worklist: Vec<usize> = (0..n)
        .filter(|&s| producer_of(view, s) == StageInput::External)
        .collect();
    while let Some(s) = worklist.pop() {
        if flows[s].input_dim.is_some() {
            continue;
        }
        flows[s].input_dim = Some(match producer_of(view, s) {
            StageInput::External => view.input_dim,
            StageInput::Stage(p) if p < n => flows[p].output_dim,
            _ => continue, // dangling producer: stays unresolved
        });
        for (c, f) in flows.iter().enumerate() {
            if producer_of(view, c) == StageInput::Stage(s) && f.input_dim.is_none() {
                worklist.push(c);
            }
        }
    }
    flows
}

fn summarize(view: &ArtifactView<'_>) -> Vec<UnitSummary> {
    view.units
        .iter()
        .map(|u| {
            let t: TrafficTotals = program_traffic(u.program);
            UnitSummary {
                vec_pops: t.vec_pops,
                vec_pushes: t.vec_pushes,
                mat_pops: t.mat_pops,
                bounds: cycle_bounds(u.program, u.config, &u.options),
            }
        })
        .collect()
}

/// BW110/BW111/BW113/BW114: the cross-shard NetQ balance and
/// scatter/gather deadlock proof.
pub struct ShardBalancePass;

impl ArtifactPass for ShardBalancePass {
    fn name(&self) -> &'static str {
        "shard-balance"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, cx: &ArtifactContext<'_, '_>, out: &mut Vec<Diagnostic>) {
        for (si, stage) in cx.view.stages().iter().enumerate() {
            if let ArtifactStage::Sharded(members) = stage {
                if members.len() == 1 {
                    let name = cx
                        .view
                        .units()
                        .get(members[0])
                        .map_or_else(|| cx.view.name().to_owned(), |u| u.name.clone());
                    out.push(Diagnostic::for_unit(
                        DiagCode::ShardDegenerate,
                        name,
                        si,
                        0,
                        "scatter/gather group of one shard: the split adds network \
                         hops without dividing any work"
                            .to_owned(),
                    ));
                }
            }
            for &ui in stage.members() {
                let Some(unit) = cx.view.units().get(ui) else {
                    continue;
                };
                let s = &cx.summaries[ui];

                if s.mat_pops > 0 {
                    out.push(Diagnostic::for_unit(
                        DiagCode::ShardMatrixPop,
                        unit.name.clone(),
                        si,
                        0,
                        format!(
                            "program pops {} matrix tile(s) from its NetQ, but the \
                             serving runtime only scatters vectors — the pop blocks \
                             forever",
                            s.mat_pops
                        ),
                    ));
                }

                // Scatter side: what peers push vs what the shard pops.
                if let Some(dim) = cx.flows[si].input_dim {
                    let supply = unit.vectors_for(dim);
                    if s.vec_pops > supply {
                        out.push(Diagnostic::for_unit(
                            DiagCode::ShardPopUnmatched,
                            unit.name.clone(),
                            si,
                            0,
                            format!(
                                "shard pops {} input vector(s) per request but the \
                                 scatter of a {dim}-element payload supplies only \
                                 {supply} — no peer push matches the excess pop and \
                                 the shard deadlocks",
                                s.vec_pops
                            ),
                        ));
                    } else if s.vec_pops < supply {
                        out.push(Diagnostic::for_unit(
                            DiagCode::ShardPushExcess,
                            unit.name.clone(),
                            si,
                            0,
                            format!(
                                "scatter supplies {supply} input vector(s) per request \
                                 but the shard pops only {} — the residue is consumed \
                                 by the next request and corrupts it",
                                s.vec_pops
                            ),
                        ));
                    }
                }

                // Gather side: what the shard pushes vs what the runtime
                // collects.
                if let Some(expected) = unit.options.netq_expected_outputs {
                    let expected = u128::from(expected);
                    if s.vec_pushes < expected {
                        out.push(Diagnostic::for_unit(
                            DiagCode::ShardPopUnmatched,
                            unit.name.clone(),
                            si,
                            0,
                            format!(
                                "gather waits for {expected} output vector(s) but the \
                                 shard pushes only {} — the gather blocks forever",
                                s.vec_pushes
                            ),
                        ));
                    } else if s.vec_pushes > expected {
                        out.push(Diagnostic::for_unit(
                            DiagCode::ShardPushExcess,
                            unit.name.clone(),
                            si,
                            0,
                            format!(
                                "shard pushes {} output vector(s) but the gather \
                                 collects only {expected} — the residue poisons the \
                                 next gather",
                                s.vec_pushes
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// BW112/BW115: inter-stage dimension agreement and ordering-cycle
/// detection over the solved flows.
pub struct StageFlowPass;

impl ArtifactPass for StageFlowPass {
    fn name(&self) -> &'static str {
        "stage-flow"
    }

    fn run(&self, cx: &ArtifactContext<'_, '_>, out: &mut Vec<Diagnostic>) {
        for (si, stage) in cx.view.stages().iter().enumerate() {
            let anchor = stage
                .members()
                .first()
                .and_then(|&u| cx.view.units().get(u))
                .map_or_else(|| cx.view.name().to_owned(), |u| u.name.clone());
            let Some(dim) = cx.flows[si].input_dim else {
                out.push(Diagnostic::for_unit(
                    DiagCode::ShardOrderingCycle,
                    anchor,
                    si,
                    0,
                    "stage input depends (transitively) on the stage's own output \
                     — the scatter/gather ordering is cyclic and never starts"
                        .to_owned(),
                ));
                continue;
            };
            for &ui in stage.members() {
                let Some(unit) = cx.view.units().get(ui) else {
                    continue;
                };
                if unit.input_dim != dim {
                    out.push(Diagnostic::for_unit(
                        DiagCode::ShardDimMismatch,
                        unit.name.clone(),
                        si,
                        0,
                        format!(
                            "member consumes {}-element inputs but the upstream stage \
                             gathers {dim} elements",
                            unit.input_dim
                        ),
                    ));
                }
            }
        }
    }
}

/// BW120–BW122 at artifact scope: composes per-unit bounds across the
/// pipeline and compares against the artifact SLA.
pub struct ArtifactSlaPass;

impl ArtifactPass for ArtifactSlaPass {
    fn name(&self) -> &'static str {
        "artifact-sla"
    }

    fn run(&self, cx: &ArtifactContext<'_, '_>, out: &mut Vec<Diagnostic>) {
        let Some(sla) = cx.view.sla_cycles else {
            return;
        };
        let name = cx.view.name().to_owned();
        let Some(bounds) = compose_bounds(cx.view, cx.summaries) else {
            out.push(Diagnostic::for_unit(
                DiagCode::SlaViolation,
                name,
                0,
                0,
                format!(
                    "no static cycle bound is provable for the artifact, so the \
                     declared SLA of {sla} cycles cannot be guaranteed"
                ),
            ));
            return;
        };
        if bounds.lower > sla {
            out.push(Diagnostic::for_unit(
                DiagCode::SlaViolation,
                name,
                0,
                0,
                format!(
                    "guaranteed minimum of {} cycles across the pipeline exceeds the \
                     declared SLA of {sla} cycles — unmeetable on this config",
                    bounds.lower
                ),
            ));
        } else if bounds.upper > sla {
            out.push(Diagnostic::for_unit(
                DiagCode::SlaAtRisk,
                name,
                0,
                0,
                format!(
                    "worst-case pipeline bound of {} cycles exceeds the declared SLA \
                     of {sla} cycles (best case {})",
                    bounds.upper, bounds.lower
                ),
            ));
        } else {
            out.push(Diagnostic::for_unit(
                DiagCode::SlaMet,
                name,
                0,
                0,
                format!(
                    "static pipeline bound [{}, {}] cycles meets the declared SLA of \
                     {sla} cycles",
                    bounds.lower, bounds.upper
                ),
            ));
        }
    }
}

fn compose_bounds(view: &ArtifactView<'_>, summaries: &[UnitSummary]) -> Option<CycleBounds> {
    let mut total = CycleBounds { lower: 0, upper: 0 };
    for stage in view.stages() {
        let mut stage_bounds: Option<CycleBounds> = None;
        for &ui in stage.members() {
            let b = summaries.get(ui)?.bounds?;
            stage_bounds = Some(match stage_bounds {
                Some(acc) => acc.join_max(&b),
                None => b,
            });
        }
        total = total.then(&stage_bounds?);
    }
    Some(total)
}

/// Composed static cycle bounds for the whole artifact: sequential stages
/// add, parallel shards take the max (the gather waits for the slowest).
/// `None` when any unit has no provable bound.
#[must_use]
pub fn artifact_cycle_bounds(view: &ArtifactView<'_>) -> Option<CycleBounds> {
    compose_bounds(view, &summarize(view))
}

/// Runs the default artifact passes — [`ShardBalancePass`],
/// [`StageFlowPass`], [`ArtifactSlaPass`] — over `view` and returns the
/// deduplicated, deterministically ordered report.
#[must_use]
pub fn analyze_artifact(view: &ArtifactView<'_>) -> AnalysisReport {
    analyze_artifact_with(view, &[&ShardBalancePass, &StageFlowPass, &ArtifactSlaPass])
}

/// Runs a custom artifact pass list over `view`.
#[must_use]
pub fn analyze_artifact_with(
    view: &ArtifactView<'_>,
    passes: &[&dyn ArtifactPass],
) -> AnalysisReport {
    let summaries = summarize(view);
    let flows = solve_flows(view);
    let cx = ArtifactContext {
        view,
        summaries: &summaries,
        flows: &flows,
    };
    let mut diagnostics = Vec::new();
    for pass in passes {
        pass.run(&cx, &mut diagnostics);
    }
    super::finish_report(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MemId, ProgramBuilder};
    use crate::Severity;

    const ND: u32 = 8;

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(ND)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(64)
            .build()
            .unwrap()
    }

    /// A shard that pops `pops` input vectors and pushes `pushes` outputs.
    fn shard_program(pops: u32, pushes: u32) -> Program {
        let mut b = ProgramBuilder::new();
        for _ in 0..pops {
            b.set_rows(1);
            b.v_rd(MemId::NetQ, 0)
                .v_wr(MemId::InitialVrf, 0)
                .end_chain()
                .unwrap();
        }
        for _ in 0..pushes {
            b.set_rows(1);
            b.v_rd(MemId::InitialVrf, 0)
                .v_wr(MemId::NetQ, 0)
                .end_chain()
                .unwrap();
        }
        b.build()
    }

    fn options(expected_outputs: u64) -> AnalysisOptions {
        AnalysisOptions::default()
            .preload(MemId::InitialVrf, 0, 64)
            .with_input_vectors(1 << 20)
            .with_expected_outputs(expected_outputs)
    }

    fn unit<'a>(
        name: &str,
        program: &'a Program,
        config: &'a NpuConfig,
        input_dim: usize,
        output_dim: usize,
        expected_outputs: u64,
    ) -> ArtifactUnit<'a> {
        ArtifactUnit {
            name: name.to_owned(),
            program,
            config,
            options: options(expected_outputs),
            input_dim,
            output_dim,
        }
    }

    #[test]
    fn balanced_sharded_artifact_is_clean() {
        let config = cfg();
        // Stage 0: two shards each pop the full 2-vector scatter (16
        // elements) and push one output vector; the gather concatenates
        // to 16 elements. Stage 1: a single tail consuming the 16.
        let shard = shard_program(2, 1);
        let tail = shard_program(2, 2);
        let mut view = ArtifactView::new("m", 16);
        let a = view.add_unit(unit("m#g0s0", &shard, &config, 16, 8, 1));
        let b = view.add_unit(unit("m#g0s1", &shard, &config, 16, 8, 1));
        let c = view.add_unit(unit("m#seg1", &tail, &config, 16, 16, 2));
        view.push_sharded(vec![a, b]);
        view.push_single(c);
        let report = analyze_artifact(&view);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unmatched_pop_deadlocks_bw110() {
        let config = cfg();
        // Pops 3 vectors but the 16-element scatter supplies 2.
        let greedy = shard_program(3, 1);
        let peer = shard_program(2, 1);
        let mut view = ArtifactView::new("m", 16);
        let a = view.add_unit(unit("m#g0s0", &greedy, &config, 16, 8, 1));
        let b = view.add_unit(unit("m#g0s1", &peer, &config, 16, 8, 1));
        view.push_sharded(vec![a, b]);
        let report = analyze_artifact(&view);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::ShardPopUnmatched)
            .expect("BW110 fires");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.unit.as_deref(), Some("m#g0s0"));
    }

    #[test]
    fn push_residue_and_starved_gather_are_flagged() {
        let config = cfg();
        // Pushes 2 vectors, gather collects 1: residue (BW111).
        let chatty = shard_program(2, 2);
        let mut view = ArtifactView::new("m", 16);
        let a = view.add_unit(unit("m#seg0", &chatty, &config, 16, 8, 1));
        view.push_single(a);
        let report = analyze_artifact(&view);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardPushExcess));

        // Pushes 1, gather waits for 2: deadlock (BW110).
        let quiet = shard_program(2, 1);
        let mut view = ArtifactView::new("m", 16);
        let a = view.add_unit(unit("m#seg0", &quiet, &config, 16, 16, 2));
        view.push_single(a);
        let report = analyze_artifact(&view);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardPopUnmatched));
    }

    #[test]
    fn dim_mismatch_matrix_pop_and_degenerate_group() {
        let config = cfg();
        // Stage 1 member expects 24-element input but stage 0 gathers 8.
        let head = shard_program(2, 1);
        let tail = shard_program(1, 1);
        let mut view = ArtifactView::new("m", 16);
        let a = view.add_unit(unit("m#seg0", &head, &config, 16, 8, 1));
        let b = view.add_unit(unit("m#seg1", &tail, &config, 24, 8, 1));
        view.push_single(a);
        view.push_sharded(vec![b]); // degenerate group of one
        let report = analyze_artifact(&view);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardDimMismatch));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardDegenerate));

        // A shard popping matrix tiles from the serving NetQ.
        let mut mb = ProgramBuilder::new();
        mb.set_rows(1).set_cols(1);
        mb.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        let mat = mb.build();
        let mut view = ArtifactView::new("m", 8);
        let u = view.add_unit(ArtifactUnit {
            name: "m#seg0".into(),
            program: &mat,
            config: &config,
            options: AnalysisOptions::default().with_input_matrices(1),
            input_dim: 8,
            output_dim: 8,
        });
        view.push_single(u);
        let report = analyze_artifact(&view);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardMatrixPop));
    }

    #[test]
    fn ordering_cycle_is_refused_by_the_fixpoint() {
        let config = cfg();
        let p = shard_program(1, 1);
        let mut view = ArtifactView::new("m", 8);
        let a = view.add_unit(unit("m#seg0", &p, &config, 8, 8, 1));
        let b = view.add_unit(unit("m#seg1", &p, &config, 8, 8, 1));
        let s0 = view.push_single(a);
        let s1 = view.push_single(b);
        // s0 consumes s1's output while s1 consumes s0's: a cycle.
        view.set_stage_input(s0, s1);
        view.set_stage_input(s1, s0);
        let report = analyze_artifact(&view);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == DiagCode::ShardOrderingCycle)
                .count(),
            2,
            "{report}"
        );
    }

    #[test]
    fn producer_declared_after_consumer_still_resolves() {
        let config = cfg();
        let p = shard_program(1, 1);
        // s0 is fed by s1, s1 by the artifact input: legal, just written
        // out of stage order — the worklist must still converge.
        let mut view = ArtifactView::new("m", 8);
        let a = view.add_unit(unit("m#seg0", &p, &config, 8, 8, 1));
        let b = view.add_unit(unit("m#seg1", &p, &config, 8, 8, 1));
        let s0 = view.push_single(a);
        let s1 = view.push_single(b);
        view.set_stage_input(s0, s1);
        view.set_stage_input_external(s1);
        let report = analyze_artifact(&view);
        assert!(report.is_clean(), "{report}");

        // A dangling producer reference never resolves: BW115.
        let mut view = ArtifactView::new("m", 8);
        let a = view.add_unit(unit("m#seg0", &p, &config, 8, 8, 1));
        let s0 = view.push_single(a);
        view.set_stage_input(s0, 7);
        let report = analyze_artifact(&view);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ShardOrderingCycle));
    }

    #[test]
    fn artifact_sla_composes_stage_bounds() {
        let config = cfg();
        let shard = shard_program(1, 1);
        let build = |sla: Option<u64>| {
            let mut view = ArtifactView::new("m", 8);
            let a = view.add_unit(unit("m#g0s0", &shard, &config, 8, 4, 1));
            let b = view.add_unit(unit("m#g0s1", &shard, &config, 8, 4, 1));
            let c = view.add_unit(unit("m#seg1", &shard, &config, 8, 8, 1));
            view.push_sharded(vec![a, b]);
            view.push_single(c);
            match sla {
                Some(s) => view.with_sla_cycles(s),
                None => view,
            }
        };

        let bounds = artifact_cycle_bounds(&build(None)).expect("provable");
        assert!(bounds.lower > 0);
        assert_eq!(bounds.lower, bounds.upper, "default window is exact");

        let met = analyze_artifact(&build(Some(bounds.upper)));
        assert!(met.diagnostics.iter().any(|d| d.code == DiagCode::SlaMet));
        assert_eq!(met.error_count(), 0);

        let blown = analyze_artifact(&build(Some(bounds.lower - 1)));
        assert!(blown
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::SlaViolation && d.severity == Severity::Error));

        // No SLA: silent.
        let silent = analyze_artifact(&build(None));
        assert!(!silent
            .diagnostics
            .iter()
            .any(|d| matches!(d.code, DiagCode::SlaMet | DiagCode::SlaAtRisk)));
    }
}
