//! Conservative static network-queue balance checking.
//!
//! The input queue is host-fed: the program only pops from it, so a purely
//! static pass cannot prove underflow without knowing how much the host
//! pushes per run. [`super::AnalysisOptions`] declares those budgets; with
//! one declared, this pass accounts pushes and pops per segment across
//! loop iterations in closed form and reports the first item whose
//! cumulative pops exceed the budget:
//!
//! * **BW030** (error) — input vector pops can underflow the queue.
//! * **BW031** (error) — input matrix-tile pops can underflow the queue.
//! * **BW032** (info) — the program's output vector count differs from the
//!   declared expected count.

use crate::isa::{Instruction, Item, MemId, ScalarReg};

use super::{AnalysisPass, DiagCode, Diagnostic, PassContext};

/// Network-queue traffic of one item under the current register state.
#[derive(Clone, Copy, Default)]
struct Traffic {
    vec_pops: u64,
    mat_pops: u64,
    vec_pushes: u64,
}

/// Whole-run network-queue traffic of a program: the closed-form totals
/// the artifact-level passes compare against peer supply (see
/// [`super::artifact`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TrafficTotals {
    pub(crate) vec_pops: u128,
    pub(crate) mat_pops: u128,
    pub(crate) vec_pushes: u128,
}

/// Totals a program's NetQ traffic across all segments and iterations in
/// closed form: the first two iterations of each segment are walked
/// explicitly (register state stabilizes after one pass), the rest are
/// multiplied out.
pub(crate) fn program_traffic(program: &crate::isa::Program) -> TrafficTotals {
    let mut rows = 1u32;
    let mut cols = 1u32;
    let mut totals = TrafficTotals::default();
    for segment in &program.segments {
        if segment.iterations == 0 {
            continue;
        }
        let explicit = u128::from(segment.iterations.min(2));
        let mut stable = Traffic::default();
        for _ in 0..explicit {
            stable = Traffic::default();
            for item in &segment.items {
                let t = item_traffic(item, &mut rows, &mut cols);
                totals.vec_pops += u128::from(t.vec_pops);
                totals.mat_pops += u128::from(t.mat_pops);
                totals.vec_pushes += u128::from(t.vec_pushes);
                stable.vec_pops += t.vec_pops;
                stable.mat_pops += t.mat_pops;
                stable.vec_pushes += t.vec_pushes;
            }
        }
        let rest = u128::from(segment.iterations) - explicit;
        totals.vec_pops += rest * u128::from(stable.vec_pops);
        totals.mat_pops += rest * u128::from(stable.mat_pops);
        totals.vec_pushes += rest * u128::from(stable.vec_pushes);
    }
    totals
}

/// Mirrors the scheduler's register updates while computing an item's
/// queue traffic: vector reads pop `w_in`, matrix reads pop `rows × cols`
/// tiles, vector writes push `w_out` — each per NetQ-addressed
/// instruction.
fn item_traffic(item: &Item, rows: &mut u32, cols: &mut u32) -> Traffic {
    let mut t = Traffic::default();
    match item {
        Item::SetReg { reg, value } => {
            if *value != 0 {
                match reg {
                    ScalarReg::Rows => *rows = *value,
                    ScalarReg::Cols => *cols = *value,
                }
            }
        }
        Item::Chain(chain) => {
            let w_in = if chain.has_mv_mul() { *cols } else { *rows };
            let w_out = *rows;
            for instr in chain.instructions() {
                match *instr {
                    Instruction::VRd {
                        mem: MemId::NetQ, ..
                    } => t.vec_pops += u64::from(w_in),
                    Instruction::MRd {
                        mem: MemId::NetQ, ..
                    } => {
                        t.mat_pops += u64::from(*rows) * u64::from(*cols);
                    }
                    Instruction::VWr {
                        mem: MemId::NetQ, ..
                    } => t.vec_pushes += u64::from(w_out),
                    _ => {}
                }
            }
        }
    }
    t
}

/// Running balance of one pop stream against an optional budget.
struct PopStream {
    budget: Option<u64>,
    total: u128,
    flagged: bool,
    code: DiagCode,
    what: &'static str,
}

impl PopStream {
    fn new(budget: Option<u64>, code: DiagCode, what: &'static str) -> Self {
        PopStream {
            budget,
            total: 0,
            flagged: false,
            code,
            what,
        }
    }

    /// Accounts `pops` at `(segment, item)` during `iteration` (1-based),
    /// flagging the first prefix that exceeds the budget.
    fn pop(
        &mut self,
        pops: u64,
        segment: usize,
        item: usize,
        iteration: u128,
        out: &mut Vec<Diagnostic>,
    ) {
        if pops == 0 || self.flagged {
            return;
        }
        self.total += u128::from(pops);
        if let Some(budget) = self.budget {
            if self.total > u128::from(budget) {
                self.flagged = true;
                out.push(Diagnostic::new(
                    self.code,
                    segment,
                    item,
                    format!(
                        "pop of {pops} {what} on iteration {iteration} raises total \
                         consumption to {total}, but the host only provides {budget} \
                         per run — the queue underflows here",
                        what = self.what,
                        total = self.total,
                    ),
                ));
            }
        }
    }

    /// How many more full iterations of `per_iter` pops fit in the budget,
    /// capped at `count`. Flagged or unbudgeted streams never constrain.
    fn fits(&self, per_iter: u64, count: u128) -> u128 {
        if per_iter == 0 || self.flagged {
            return count;
        }
        match self.budget {
            Some(budget) => {
                let headroom = u128::from(budget).saturating_sub(self.total);
                (headroom / u128::from(per_iter)).min(count)
            }
            None => count,
        }
    }

    /// Accounts `count` full iterations of `per_iter` pops at once.
    fn advance(&mut self, per_iter: u64, count: u128) {
        if !self.flagged {
            self.total += count * u128::from(per_iter);
        }
    }
}

/// BW030–BW032: static push/pop accounting for the network queues.
pub struct NetQueuePass;

impl AnalysisPass for NetQueuePass {
    fn name(&self) -> &'static str {
        "netq-balance"
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut rows = 1u32;
        let mut cols = 1u32;
        let mut vectors = PopStream::new(
            cx.options.netq_input_vectors,
            DiagCode::NetUnderflow,
            "input vectors",
        );
        let mut matrices = PopStream::new(
            cx.options.netq_input_matrices,
            DiagCode::NetMatrixUnderflow,
            "input matrix tiles",
        );
        let mut pushed: u128 = 0;
        let mut last_push: Option<(usize, usize)> = None;

        for (si, segment) in cx.program.segments.iter().enumerate() {
            if segment.iterations == 0 {
                continue;
            }
            // Walk the first two iterations explicitly: the first runs
            // under inherited register state, the second under the
            // segment's own (stabilized) state. Later iterations repeat
            // the second exactly, so they are accounted in closed form.
            let explicit = u128::from(segment.iterations.min(2));
            let mut stable = Traffic::default();
            for iteration in 0..explicit {
                stable = Traffic::default();
                for (ii, item) in segment.items.iter().enumerate() {
                    let t = item_traffic(item, &mut rows, &mut cols);
                    vectors.pop(t.vec_pops, si, ii, iteration + 1, out);
                    matrices.pop(t.mat_pops, si, ii, iteration + 1, out);
                    if t.vec_pushes > 0 {
                        pushed += u128::from(t.vec_pushes);
                        last_push = Some((si, ii));
                    }
                    stable.vec_pops += t.vec_pops;
                    stable.mat_pops += t.mat_pops;
                    stable.vec_pushes += t.vec_pushes;
                }
            }
            let rest = u128::from(segment.iterations) - explicit;
            // Both streams advance through the remaining iterations in
            // lockstep (the min of what fits each budget); whenever a
            // stream would underflow, that one iteration is replayed
            // item-by-item under the stabilized register state to find the
            // offending item, then bulk accounting resumes.
            let mut remaining = rest;
            while remaining > 0 {
                let fit = vectors
                    .fits(stable.vec_pops, remaining)
                    .min(matrices.fits(stable.mat_pops, remaining));
                vectors.advance(stable.vec_pops, fit);
                matrices.advance(stable.mat_pops, fit);
                remaining -= fit;
                if remaining == 0 {
                    break;
                }
                let iteration = explicit + (rest - remaining) + 1;
                for (ii, item) in segment.items.iter().enumerate() {
                    let t = item_traffic(item, &mut rows, &mut cols);
                    vectors.pop(t.vec_pops, si, ii, iteration, out);
                    matrices.pop(t.mat_pops, si, ii, iteration, out);
                }
                remaining -= 1;
            }
            pushed += rest * u128::from(stable.vec_pushes);
        }

        if let Some(expected) = cx.options.netq_expected_outputs {
            if pushed != u128::from(expected) {
                let (segment, item) = last_push.unwrap_or((0, 0));
                out.push(Diagnostic::new(
                    DiagCode::NetOutputMismatch,
                    segment,
                    item,
                    format!(
                        "program pushes {pushed} output vectors per run, but the \
                         host expects {expected}"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze_with, AnalysisOptions, DiagCode};
    use crate::config::NpuConfig;
    use crate::isa::{MemId, ProgramBuilder};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    #[test]
    fn balanced_loop_is_clean() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2);
        b.begin_loop(10).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            AnalysisOptions::default()
                .with_input_vectors(20)
                .with_expected_outputs(20),
        );
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.info_count(), 0, "{report}");
    }

    #[test]
    fn prefix_underflow_reports_iteration_and_item() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2);
        b.begin_loop(100).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        // 2 vectors per iteration, 13 provided: iteration 7 pops past 13.
        let report = analyze_with(
            &b.build(),
            &cfg(),
            AnalysisOptions::default().with_input_vectors(13),
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NetUnderflow)
            .expect("BW030 expected");
        assert_eq!((d.segment, d.item), (1, 0));
        assert!(d.message.contains("iteration 7"), "{}", d.message);
    }

    #[test]
    fn underflow_in_first_iterations_is_found_explicitly() {
        let mut b = ProgramBuilder::new();
        b.set_rows(4);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            AnalysisOptions::default().with_input_vectors(6),
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NetUnderflow)
            .expect("BW030 expected");
        // First chain pops 4 of 6; the second item's pop crosses the line.
        assert_eq!((d.segment, d.item), (0, 2));
    }

    #[test]
    fn matrix_pops_are_accounted_in_tiles() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 4)
            .end_chain()
            .unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            AnalysisOptions::default().with_input_matrices(7),
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NetMatrixUnderflow)
            .expect("BW031 expected");
        assert_eq!((d.segment, d.item), (0, 3));
    }

    #[test]
    fn output_mismatch_is_an_info() {
        let mut b = ProgramBuilder::new();
        b.set_rows(3);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            AnalysisOptions::default()
                .with_input_vectors(3)
                .with_expected_outputs(4),
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NetOutputMismatch)
            .expect("BW032 expected");
        assert!(d.message.contains("pushes 3"), "{}", d.message);
        assert!(report.is_clean(), "{report}");
    }
}
