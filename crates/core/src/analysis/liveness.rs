//! Def-use and liveness analysis over VRF address ranges.
//!
//! Walks the program in runtime order (looped segments unrolled twice so
//! loop-carried dependences resolve) tracking, per VRF entry, the last
//! write and whether anything read it since. Three findings result:
//!
//! * **BW010** (error) — a read of entries that no program write ever
//!   covers and that are not declared host-preloaded: the chain computes
//!   with power-on zeros.
//! * **BW011** (warning) — a write that is overwritten, or survives to the
//!   end of the program, without ever being read: dead storage traffic.
//! * **BW012** (info) — a read that precedes the entry's first write in
//!   program order (typically loop-carried recurrent state); the first
//!   iteration observes reset contents.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::isa::{Chain, Instruction, Item, MemId};

use super::{format_ranges, walk, AnalysisPass, DiagCode, Diagnostic, PassContext, WalkMode};

/// One VRF range touched by a chain, in instruction order.
enum Access {
    Read { mem: MemId, start: u32, width: u32 },
    Write { mem: MemId, start: u32, width: u32 },
}

/// Collects the VRF ranges `chain` touches under the given register state,
/// in pipeline order. MFU operand reads mirror the scheduler's assignment:
/// the k-th add/sub-family op reads `AddSubVrf(k)`, the k-th `vv_mul`
/// reads `MultiplyVrf(k)`; operands addressed to MFUs the config lacks are
/// skipped here (the capacity pass already errors on them).
fn chain_accesses(chain: &Chain, rows: u32, cols: u32, mfus: u32) -> Vec<Access> {
    let w_in = if chain.has_mv_mul() { cols } else { rows };
    let w_out = rows;
    let mut addsub_seen: usize = 0;
    let mut multiply_seen: usize = 0;
    let mut out = Vec::new();
    for instr in chain.instructions() {
        match *instr {
            Instruction::VRd { mem, index } if mem.is_vrf() => out.push(Access::Read {
                mem,
                start: index,
                width: w_in,
            }),
            Instruction::VWr { mem, index } if mem.is_vrf() => out.push(Access::Write {
                mem,
                start: index,
                width: w_out,
            }),
            Instruction::VvAdd { index }
            | Instruction::VvASubB { index }
            | Instruction::VvBSubA { index }
            | Instruction::VvMax { index } => {
                if (addsub_seen as u64) < u64::from(mfus) {
                    out.push(Access::Read {
                        mem: MemId::AddSubVrf(addsub_seen as u8),
                        start: index,
                        width: w_out,
                    });
                }
                addsub_seen += 1;
            }
            Instruction::VvMul { index } => {
                if (multiply_seen as u64) < u64::from(mfus) {
                    out.push(Access::Read {
                        mem: MemId::MultiplyVrf(multiply_seen as u8),
                        start: index,
                        width: w_out,
                    });
                }
                multiply_seen += 1;
            }
            _ => {}
        }
    }
    out
}

struct WriteRec {
    segment: usize,
    item: usize,
    read: bool,
}

/// BW010–BW012: def-use/liveness over VRF address ranges.
pub struct LivenessPass;

impl AnalysisPass for LivenessPass {
    fn name(&self) -> &'static str {
        "vrf-liveness"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        let mfus = cx.config.mfus();
        // Per-entry tracking is clamped to the file capacity: entries past
        // the end of a VRF are the capacity pass's BW002 territory, and
        // clamping keeps corrupt (e.g. bit-flipped) programs from inflating
        // the entry sets.
        let cap = cx.config.vrf_entries();
        let clamp =
            move |start: u32, width: u32| start.min(cap)..start.saturating_add(width).min(cap);

        let preloaded: HashSet<(MemId, u32)> = cx
            .options
            .preloaded
            .iter()
            .filter(|r| r.mem.is_vrf())
            .flat_map(|r| clamp(r.start, r.len).map(move |e| (r.mem, e)))
            .collect();

        // Phase 0: which entries does the whole program ever read or write?
        let mut ever_read: HashSet<(MemId, u32)> = HashSet::new();
        let mut ever_written: HashSet<(MemId, u32)> = HashSet::new();
        walk(cx.program, WalkMode::Runtime, |step| {
            if let Item::Chain(chain) = step.item_ref {
                for access in chain_accesses(chain, step.rows, step.cols, mfus) {
                    match access {
                        Access::Read { mem, start, width } => {
                            ever_read.extend(clamp(start, width).map(|e| (mem, e)));
                        }
                        Access::Write { mem, start, width } => {
                            ever_written.extend(clamp(start, width).map(|e| (mem, e)));
                        }
                    }
                }
            }
        });

        // Phase 1: def-use walk. Findings are grouped per offending site
        // and memory so each diagnostic covers a compact entry range.
        let mut last_write: HashMap<(MemId, u32), WriteRec> = HashMap::new();
        let mut uninit: BTreeMap<(usize, usize, MemId, bool), BTreeSet<u32>> = BTreeMap::new();
        let mut dead: BTreeMap<(usize, usize, MemId), BTreeSet<u32>> = BTreeMap::new();
        walk(cx.program, WalkMode::Runtime, |step| {
            let Item::Chain(chain) = step.item_ref else {
                return;
            };
            for access in chain_accesses(chain, step.rows, step.cols, mfus) {
                match access {
                    Access::Read { mem, start, width } => {
                        for e in clamp(start, width) {
                            if let Some(rec) = last_write.get_mut(&(mem, e)) {
                                rec.read = true;
                            } else if !preloaded.contains(&(mem, e)) && step.unroll == 0 {
                                // Unwritten at the second unrolled copy
                                // implies unwritten at the first, so the
                                // site was already recorded then.
                                let written_later = ever_written.contains(&(mem, e));
                                uninit
                                    .entry((step.segment, step.item, mem, written_later))
                                    .or_default()
                                    .insert(e);
                            }
                        }
                    }
                    Access::Write { mem, start, width } => {
                        for e in clamp(start, width) {
                            let rec = WriteRec {
                                segment: step.segment,
                                item: step.item,
                                read: false,
                            };
                            if let Some(prev) = last_write.insert((mem, e), rec) {
                                if !prev.read {
                                    dead.entry((prev.segment, prev.item, mem))
                                        .or_default()
                                        .insert(e);
                                }
                            }
                        }
                    }
                }
            }
        });

        // Final writes that nothing in the whole program ever reads. (A
        // final write to an entry read earlier in the loop body is live
        // state for the next run, not a dead store.)
        for ((mem, e), rec) in &last_write {
            if !rec.read && !ever_read.contains(&(*mem, *e)) {
                dead.entry((rec.segment, rec.item, *mem))
                    .or_default()
                    .insert(*e);
            }
        }

        for ((segment, item, mem, written_later), entries) in uninit {
            let ranges = format_ranges(entries);
            if written_later {
                out.push(Diagnostic::new(
                    DiagCode::ReadBeforeWrite,
                    segment,
                    item,
                    format!(
                        "{mem}{ranges} is read before its first write; the first \
                         iteration observes reset (zero) contents — declare the \
                         range preloaded if the host initializes it"
                    ),
                ));
            } else {
                out.push(Diagnostic::new(
                    DiagCode::UninitializedRead,
                    segment,
                    item,
                    format!(
                        "{mem}{ranges} is read but never written by the program \
                         and not declared host-preloaded"
                    ),
                ));
            }
        }
        for ((segment, item, mem), entries) in dead {
            let ranges = format_ranges(entries);
            out.push(Diagnostic::new(
                DiagCode::DeadStore,
                segment,
                item,
                format!("dead store: {mem}{ranges} written here is never read"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze_with, AnalysisOptions, DiagCode};
    use crate::config::NpuConfig;
    use crate::isa::{MemId, ProgramBuilder};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    fn base_options() -> AnalysisOptions {
        AnalysisOptions::default().with_input_vectors(1_000)
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2);
        b.v_rd(MemId::InitialVrf, 4)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::UninitializedRead)
            .expect("BW010 expected");
        assert_eq!((d.segment, d.item), (0, 1));
        assert!(d.message.contains("InitialVrf[4..6]"), "{}", d.message);
    }

    #[test]
    fn preloaded_ranges_suppress_uninitialized_read() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2);
        b.v_rd(MemId::InitialVrf, 4)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            base_options().preload(MemId::InitialVrf, 4, 2),
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn overwritten_store_without_read_warns() {
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 7)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 7)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 7)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::DeadStore)
            .collect();
        assert_eq!(dead.len(), 1, "{report}");
        // The first write is the dead one.
        assert_eq!((dead[0].segment, dead[0].item), (0, 1));
    }

    #[test]
    fn loop_carried_read_keeps_store_live() {
        // Writes h at the loop tail, reads it at the loop head: live.
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.begin_loop(4).unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            base_options().preload(MemId::InitialVrf, 0, 1),
        );
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::DeadStore),
            "{report}"
        );
    }

    #[test]
    fn read_before_write_is_an_info() {
        // Recurrent state read at the head, written at the tail, with no
        // declared preload: first iteration sees zeros.
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.begin_loop(4).unwrap();
        b.v_rd(MemId::InitialVrf, 3)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 3)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::ReadBeforeWrite)
            .expect("BW012 expected");
        assert_eq!((d.segment, d.item), (1, 0));
        assert!(
            report.is_clean(),
            "info must not dirty the report: {report}"
        );
    }

    #[test]
    fn operand_reads_track_mfu_file_assignment() {
        // The second add/sub-family op reads AddSubVrf(1); only that file's
        // entries should be flagged.
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.v_rd(MemId::NetQ, 0)
            .vv_add(2)
            .vv_max(9)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(
            &b.build(),
            &cfg(),
            base_options().preload(MemId::AddSubVrf(0), 2, 1),
        );
        let uninit: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::UninitializedRead)
            .collect();
        assert_eq!(uninit.len(), 1, "{report}");
        assert!(
            uninit[0].message.contains("AddSubVrf1[9..10]"),
            "{}",
            uninit[0].message
        );
    }
}
