//! Static dataflow analysis of NPU firmware — a linter over [`Program`]s.
//!
//! The analyzer runs a pipeline of [`AnalysisPass`]es over a program. Each
//! pass walks the segments and items of the program with the scheduler's
//! `rows`/`cols` tiling state tracked alongside, and emits [`Diagnostic`]s
//! identified by a stable `BW0xx` code with a fixed [`Severity`]:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | BW001 | error    | tiling register written with zero |
//! | BW002 | error    | VRF access out of range |
//! | BW003 | error    | MRF access out of range |
//! | BW004 | error    | VRF attached to an MFU the config lacks |
//! | BW005 | error    | chain exceeds per-kind MFU capacity |
//! | BW006 | info     | analysis keeps the stale register value after BW001 |
//! | BW010 | error    | read of a VRF range never written nor preloaded |
//! | BW011 | warning  | dead store: VRF write never read |
//! | BW012 | info     | VRF range read before its first write |
//! | BW020 | info     | MRF write-after-read (double-buffer serialization) |
//! | BW021 | warning  | MRF tiles loaded but never read by an `mv_mul` |
//! | BW022 | error    | `mv_mul` reads MRF tiles never loaded nor preloaded |
//! | BW030 | error    | NetQ input vector pops can underflow the queue |
//! | BW031 | error    | NetQ input matrix pops can underflow the queue |
//! | BW032 | info     | NetQ output count differs from the declared count |
//! | BW040 | warning  | `mv_mul` runs with the power-on 1×1 tiling |
//! | BW041 | warning  | redundant identity operation in a chain |
//! | BW042 | warning  | multicast writes to overlapping destinations |
//! | BW043 | warning  | `mv_mul` chain reads and writes overlapping ranges |
//!
//! The `BW1xx` family is *interprocedural*: those diagnostics come from
//! whole-artifact analysis over a pipeline of programs (see [`artifact`]
//! and [`bounds`]) rather than from a single-program walk:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | BW110 | error    | cross-shard NetQ transfer unmatched — scatter/gather deadlock |
//! | BW111 | error    | cross-shard NetQ transfer residue poisons the next request |
//! | BW112 | error    | inter-stage dimension mismatch |
//! | BW113 | error    | shard pops matrix tiles the serving runtime never pushes |
//! | BW114 | warning  | degenerate scatter/gather group of one shard |
//! | BW115 | error    | scatter/gather ordering cycle — the pipeline never starts |
//! | BW120 | error    | static cycle lower bound exceeds the declared SLA |
//! | BW121 | warning  | static cycle upper bound exceeds the declared SLA |
//! | BW122 | info     | static cycle bounds meet the declared SLA |
//!
//! Severities gate deployment: the toolflow refuses to lower a model onto a
//! device when the report contains errors (and, optionally, warnings — see
//! `AnalysisReport::is_clean`). Because VRFs and the MRF are host-visible,
//! a purely static pass cannot see host preloads (weights, biases, initial
//! recurrent state); [`AnalysisOptions`] lets the firmware generator declare
//! those ranges so that legitimate reads do not trip BW010/BW022.
//!
//! Reports are deterministic: diagnostics are deduplicated and sorted by
//! `(code, unit, segment, item, message)`, so serialized output is
//! byte-stable across runs.

use std::fmt;

use serde::Serialize;

use crate::config::NpuConfig;
use crate::isa::{Chain, Item, Program, ScalarReg};

pub mod artifact;
pub mod bounds;
pub(crate) mod capacity;
mod hazards;
mod liveness;
mod netq;
mod shape;

pub use artifact::{
    analyze_artifact, analyze_artifact_with, artifact_cycle_bounds, ArtifactContext, ArtifactPass,
    ArtifactSlaPass, ArtifactStage, ArtifactUnit, ArtifactView, ShardBalancePass, StageFlow,
    StageFlowPass, UnitSummary,
};
pub use bounds::{cycle_bounds, CycleBoundPass, CycleBounds};
pub use capacity::CapacityPass;
pub use hazards::HazardPass;
pub use liveness::LivenessPass;
pub use netq::NetQueuePass;
pub use shape::ChainShapePass;

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Advisory only; never gates deployment.
    Info,
    /// Suspicious but possibly intentional; gates deployment only when
    /// warnings are denied.
    Warning,
    /// A firmware bug that would fault or corrupt results at run time;
    /// always gates deployment.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier for each diagnostic the analyzer can emit.
///
/// The `BW0xx` string form (see [`DiagCode::as_str`]) is the public name
/// used in reports, documentation, and suppression lists; the enum keeps
/// matching in code typo-proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DiagCode {
    /// BW001: a `s_wr` wrote zero to `rows`/`cols`.
    ZeroRegister,
    /// BW002: a vector access runs past the end of a VRF.
    VrfOverflow,
    /// BW003: a matrix access runs past the end of the MRF.
    MrfOverflow,
    /// BW004: the addressed VRF belongs to an MFU the config lacks.
    MissingMfu,
    /// BW005: a chain uses more ops of one kind than there are MFUs.
    MfuCapacity,
    /// BW006: follow-on to BW001 — analysis continues with the stale
    /// register value, while the scheduler would fault at dispatch.
    StaleRegister,
    /// BW010: a VRF range is read but never written nor declared preloaded.
    UninitializedRead,
    /// BW011: a VRF write is never read before being overwritten or the
    /// program ending.
    DeadStore,
    /// BW012: a VRF range is read before its first write; the first
    /// iteration observes reset (zero) contents.
    ReadBeforeWrite,
    /// BW020: an `m_wr` overwrites MRF tiles a previous `mv_mul` read —
    /// the double-buffered DRAM stream serializes here.
    MrfWriteAfterRead,
    /// BW021: MRF tiles are loaded but never read by any `mv_mul`.
    MrfDeadLoad,
    /// BW022: an `mv_mul` reads MRF tiles never loaded nor preloaded.
    MrfUninitializedRead,
    /// BW030: cumulative NetQ vector pops can exceed the declared input
    /// budget.
    NetUnderflow,
    /// BW031: cumulative NetQ matrix pops can exceed the declared input
    /// budget.
    NetMatrixUnderflow,
    /// BW032: the program's NetQ output count differs from the declared
    /// expected count.
    NetOutputMismatch,
    /// BW040: an `mv_mul` executes while `rows`/`cols` still hold the
    /// power-on 1×1 default.
    DefaultTiling,
    /// BW041: an operation in a chain is an identity on its input.
    RedundantOp,
    /// BW042: two multicast writes in one chain cover overlapping
    /// destination ranges.
    OverlappingMulticast,
    /// BW043: a chain with an `mv_mul` reads and writes overlapping ranges
    /// of the same VRF at different widths (`cols` in, `rows` out).
    AliasedChainIo,
    /// BW110: a cross-shard NetQ pop (or gather wait) has no matching peer
    /// push — the scatter/gather schedule deadlocks.
    ShardPopUnmatched,
    /// BW111: a cross-shard NetQ transfer leaves residue in a queue that
    /// the next request consumes.
    ShardPushExcess,
    /// BW112: a stage member's input width disagrees with the upstream
    /// stage's gathered output width.
    ShardDimMismatch,
    /// BW113: a serving shard pops matrix tiles from its NetQ; the runtime
    /// only scatters vectors.
    ShardMatrixPop,
    /// BW114: a scatter/gather group of exactly one shard.
    ShardDegenerate,
    /// BW115: the stage graph's transfer ordering is cyclic; no stage's
    /// input ever becomes available.
    ShardOrderingCycle,
    /// BW120: the static cycle lower bound exceeds the declared SLA (or no
    /// bound is provable at all) — the SLA is unmeetable.
    SlaViolation,
    /// BW121: the static cycle upper bound exceeds the declared SLA while
    /// the lower bound meets it.
    SlaAtRisk,
    /// BW122: the static cycle bounds meet the declared SLA.
    SlaMet,
}

impl DiagCode {
    /// Every code the analyzer can emit, in numeric order.
    pub const ALL: [DiagCode; 28] = [
        DiagCode::ZeroRegister,
        DiagCode::VrfOverflow,
        DiagCode::MrfOverflow,
        DiagCode::MissingMfu,
        DiagCode::MfuCapacity,
        DiagCode::StaleRegister,
        DiagCode::UninitializedRead,
        DiagCode::DeadStore,
        DiagCode::ReadBeforeWrite,
        DiagCode::MrfWriteAfterRead,
        DiagCode::MrfDeadLoad,
        DiagCode::MrfUninitializedRead,
        DiagCode::NetUnderflow,
        DiagCode::NetMatrixUnderflow,
        DiagCode::NetOutputMismatch,
        DiagCode::DefaultTiling,
        DiagCode::RedundantOp,
        DiagCode::OverlappingMulticast,
        DiagCode::AliasedChainIo,
        DiagCode::ShardPopUnmatched,
        DiagCode::ShardPushExcess,
        DiagCode::ShardDimMismatch,
        DiagCode::ShardMatrixPop,
        DiagCode::ShardDegenerate,
        DiagCode::ShardOrderingCycle,
        DiagCode::SlaViolation,
        DiagCode::SlaAtRisk,
        DiagCode::SlaMet,
    ];

    /// The stable `BW0xx` name of this code.
    pub const fn as_str(self) -> &'static str {
        match self {
            DiagCode::ZeroRegister => "BW001",
            DiagCode::VrfOverflow => "BW002",
            DiagCode::MrfOverflow => "BW003",
            DiagCode::MissingMfu => "BW004",
            DiagCode::MfuCapacity => "BW005",
            DiagCode::StaleRegister => "BW006",
            DiagCode::UninitializedRead => "BW010",
            DiagCode::DeadStore => "BW011",
            DiagCode::ReadBeforeWrite => "BW012",
            DiagCode::MrfWriteAfterRead => "BW020",
            DiagCode::MrfDeadLoad => "BW021",
            DiagCode::MrfUninitializedRead => "BW022",
            DiagCode::NetUnderflow => "BW030",
            DiagCode::NetMatrixUnderflow => "BW031",
            DiagCode::NetOutputMismatch => "BW032",
            DiagCode::DefaultTiling => "BW040",
            DiagCode::RedundantOp => "BW041",
            DiagCode::OverlappingMulticast => "BW042",
            DiagCode::AliasedChainIo => "BW043",
            DiagCode::ShardPopUnmatched => "BW110",
            DiagCode::ShardPushExcess => "BW111",
            DiagCode::ShardDimMismatch => "BW112",
            DiagCode::ShardMatrixPop => "BW113",
            DiagCode::ShardDegenerate => "BW114",
            DiagCode::ShardOrderingCycle => "BW115",
            DiagCode::SlaViolation => "BW120",
            DiagCode::SlaAtRisk => "BW121",
            DiagCode::SlaMet => "BW122",
        }
    }

    /// The fixed severity of this code.
    pub const fn severity(self) -> Severity {
        match self {
            DiagCode::ZeroRegister
            | DiagCode::VrfOverflow
            | DiagCode::MrfOverflow
            | DiagCode::MissingMfu
            | DiagCode::MfuCapacity
            | DiagCode::UninitializedRead
            | DiagCode::MrfUninitializedRead
            | DiagCode::NetUnderflow
            | DiagCode::NetMatrixUnderflow
            | DiagCode::ShardPopUnmatched
            | DiagCode::ShardPushExcess
            | DiagCode::ShardDimMismatch
            | DiagCode::ShardMatrixPop
            | DiagCode::ShardOrderingCycle
            | DiagCode::SlaViolation => Severity::Error,
            DiagCode::DeadStore
            | DiagCode::MrfDeadLoad
            | DiagCode::DefaultTiling
            | DiagCode::RedundantOp
            | DiagCode::OverlappingMulticast
            | DiagCode::AliasedChainIo
            | DiagCode::ShardDegenerate
            | DiagCode::SlaAtRisk => Severity::Warning,
            DiagCode::StaleRegister
            | DiagCode::ReadBeforeWrite
            | DiagCode::MrfWriteAfterRead
            | DiagCode::NetOutputMismatch
            | DiagCode::SlaMet => Severity::Info,
        }
    }

    /// A short human title for documentation and report headers.
    pub const fn title(self) -> &'static str {
        match self {
            DiagCode::ZeroRegister => "zero tiling register",
            DiagCode::VrfOverflow => "VRF access out of range",
            DiagCode::MrfOverflow => "MRF access out of range",
            DiagCode::MissingMfu => "missing MFU register file",
            DiagCode::MfuCapacity => "MFU capacity exceeded",
            DiagCode::StaleRegister => "stale register after rejected write",
            DiagCode::UninitializedRead => "uninitialized VRF read",
            DiagCode::DeadStore => "dead store",
            DiagCode::ReadBeforeWrite => "read before first write",
            DiagCode::MrfWriteAfterRead => "MRF write-after-read",
            DiagCode::MrfDeadLoad => "dead matrix load",
            DiagCode::MrfUninitializedRead => "uninitialized MRF read",
            DiagCode::NetUnderflow => "input queue underflow",
            DiagCode::NetMatrixUnderflow => "input matrix queue underflow",
            DiagCode::NetOutputMismatch => "output count mismatch",
            DiagCode::DefaultTiling => "mv_mul with default tiling",
            DiagCode::RedundantOp => "redundant operation",
            DiagCode::OverlappingMulticast => "overlapping multicast",
            DiagCode::AliasedChainIo => "aliased chain read/write",
            DiagCode::ShardPopUnmatched => "cross-shard transfer deadlock",
            DiagCode::ShardPushExcess => "cross-shard transfer residue",
            DiagCode::ShardDimMismatch => "inter-stage dimension mismatch",
            DiagCode::ShardMatrixPop => "matrix pop in a serving shard",
            DiagCode::ShardDegenerate => "degenerate shard group",
            DiagCode::ShardOrderingCycle => "scatter/gather ordering cycle",
            DiagCode::SlaViolation => "SLA unmeetable",
            DiagCode::SlaAtRisk => "SLA at risk",
            DiagCode::SlaMet => "SLA met",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to the segment and item that produced it.
///
/// Artifact-level findings additionally carry the `unit` (shard or
/// pipeline-segment name) they concern; program-level findings leave it
/// `None` and render exactly as before.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Stable code identifying the kind of finding.
    pub code: DiagCode,
    /// Severity (always `code.severity()`; duplicated for serialization).
    pub severity: Severity,
    /// The artifact unit the finding concerns, for interprocedural
    /// diagnostics. `None` for single-program findings.
    pub unit: Option<String>,
    /// Index of the segment containing the offending item. For artifact
    /// findings this is the pipeline-stage index.
    pub segment: usize,
    /// Index of the item within the segment.
    pub item: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at `(segment, item)` with the code's severity.
    pub fn new(code: DiagCode, segment: usize, item: usize, message: String) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            unit: None,
            segment,
            item,
            message,
        }
    }

    /// Builds an artifact-level diagnostic anchored to `unit`.
    pub fn for_unit(
        code: DiagCode,
        unit: impl Into<String>,
        segment: usize,
        item: usize,
        message: String,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            unit: Some(unit.into()),
            segment,
            item,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unit {
            Some(unit) => write!(
                f,
                "{}[{}] unit {}, segment {}, item {}: {}",
                self.severity, self.code, unit, self.segment, self.item, self.message
            ),
            None => write!(
                f,
                "{}[{}] segment {}, item {}: {}",
                self.severity, self.code, self.segment, self.item, self.message
            ),
        }
    }
}

/// A host-initialized region of on-chip memory.
///
/// `MemId::MatrixRf` ranges are in MRF tile entries; VRF ranges are in
/// native-vector entries of the named file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PreloadedRange {
    /// The memory the host initializes.
    pub mem: crate::isa::MemId,
    /// First entry of the initialized range.
    pub start: u32,
    /// Number of entries initialized.
    pub len: u32,
}

/// Facts about the deployment environment that static analysis cannot
/// recover from the program alone.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AnalysisOptions {
    /// Memory ranges the host initializes before the program runs
    /// (weights, biases, initial recurrent state). Reads from these ranges
    /// are not uninitialized.
    pub preloaded: Vec<PreloadedRange>,
    /// Number of input vectors the host pushes on the network queue per
    /// run, if known. `None` disables BW030.
    pub netq_input_vectors: Option<u64>,
    /// Number of input matrix tiles the host pushes per run, if known.
    /// `None` disables BW031.
    pub netq_input_matrices: Option<u64>,
    /// Number of output vectors the host expects per run, if known.
    /// `None` disables BW032.
    pub netq_expected_outputs: Option<u64>,
    /// Declared service-level agreement in cycles, if any. With an SLA
    /// declared, [`CycleBoundPass`] compares the static cycle bounds
    /// against it (BW120–BW122); `None` keeps the pass silent.
    pub sla_cycles: Option<u64>,
    /// Earliest cycle any NetQ input vector can arrive (relative to the
    /// run start). The default `0` models host-staged inputs.
    pub input_arrival_lo: u64,
    /// Latest cycle any NetQ input vector can arrive. With `lo == hi` the
    /// static cycle bounds are exact.
    pub input_arrival_hi: u64,
}

impl AnalysisOptions {
    /// Declares `[start, start + len)` of `mem` as host-preloaded.
    #[must_use]
    pub fn preload(mut self, mem: crate::isa::MemId, start: u32, len: u32) -> Self {
        self.preloaded.push(PreloadedRange { mem, start, len });
        self
    }

    /// Declares the per-run input vector budget on the network queue.
    #[must_use]
    pub fn with_input_vectors(mut self, count: u64) -> Self {
        self.netq_input_vectors = Some(count);
        self
    }

    /// Declares the per-run input matrix-tile budget on the network queue.
    #[must_use]
    pub fn with_input_matrices(mut self, count: u64) -> Self {
        self.netq_input_matrices = Some(count);
        self
    }

    /// Declares the per-run output vector count the host expects.
    #[must_use]
    pub fn with_expected_outputs(mut self, count: u64) -> Self {
        self.netq_expected_outputs = Some(count);
        self
    }

    /// Declares a service-level agreement in cycles, enabling the
    /// BW120–BW122 verdicts.
    #[must_use]
    pub fn with_sla_cycles(mut self, cycles: u64) -> Self {
        self.sla_cycles = Some(cycles);
        self
    }

    /// Declares the NetQ input-arrival window in cycles relative to the
    /// run start. The static cycle bounds hold for any arrival schedule
    /// inside `[lo, hi]`.
    #[must_use]
    pub fn with_input_arrival(mut self, lo: u64, hi: u64) -> Self {
        self.input_arrival_lo = lo;
        self.input_arrival_hi = hi.max(lo);
        self
    }
}

/// Everything a pass needs: the program, the hardware shape, and the
/// deployment facts.
pub struct PassContext<'a> {
    /// The firmware under analysis.
    pub program: &'a Program,
    /// The device configuration it targets.
    pub config: &'a NpuConfig,
    /// Deployment facts (preloads, queue budgets).
    pub options: &'a AnalysisOptions,
}

/// One analysis over a whole program.
pub trait AnalysisPass {
    /// Stable name of the pass (for logs and pass selection).
    fn name(&self) -> &'static str;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The collected findings of an analyzer run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AnalysisReport {
    /// All findings, deduplicated and ordered by
    /// `(code, unit, segment, item, message)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.by_severity(Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.by_severity(Severity::Warning).count()
    }

    /// Number of info-severity findings.
    pub fn info_count(&self) -> usize {
        self.by_severity(Severity::Info).count()
    }

    /// Findings of exactly `severity`.
    pub fn by_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Whether the report contains any error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is free of errors and warnings (infos allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warning_count() == 0
    }

    /// Whether the report blocks deployment under the given policy.
    pub fn blocks_deployment(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.warning_count() > 0)
    }

    /// Serializes the report as a JSON object (no external dependencies;
    /// messages are escaped per RFC 8259).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let unit = match &d.unit {
                Some(u) => format!("\"unit\":\"{}\",", json_escape(u)),
                None => String::new(),
            };
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",{}\"segment\":{},\"item\":{},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                unit,
                d.segment,
                d.item,
                json_escape(&d.message)
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.error_count(),
            self.warning_count(),
            self.info_count()
        ));
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info(s)",
            self.error_count(),
            self.warning_count(),
            self.info_count()
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A configured pipeline of analysis passes.
pub struct Analyzer {
    options: AnalysisOptions,
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl Analyzer {
    /// An analyzer running the default pass pipeline with `options`.
    pub fn new(options: AnalysisOptions) -> Self {
        Analyzer {
            options,
            passes: vec![
                Box::new(CapacityPass),
                Box::new(LivenessPass),
                Box::new(HazardPass),
                Box::new(NetQueuePass),
                Box::new(ChainShapePass),
                Box::new(CycleBoundPass),
            ],
        }
    }

    /// An analyzer with an explicit pass list (for tools that subset).
    pub fn with_passes(options: AnalysisOptions, passes: Vec<Box<dyn AnalysisPass>>) -> Self {
        Analyzer { options, passes }
    }

    /// Names of the passes in pipeline order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `program` and returns the combined report,
    /// deduplicated and deterministically ordered.
    pub fn analyze(&self, program: &Program, config: &NpuConfig) -> AnalysisReport {
        let cx = PassContext {
            program,
            config,
            options: &self.options,
        };
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(&cx, &mut diagnostics);
        }
        finish_report(diagnostics)
    }
}

/// Normalizes raw pass output into a deterministic report: sorted by
/// `(code, unit, segment, item, message)` and deduplicated, so identical
/// findings from overlapping passes collapse and serialized reports are
/// byte-stable across runs.
pub(crate) fn finish_report(mut diagnostics: Vec<Diagnostic>) -> AnalysisReport {
    diagnostics.sort_by(|a, b| {
        (a.code, &a.unit, a.segment, a.item, &a.message)
            .cmp(&(b.code, &b.unit, b.segment, b.item, &b.message))
    });
    diagnostics.dedup();
    AnalysisReport { diagnostics }
}

/// Analyzes `program` with default options (no preloads, no queue budgets).
pub fn analyze(program: &Program, config: &NpuConfig) -> AnalysisReport {
    Analyzer::new(AnalysisOptions::default()).analyze(program, config)
}

/// Analyzes `program` with explicit deployment facts.
pub fn analyze_with(
    program: &Program,
    config: &NpuConfig,
    options: AnalysisOptions,
) -> AnalysisReport {
    Analyzer::new(options).analyze(program, config)
}

// ---------------------------------------------------------------------------
// Shared walking machinery for passes.

/// How to linearize a program for a walk.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalkMode {
    /// Every segment body once, ignoring iteration counts. Mirrors
    /// `Program::validate`: accesses are static across iterations.
    Static,
    /// Runtime-faithful order: segments with zero iterations are skipped
    /// and looped segments are unrolled twice, so loop-carried def-use
    /// chains (a read at the loop head of a write at the loop tail)
    /// resolve without unrolling the full trip count.
    Runtime,
}

/// One visited item of a linearized walk, with the scheduler's register
/// state at that point.
pub(crate) struct Step<'a> {
    /// Segment index.
    pub segment: usize,
    /// Item index within the segment.
    pub item: usize,
    /// Which unrolled copy of a looped segment this is (0 or 1).
    pub unroll: u32,
    /// `rows` at this item (before the item executes).
    pub rows: u32,
    /// `cols` at this item (before the item executes).
    pub cols: u32,
    /// Whether any tiling register has been explicitly set so far.
    pub tiling_set: bool,
    /// The item itself.
    pub item_ref: &'a Item,
}

impl Step<'_> {
    /// Input width of `chain` under this step's register state: `cols`
    /// native vectors into an `mv_mul`, `rows` otherwise.
    pub fn w_in(&self, chain: &Chain) -> u32 {
        if chain.has_mv_mul() {
            self.cols
        } else {
            self.rows
        }
    }

    /// Output width of any chain: `rows` native vectors.
    pub fn w_out(&self) -> u32 {
        self.rows
    }
}

/// Linearizes `program` per `mode`, tracking `rows`/`cols` exactly as the
/// scheduler would — with one deliberate divergence: a rejected zero write
/// keeps the stale value (the scheduler faults instead; BW001/BW006 record
/// this).
pub(crate) fn walk<'a>(program: &'a Program, mode: WalkMode, mut visit: impl FnMut(&Step<'a>)) {
    let mut rows = 1u32;
    let mut cols = 1u32;
    let mut tiling_set = false;
    for (si, segment) in program.segments.iter().enumerate() {
        let unrolls = match mode {
            WalkMode::Static => 1,
            WalkMode::Runtime => segment.iterations.min(2),
        };
        for unroll in 0..unrolls {
            for (ii, item) in segment.items.iter().enumerate() {
                visit(&Step {
                    segment: si,
                    item: ii,
                    unroll,
                    rows,
                    cols,
                    tiling_set,
                    item_ref: item,
                });
                if let Item::SetReg { reg, value } = *item {
                    if value != 0 {
                        tiling_set = true;
                        match reg {
                            ScalarReg::Rows => rows = value,
                            ScalarReg::Cols => cols = value,
                        }
                    }
                }
            }
        }
    }
}

/// Renders sorted entry indices as compact half-open ranges, e.g.
/// `[3..5], [9..10]`.
pub(crate) fn format_ranges(entries: impl IntoIterator<Item = u32>) -> String {
    let mut sorted: Vec<u32> = entries.into_iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            i += 1;
            end = sorted[i];
        }
        parts.push(format!("[{}..{}]", start, end + 1));
        i += 1;
    }
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MemId, ProgramBuilder};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let mut names: Vec<&str> = DiagCode::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate BW0xx code");
        assert!(names.iter().all(|n| n.starts_with("BW") && n.len() == 5));
    }

    #[test]
    fn walker_tracks_registers_and_keeps_stale_on_zero() {
        let mut b = ProgramBuilder::new();
        b.set_rows(3).set_cols(2);
        b.set_rows(0); // rejected: stale 3 retained
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let p = b.build();
        let mut seen = Vec::new();
        walk(&p, WalkMode::Static, |s| {
            seen.push((s.item, s.rows, s.cols, s.tiling_set));
        });
        assert_eq!(seen[0], (0, 1, 1, false)); // before set_rows(3)
        assert_eq!(seen[2], (2, 3, 2, true)); // before set_rows(0)
        assert_eq!(seen[3], (3, 3, 2, true)); // stale rows after zero write
    }

    #[test]
    fn runtime_walk_unrolls_loops_twice() {
        let mut b = ProgramBuilder::new();
        b.set_rows(1);
        b.begin_loop(5).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let p = b.build();
        let mut static_items = 0;
        walk(&p, WalkMode::Static, |_| static_items += 1);
        let mut runtime_items = 0;
        let mut max_unroll = 0;
        walk(&p, WalkMode::Runtime, |s| {
            runtime_items += 1;
            max_unroll = max_unroll.max(s.unroll);
        });
        assert_eq!(static_items, 2); // set_rows + chain
        assert_eq!(runtime_items, 3); // set_rows + chain x2
        assert_eq!(max_unroll, 1);
    }

    #[test]
    fn report_counts_and_json_round_trip_shape() {
        let report = AnalysisReport {
            diagnostics: vec![
                Diagnostic::new(DiagCode::VrfOverflow, 0, 1, "a \"quoted\" msg".into()),
                Diagnostic::new(DiagCode::DeadStore, 1, 2, "dead".into()),
                Diagnostic::new(DiagCode::StaleRegister, 0, 0, "stale".into()),
            ],
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert_eq!(report.info_count(), 1);
        assert!(!report.is_clean());
        assert!(report.has_errors());
        assert!(report.blocks_deployment(false));
        let json = report.to_json();
        assert!(json.contains("\"code\":\"BW002\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"errors\":1"));
        let shown = report.to_string();
        assert!(shown.contains("error[BW002] segment 0, item 1"));
        assert!(shown.contains("1 error(s), 1 warning(s), 1 info(s)"));
    }

    #[test]
    fn clean_program_analyzes_clean() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .vv_add(4)
            .v_sigm()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let options = AnalysisOptions::default()
            .preload(MemId::MatrixRf, 0, 4)
            .preload(MemId::AddSubVrf(0), 4, 2)
            .with_input_vectors(2);
        let report = analyze_with(&b.build(), &cfg(), options);
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn unit_diagnostics_render_and_serialize_with_their_anchor() {
        let d = Diagnostic::for_unit(DiagCode::ShardPopUnmatched, "big#g0s1", 2, 0, "pop".into());
        assert_eq!(
            d.to_string(),
            "error[BW110] unit big#g0s1, segment 2, item 0: pop"
        );
        let report = AnalysisReport {
            diagnostics: vec![d],
        };
        let json = report.to_json();
        assert!(json.contains("\"unit\":\"big#g0s1\""));
        // Program-level findings keep their exact historical shape.
        let plain = AnalysisReport {
            diagnostics: vec![Diagnostic::new(DiagCode::VrfOverflow, 0, 1, "x".into())],
        };
        assert!(!plain.to_json().contains("\"unit\""));
    }

    #[test]
    fn reports_are_deduplicated_and_byte_stable() {
        // Two passes reporting the same finding, plus out-of-order input:
        // the report must collapse duplicates and impose the canonical
        // (code, unit, segment, item, message) order.
        let twice = vec![
            Diagnostic::new(DiagCode::DeadStore, 1, 2, "dead".into()),
            Diagnostic::new(DiagCode::VrfOverflow, 0, 1, "oob".into()),
            Diagnostic::new(DiagCode::VrfOverflow, 0, 1, "oob".into()),
            Diagnostic::for_unit(DiagCode::VrfOverflow, "m#seg0", 0, 0, "oob".into()),
        ];
        let report = finish_report(twice.clone());
        assert_eq!(report.diagnostics.len(), 3, "duplicate collapsed");
        assert_eq!(report.diagnostics[0].code, DiagCode::VrfOverflow);
        assert!(report.diagnostics[0].unit.is_none(), "None sorts first");
        assert_eq!(report.diagnostics[1].unit.as_deref(), Some("m#seg0"));
        assert_eq!(report.diagnostics[2].code, DiagCode::DeadStore);

        // Byte stability: any permutation of the raw findings serializes
        // identically.
        let mut reversed = twice;
        reversed.reverse();
        assert_eq!(report.to_json(), finish_report(reversed).to_json());
    }

    #[test]
    fn format_ranges_merges_contiguous_runs() {
        assert_eq!(format_ranges([3, 4, 9]), "[3..5], [9..10]");
        assert_eq!(format_ranges([7]), "[7..8]");
        assert_eq!(format_ranges([2, 1, 1, 0]), "[0..3]");
    }
}
