//! Cross-chain hazard analysis over MRF tile intervals.
//!
//! Matrix chains (`m_rd` → `m_wr`) stream `rows × cols` tiles into the
//! matrix register file while earlier `mv_mul`s may still be draining
//! them — the double-buffered DRAM weight streaming pattern of §IV. The
//! simulator serializes such overlaps at run time (`mrf_read_until`);
//! statically they are worth surfacing, and two neighbouring conditions
//! are outright bugs:
//!
//! * **BW020** (info) — an `m_wr` overwrites tiles a previous `mv_mul`
//!   read: the legal double-buffer serialization point.
//! * **BW021** (warning) — tiles are loaded but overwritten (or the
//!   program ends) before any `mv_mul` reads them: the load is dead.
//! * **BW022** (error) — an `mv_mul` reads tiles never loaded by the
//!   program nor declared host-preloaded: the product is computed from
//!   power-on zeros.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::isa::{Instruction, Item, MemId};

use super::{format_ranges, walk, AnalysisPass, DiagCode, Diagnostic, PassContext, WalkMode};

/// MRF tile ranges a chain touches: `mv_mul` reads, `m_wr(MatrixRf)`
/// writes, both `rows × cols` tiles wide.
enum TileAccess {
    Read { start: u32, count: u32 },
    Write { start: u32, count: u32 },
}

fn tile_accesses(item: &Item, rows: u32, cols: u32) -> Option<TileAccess> {
    let Item::Chain(chain) = item else {
        return None;
    };
    let count = rows.saturating_mul(cols);
    for instr in chain.instructions() {
        match *instr {
            Instruction::MvMul { mrf_index } => {
                return Some(TileAccess::Read {
                    start: mrf_index,
                    count,
                })
            }
            Instruction::MWr {
                mem: MemId::MatrixRf,
                index,
            } => {
                return Some(TileAccess::Write {
                    start: index,
                    count,
                })
            }
            _ => {}
        }
    }
    None
}

struct LoadRec {
    segment: usize,
    item: usize,
    read: bool,
}

/// BW020–BW022: RAW/WAR/WAW interval analysis over MRF tiles.
pub struct HazardPass;

impl AnalysisPass for HazardPass {
    fn name(&self) -> &'static str {
        "mrf-hazards"
    }

    fn run(&self, cx: &PassContext<'_>, out: &mut Vec<Diagnostic>) {
        // Per-tile tracking is clamped to the MRF capacity: tiles past the
        // end are the capacity pass's BW003 territory, and clamping keeps
        // corrupt (e.g. bit-flipped) programs from inflating the tile sets.
        let cap = cx.config.mrf_entries();
        let clamp =
            move |start: u32, count: u32| start.min(cap)..start.saturating_add(count).min(cap);

        let preloaded: HashSet<u32> = cx
            .options
            .preloaded
            .iter()
            .filter(|r| r.mem == MemId::MatrixRf)
            .flat_map(|r| clamp(r.start, r.len))
            .collect();

        // Phase 0: tiles the whole program ever reads.
        let mut ever_read: HashSet<u32> = HashSet::new();
        walk(cx.program, WalkMode::Runtime, |step| {
            if let Some(TileAccess::Read { start, count }) =
                tile_accesses(step.item_ref, step.rows, step.cols)
            {
                ever_read.extend(clamp(start, count));
            }
        });

        // Phase 1: interval walk. `loaded` tracks program loads, keyed per
        // tile; `last_reader` the most recent mv_mul over each tile, reset
        // on overwrite so repeated streaming reports each WAR site once.
        let mut loaded: HashMap<u32, LoadRec> = HashMap::new();
        let mut last_reader: HashMap<u32, (usize, usize)> = HashMap::new();
        let mut uninit: BTreeMap<(usize, usize), BTreeSet<u32>> = BTreeMap::new();
        let mut dead: BTreeMap<(usize, usize), BTreeSet<u32>> = BTreeMap::new();
        let mut war: BTreeMap<(usize, usize), BTreeSet<u32>> = BTreeMap::new();
        walk(cx.program, WalkMode::Runtime, |step| {
            match tile_accesses(step.item_ref, step.rows, step.cols) {
                Some(TileAccess::Read { start, count }) => {
                    for t in clamp(start, count) {
                        if let Some(rec) = loaded.get_mut(&t) {
                            rec.read = true;
                        } else if !preloaded.contains(&t) && step.unroll == 0 {
                            uninit
                                .entry((step.segment, step.item))
                                .or_default()
                                .insert(t);
                        }
                        last_reader.insert(t, (step.segment, step.item));
                    }
                }
                Some(TileAccess::Write { start, count }) => {
                    for t in clamp(start, count) {
                        if last_reader.remove(&t).is_some() {
                            war.entry((step.segment, step.item)).or_default().insert(t);
                        }
                        let rec = LoadRec {
                            segment: step.segment,
                            item: step.item,
                            read: false,
                        };
                        if let Some(prev) = loaded.insert(t, rec) {
                            if !prev.read {
                                dead.entry((prev.segment, prev.item)).or_default().insert(t);
                            }
                        }
                    }
                }
                None => {}
            }
        });

        // Loads that survive to the end unread, with the tile unread
        // program-wide, are dead.
        for (t, rec) in &loaded {
            if !rec.read && !ever_read.contains(t) {
                dead.entry((rec.segment, rec.item)).or_default().insert(*t);
            }
        }

        for ((segment, item), tiles) in uninit {
            out.push(Diagnostic::new(
                DiagCode::MrfUninitializedRead,
                segment,
                item,
                format!(
                    "mv_mul reads MRF tiles {} never loaded by the program and \
                     not declared host-preloaded",
                    format_ranges(tiles)
                ),
            ));
        }
        for ((segment, item), tiles) in dead {
            out.push(Diagnostic::new(
                DiagCode::MrfDeadLoad,
                segment,
                item,
                format!(
                    "MRF tiles {} loaded here are overwritten or unused before \
                     any mv_mul reads them",
                    format_ranges(tiles)
                ),
            ));
        }
        for ((segment, item), tiles) in war {
            out.push(Diagnostic::new(
                DiagCode::MrfWriteAfterRead,
                segment,
                item,
                format!(
                    "m_wr overwrites MRF tiles {} previously read by mv_mul; the \
                     double-buffered stream serializes here until the read drains",
                    format_ranges(tiles)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{analyze_with, AnalysisOptions, DiagCode, Severity};
    use crate::config::NpuConfig;
    use crate::isa::{MemId, ProgramBuilder};

    fn cfg() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(8)
            .lanes(4)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .build()
            .unwrap()
    }

    fn base_options() -> AnalysisOptions {
        AnalysisOptions::default()
            .with_input_vectors(1_000)
            .with_input_matrices(1_000)
            .preload(MemId::InitialVrf, 0, 32)
    }

    #[test]
    fn mv_mul_of_unloaded_tiles_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::MrfUninitializedRead)
            .expect("BW022 expected");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("[0..4]"), "{}", d.message);
    }

    #[test]
    fn streamed_then_multiplied_tiles_are_initialized() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn double_buffered_overwrite_is_an_info_serialization_point() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.begin_loop(3).unwrap();
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let war: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::MrfWriteAfterRead)
            .collect();
        assert_eq!(war.len(), 1, "{report}");
        assert_eq!((war[0].segment, war[0].item), (1, 0));
        assert!(report.is_clean(), "infos only: {report}");
    }

    #[test]
    fn overwritten_unread_load_is_a_dead_load() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 2)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(2)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let report = analyze_with(&b.build(), &cfg(), base_options());
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::MrfDeadLoad)
            .collect();
        assert_eq!(dead.len(), 1, "{report}");
        // Tiles 2..4 of the first load are overwritten unread; tiles 0..2
        // are never multiplied at all. All four anchor at the first load.
        assert_eq!((dead[0].segment, dead[0].item), (0, 2));
        assert!(dead[0].message.contains("[0..4]"), "{}", dead[0].message);
    }
}
