//! The Brainwave NPU: the paper's primary contribution, reproduced in
//! software.
//!
//! This crate implements the architecture (§IV) and microarchitecture (§V)
//! of the Project Brainwave neural processing unit as a functionally
//! executing, cycle-level simulator:
//!
//! * [`isa`] — the single-threaded mega-SIMD instruction set: compound
//!   matrix-vector and vector-vector operations on fixed-size native
//!   vectors, explicit instruction chaining, scalar tiling registers, a
//!   firmware-style [`isa::ProgramBuilder`], and a binary program format.
//! * [`NpuConfig`] — the synthesis-specialization parameter set (§VI):
//!   native dimension, lanes, tile engines, MFUs, precision, clock; with
//!   the Table III instances `BW_S5`, `BW_A10`, `BW_S10` built in.
//! * [`Npu`] — the processor: a matrix-vector multiplier scaled across tile
//!   engines, dot-product engines and lanes; crossbar-connected
//!   multifunction units; banked matrix/vector register files; network
//!   queues and DRAM; and hierarchical decode and dispatch. Programs
//!   execute functionally (block floating point matrix math, float16
//!   secondary operations) while a calibrated cycle model tracks latency,
//!   utilization and stalls ([`RunStats`]).
//! * [`analysis`] — a static dataflow linter over firmware: capacity,
//!   VRF liveness, MRF hazard, network-queue balance, and chain-shape
//!   passes emitting `BW0xx` diagnostics that gate deployment.
//!
//! # Quickstart
//!
//! ```
//! use bw_core::{Npu, NpuConfig};
//! use bw_core::isa::{MemId, ProgramBuilder};
//!
//! // A tiny 1-tile NPU and a program that ReLUs a vector from the network.
//! let cfg = NpuConfig::builder()
//!     .native_dim(4)
//!     .lanes(2)
//!     .tile_engines(1)
//!     .build()?;
//! let mut npu = Npu::new(cfg);
//! npu.push_input(vec![1.0, -2.0, 3.0, -4.0])?;
//!
//! let mut b = ProgramBuilder::new();
//! b.set_rows(1).set_cols(1);
//! b.v_rd(MemId::NetQ, 0).v_relu().v_wr(MemId::NetQ, 0).end_chain()?;
//!
//! let stats = npu.run(&b.build())?;
//! assert_eq!(npu.pop_output().unwrap(), vec![1.0, 0.0, 3.0, 0.0]);
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod config;
mod hdd;
pub mod isa;
mod mem;
mod mfu;
mod mvm;
mod npu;
mod stats;
mod trace;
mod trace_report;
mod validate;

pub use analysis::{
    analyze, analyze_artifact, analyze_artifact_with, analyze_with, artifact_cycle_bounds,
    cycle_bounds, AnalysisOptions, AnalysisPass, AnalysisReport, Analyzer, ArtifactContext,
    ArtifactPass, ArtifactStage, ArtifactUnit, ArtifactView, CycleBounds, DiagCode, Diagnostic,
    PreloadedRange, Severity, StageFlow, UnitSummary,
};
pub use config::{ConfigError, NpuConfig, NpuConfigBuilder, TimingParams};
pub use hdd::{DispatchLevel, HddExpansion};
pub use npu::{ChainKind, ChainTrace, ExecMode, KernelMode, Npu, SimError};
pub use stats::RunStats;
pub use trace::{SinkHandle, SpanCollector, SpanKind, SpanRecord, TraceId, TraceSink};
pub use trace_report::{KindSummary, TraceSummary};
pub use validate::{ValidateError, ValidateErrorKind};
