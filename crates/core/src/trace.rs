//! Structured span tracing: the generalized, propagating form of
//! [`ChainTrace`](crate::ChainTrace) collection.
//!
//! [`Npu::set_trace`](crate::Npu::set_trace) collects flat per-chain
//! timing records for post-hoc analysis. This module generalizes that
//! into an *event stream*: the simulator emits [`SpanRecord`]s — chain
//! dispatch/retire, MVM tile streaming, MFU stream occupancy, stall
//! intervals, and whole-run envelopes — into a caller-supplied
//! [`TraceSink`], each record carrying a propagated [`TraceId`] and
//! device ordinal so a serving layer can attribute accelerator work to
//! the request that caused it.
//!
//! The stream is zero-cost when disabled: with no sink installed the
//! simulator performs one `Option` check per chain and allocates
//! nothing (pinned by `tests/trace_cost.rs`).

use std::fmt;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::npu::ChainKind;

/// A propagated trace identifier. The layer that owns request identity
/// (for example a serving front end) assigns it; the simulator only
/// carries it into every span it emits.
pub type TraceId = u64;

/// What interval of simulated time a span describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum SpanKind {
    /// One whole [`Npu::run`](crate::Npu::run): cycle 0 to the last
    /// architecturally visible effect.
    Run,
    /// One chain, from its actual start to result visibility (retire).
    Chain(ChainKind),
    /// The MVM streaming matrix tiles for one chain.
    MvmStream,
    /// The MFU stream occupied by one chain.
    MfuStream,
    /// A chain waiting on data dependencies beyond dispatch and resource
    /// availability.
    DepStall,
    /// A chain waiting for its resource to drain beyond dispatch and
    /// dependency readiness.
    ResourceStall,
    /// A network transfer between cooperating devices (scatter or gather
    /// leg of a sharded model). Emitted by the serving layer, not the
    /// device simulator: `device` is the far end's worker id and the
    /// interval is the modeled transfer time converted to device cycles.
    NetTransfer,
    /// A fleet-control operation (replica preload, migration phase,
    /// controller decision). Emitted by the fleet layer, not the device
    /// simulator: `device` is the worker the operation targets and the
    /// interval is the operation's simulated duration converted at a
    /// nominal clock.
    FleetOp,
    /// An SLO alert's firing interval, fire to clear. Emitted by the
    /// observability layer, not the device simulator: `device` is the
    /// ordinal of the SLO spec the alert belongs to and the interval is
    /// wall time converted at a nominal clock.
    SloAlert,
    /// One column of a multi-column batched run
    /// ([`Npu::run_batch`](crate::Npu::run_batch)): the interval this
    /// column's replay occupied inside the run envelope. `chain` is the
    /// column ordinal (1-based). Only emitted when the batch holds more
    /// than one column.
    BatchColumn,
}

impl SpanKind {
    /// A stable, export-friendly name for the span kind.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Chain(ChainKind::Mvm) => "chain-mvm",
            SpanKind::Chain(ChainKind::Mfu) => "chain-mfu",
            SpanKind::Chain(ChainKind::Move) => "chain-move",
            SpanKind::Chain(ChainKind::MatrixMove) => "chain-matrix-move",
            SpanKind::MvmStream => "mvm-stream",
            SpanKind::MfuStream => "mfu-stream",
            SpanKind::DepStall => "dep-stall",
            SpanKind::ResourceStall => "resource-stall",
            SpanKind::NetTransfer => "net-transfer",
            SpanKind::FleetOp => "fleet-op",
            SpanKind::SloAlert => "slo-alert",
            SpanKind::BatchColumn => "batch-column",
        }
    }

    /// The chrome-trace display lane ("thread" row) a span of this kind
    /// renders into. The assignment is the single source of truth for
    /// every exporter: both kinds of stall share the dedicated stall
    /// lane, and each higher layer (network, fleet, SLO) owns one lane
    /// so its spans never interleave with device activity. New span
    /// kinds must extend this match — it is exhaustive by construction,
    /// and `tests::lanes_cover_every_kind` pins the mapping.
    pub fn lane(self) -> u64 {
        match self {
            SpanKind::Run => 0,
            SpanKind::Chain(_) => 1,
            SpanKind::MvmStream => 2,
            SpanKind::MfuStream => 3,
            SpanKind::DepStall | SpanKind::ResourceStall => 4,
            SpanKind::NetTransfer => 5,
            SpanKind::FleetOp => 6,
            SpanKind::SloAlert => 7,
            SpanKind::BatchColumn => 8,
        }
    }
}

/// One emitted span: a half-open cycle interval `[start_cycle,
/// end_cycle)` on one device, tagged with the propagated trace id and
/// the ordinal of the chain that produced it (0 for [`SpanKind::Run`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct SpanRecord {
    /// The propagated trace identifier (see [`TraceId`]).
    pub trace_id: TraceId,
    /// Device ordinal within the traced deployment.
    pub device: u32,
    /// What the interval describes.
    pub kind: SpanKind,
    /// Ordinal of the emitting chain within its run (1-based; 0 for the
    /// run envelope).
    pub chain: u64,
    /// First cycle of the interval.
    pub start_cycle: u64,
    /// One past the last cycle of the interval.
    pub end_cycle: u64,
}

impl SpanRecord {
    /// The span's length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// A consumer of emitted spans. Implementations must be cheap: the
/// simulator calls [`TraceSink::span`] synchronously on its execution
/// path.
pub trait TraceSink: Send {
    /// Receives one span.
    fn span(&mut self, span: &SpanRecord);
}

/// A cloneable, shareable handle to a [`TraceSink`], installable on an
/// [`Npu`](crate::Npu) with
/// [`Npu::set_trace_sink`](crate::Npu::set_trace_sink).
///
/// Cloning the handle (or cloning an `Npu` carrying one) shares the
/// underlying sink; emission takes a short mutex.
#[derive(Clone)]
pub struct SinkHandle(Arc<Mutex<dyn TraceSink>>);

impl SinkHandle {
    /// Wraps a sink in a shareable handle.
    pub fn new(sink: impl TraceSink + 'static) -> SinkHandle {
        SinkHandle(Arc::new(Mutex::new(sink)))
    }

    /// Delivers one span to the sink.
    pub fn emit(&self, span: &SpanRecord) {
        // A sink that panicked mid-span poisoned the mutex; keep the
        // stream flowing rather than cascading panics into the simulator.
        let mut sink = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        sink.span(span);
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle")
    }
}

/// The standard in-memory sink: accumulates every span it receives.
///
/// The collector and the [`SinkHandle`]s produced by
/// [`SpanCollector::handle`] share storage, so spans emitted through
/// any handle are visible to [`SpanCollector::drain`] — no downcasting
/// through the trait object is ever needed.
#[derive(Clone, Debug, Default)]
pub struct SpanCollector {
    spans: Arc<Mutex<Vec<SpanRecord>>>,
}

struct CollectorSink {
    spans: Arc<Mutex<Vec<SpanRecord>>>,
}

impl TraceSink for CollectorSink {
    fn span(&mut self, span: &SpanRecord) {
        let mut spans = match self.spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        spans.push(*span);
    }
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> SpanCollector {
        SpanCollector::default()
    }

    /// A sink handle feeding this collector. Install one per device;
    /// handles share storage.
    pub fn handle(&self) -> SinkHandle {
        SinkHandle::new(CollectorSink {
            spans: Arc::clone(&self.spans),
        })
    }

    /// Takes every span collected so far, leaving the collector empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut spans = match self.spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut *spans)
    }

    /// Spans collected and not yet drained.
    pub fn len(&self) -> usize {
        match self.spans.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether no spans are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            device: 0,
            kind,
            chain: 1,
            start_cycle: start,
            end_cycle: end,
        }
    }

    #[test]
    fn collector_handles_share_storage() {
        let collector = SpanCollector::new();
        let a = collector.handle();
        let b = collector.handle();
        a.emit(&span(SpanKind::Run, 0, 10));
        b.emit(&span(SpanKind::MvmStream, 2, 6));
        assert_eq!(collector.len(), 2);
        let drained = collector.drain();
        assert_eq!(drained.len(), 2);
        assert!(collector.is_empty());
        assert_eq!(drained[0].cycles(), 10);
        assert_eq!(drained[1].kind, SpanKind::MvmStream);
    }

    /// Every kind instance: one per enum variant, one per `ChainKind`.
    /// New variants must be added here or the label/lane pins go stale.
    fn all_kinds() -> [SpanKind; 13] {
        [
            SpanKind::Run,
            SpanKind::Chain(ChainKind::Mvm),
            SpanKind::Chain(ChainKind::Mfu),
            SpanKind::Chain(ChainKind::Move),
            SpanKind::Chain(ChainKind::MatrixMove),
            SpanKind::MvmStream,
            SpanKind::MfuStream,
            SpanKind::DepStall,
            SpanKind::ResourceStall,
            SpanKind::NetTransfer,
            SpanKind::FleetOp,
            SpanKind::SloAlert,
            SpanKind::BatchColumn,
        ]
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = all_kinds();
        let labels: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn lanes_cover_every_kind() {
        // Pin the full mapping: the two stall kinds share lane 4, every
        // other kind owns its lane, and lanes are dense in 0..=8 so
        // exporters can size their lane tables from the maximum.
        let expected: [(SpanKind, u64); 13] = [
            (SpanKind::Run, 0),
            (SpanKind::Chain(ChainKind::Mvm), 1),
            (SpanKind::Chain(ChainKind::Mfu), 1),
            (SpanKind::Chain(ChainKind::Move), 1),
            (SpanKind::Chain(ChainKind::MatrixMove), 1),
            (SpanKind::MvmStream, 2),
            (SpanKind::MfuStream, 3),
            (SpanKind::DepStall, 4),
            (SpanKind::ResourceStall, 4),
            (SpanKind::NetTransfer, 5),
            (SpanKind::FleetOp, 6),
            (SpanKind::SloAlert, 7),
            (SpanKind::BatchColumn, 8),
        ];
        for (kind, lane) in expected {
            assert_eq!(kind.lane(), lane, "lane drifted for {kind:?}");
        }
        let lanes: std::collections::BTreeSet<u64> = all_kinds().iter().map(|k| k.lane()).collect();
        assert_eq!(lanes, (0..=8).collect());
    }

    #[test]
    fn cycles_saturate_on_inverted_spans() {
        assert_eq!(span(SpanKind::Run, 10, 4).cycles(), 0);
    }
}
