//! Execution statistics produced by a simulated run.

use serde::{Deserialize, Serialize};

/// Cycle-level statistics for one [`Npu::run`].
///
/// [`Npu::run`]: crate::Npu::run
///
/// Utilization here follows the paper's definition (Figure 7): the
/// percentage of peak FLOPS actually achieved. Because padded tiles dispatch
/// real MACs that do no useful model work, *dispatched* utilization can
/// exceed *effective* utilization — call [`RunStats::effective_tflops`] and
/// [`RunStats::effective_utilization`] with the model's true operation count
/// to reproduce the paper's numbers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles from first dispatch to last writeback.
    pub cycles: u64,
    /// Compound instruction chains executed.
    pub chains: u64,
    /// Compound instructions streamed by the control processor.
    pub instructions: u64,
    /// Multiply-accumulates dispatched by the MVM (including padding).
    pub mvm_macs: u64,
    /// Point-wise element operations executed by the MFUs.
    pub mfu_element_ops: u64,
    /// Cycles the MVM spent streaming matrix tiles.
    pub mvm_busy_cycles: u64,
    /// Cycles the vector pipeline (MVM head + MFUs) was occupied.
    pub pipeline_busy_cycles: u64,
    /// Cycles chains spent waiting on data dependencies beyond any resource
    /// or dispatch wait.
    pub dep_stall_cycles: u64,
    /// Cycles chains spent waiting for the pipeline to drain beyond any
    /// dependency or dispatch wait.
    pub resource_stall_cycles: u64,
    /// Native vectors consumed from the network input queue.
    pub net_vectors_in: u64,
    /// Native vectors produced to the network output queue.
    pub net_vectors_out: u64,
    /// Peak FLOPs per cycle of the executing configuration.
    pub peak_flops_per_cycle: u64,
    /// Clock frequency of the executing configuration, in hertz.
    pub clock_hz: f64,
}

impl RunStats {
    /// Wall-clock latency of the run in seconds.
    pub fn latency_seconds(&self) -> f64 {
        if self.clock_hz > 0.0 {
            self.cycles as f64 / self.clock_hz
        } else {
            0.0
        }
    }

    /// Wall-clock latency in milliseconds (the unit of Table V).
    pub fn latency_ms(&self) -> f64 {
        self.latency_seconds() * 1e3
    }

    /// Throughput counting every dispatched MAC as two FLOPs — the
    /// hardware's own activity level, padding included.
    pub fn dispatched_tflops(&self) -> f64 {
        let s = self.latency_seconds();
        if s > 0.0 {
            (2 * self.mvm_macs) as f64 / s / 1e12
        } else {
            0.0
        }
    }

    /// Effective throughput in TFLOPS for a model whose true operation
    /// count is `model_ops` (the paper's headline metric).
    pub fn effective_tflops(&self, model_ops: u64) -> f64 {
        let s = self.latency_seconds();
        if s > 0.0 {
            model_ops as f64 / s / 1e12
        } else {
            0.0
        }
    }

    /// Effective utilization: fraction of peak FLOPS achieved on useful
    /// model operations (Figure 7's y-axis, as a fraction of 1).
    pub fn effective_utilization(&self, model_ops: u64) -> f64 {
        let peak = self.peak_flops_per_cycle as f64 * self.cycles as f64;
        if peak > 0.0 {
            model_ops as f64 / peak
        } else {
            0.0
        }
    }

    /// Fraction of cycles the MVM was streaming.
    pub fn mvm_occupancy(&self) -> f64 {
        if self.cycles > 0 {
            self.mvm_busy_cycles as f64 / self.cycles as f64
        } else {
            0.0
        }
    }

    /// Merges another run's statistics into this one, extending the cycle
    /// count (used when a model executes as several back-to-back programs).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.chains += other.chains;
        self.instructions += other.instructions;
        self.mvm_macs += other.mvm_macs;
        self.mfu_element_ops += other.mfu_element_ops;
        self.mvm_busy_cycles += other.mvm_busy_cycles;
        self.pipeline_busy_cycles += other.pipeline_busy_cycles;
        self.dep_stall_cycles += other.dep_stall_cycles;
        self.resource_stall_cycles += other.resource_stall_cycles;
        self.net_vectors_in += other.net_vectors_in;
        self.net_vectors_out += other.net_vectors_out;
        if self.peak_flops_per_cycle == 0 {
            self.peak_flops_per_cycle = other.peak_flops_per_cycle;
            self.clock_hz = other.clock_hz;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            cycles: 1000,
            mvm_macs: 50_000_000,
            peak_flops_per_cycle: 192_000,
            clock_hz: 250e6,
            ..RunStats::default()
        }
    }

    #[test]
    fn latency_conversion() {
        let s = sample();
        assert!((s.latency_seconds() - 4e-6).abs() < 1e-12);
        assert!((s.latency_ms() - 4e-3).abs() < 1e-9);
    }

    #[test]
    fn throughput_and_utilization() {
        let s = sample();
        // 100M flops in 4us = 25 TFLOPS.
        assert!((s.dispatched_tflops() - 25.0).abs() < 1e-9);
        // Effective with 96M useful ops: 96e6 / (192000*1000) = 0.5.
        assert!((s.effective_utilization(96_000_000) - 0.5).abs() < 1e-12);
        assert!((s.effective_tflops(96_000_000) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let s = RunStats::default();
        assert_eq!(s.latency_seconds(), 0.0);
        assert_eq!(s.dispatched_tflops(), 0.0);
        assert_eq!(s.effective_utilization(100), 0.0);
        assert_eq!(s.mvm_occupancy(), 0.0);
    }

    #[test]
    fn accumulate_extends_cycles() {
        let mut a = sample();
        let b = sample();
        a.accumulate(&b);
        assert_eq!(a.cycles, 2000);
        assert_eq!(a.mvm_macs, 100_000_000);
        assert_eq!(a.peak_flops_per_cycle, 192_000);
    }
}
