//! On-chip and off-chip storage components: vector register files, the
//! matrix register file, DRAM, and the network I/O queues.
//!
//! Functional contents are stored at full `f32` precision; quantization
//! happens at the datapath boundaries (BFP at the MVM input, float16 inside
//! the MFUs), mirroring where precision is lost in the hardware.
//!
//! Storage is slab-backed: a vector register file is one flat `f32` slab
//! (`entries * native_dim` elements) read and written as borrowed slices, so
//! the simulator's hot path never clones a vector. Each file also carries
//! its own RAW scoreboard — per-entry ready cycles the NPU consults for
//! dependency tracking — replacing the former `HashMap<Slot, u64>` with a
//! dense array indexed the same way the hardware's scoreboard is.

use std::collections::VecDeque;

use bw_bfp::BfpMatrix;

use crate::npu::SimError;

/// A vector register file: fixed capacity, one native vector per entry.
///
/// Uninitialized entries read as zero vectors, matching SRAM power-on state
/// and the firmware convention that initial RNN state is zero.
#[derive(Clone, Debug)]
pub(crate) struct VectorFile {
    name: &'static str,
    native_dim: usize,
    capacity: usize,
    /// `capacity * native_dim` elements, zero-initialized.
    data: Vec<f32>,
    /// Cycle at which each entry's most recent write lands (0 = power-on).
    ready: Vec<u64>,
}

impl VectorFile {
    pub(crate) fn new(name: &'static str, capacity: usize, native_dim: usize) -> Self {
        VectorFile {
            name,
            native_dim,
            capacity,
            data: vec![0.0; capacity * native_dim],
            ready: vec![0; capacity],
        }
    }

    pub(crate) fn check(&self, index: u32, width: u32) -> Result<(), SimError> {
        let end = index as u64 + u64::from(width);
        if end > self.capacity as u64 {
            return Err(SimError::VrfIndexOutOfRange {
                file: self.name,
                index,
                width,
                capacity: self.capacity as u32,
            });
        }
        Ok(())
    }

    /// Borrows `width` consecutive native vectors starting at `index` as one
    /// flat slice (`width * native_dim` elements).
    pub(crate) fn read(&self, index: u32, width: u32) -> Result<&[f32], SimError> {
        self.check(index, width)?;
        let start = index as usize * self.native_dim;
        let len = width as usize * self.native_dim;
        Ok(&self.data[start..start + len])
    }

    /// Writes consecutive native vectors starting at `index` from a flat
    /// slice whose length must be a multiple of `native_dim`.
    pub(crate) fn write(&mut self, index: u32, flat: &[f32]) -> Result<(), SimError> {
        debug_assert_eq!(flat.len() % self.native_dim.max(1), 0);
        let width = (flat.len() / self.native_dim.max(1)) as u32;
        self.check(index, width)?;
        let start = index as usize * self.native_dim;
        self.data[start..start + flat.len()].copy_from_slice(flat);
        Ok(())
    }

    /// Latest ready cycle across `width` entries starting at `index`
    /// (bounds must already be checked).
    pub(crate) fn ready_at(&self, index: u32, width: u32) -> u64 {
        self.ready[index as usize..(index + width) as usize]
            .iter()
            .copied()
            .fold(0, u64::max)
    }

    /// Publishes the ready cycle of `width` entries starting at `index`.
    pub(crate) fn mark_ready(&mut self, index: u32, width: u32, at: u64) {
        for t in &mut self.ready[index as usize..(index + width) as usize] {
            *t = at;
        }
    }

    /// Resets the RAW scoreboard (start of a run; data persists).
    pub(crate) fn clear_ready(&mut self) {
        self.ready.iter_mut().for_each(|t| *t = 0);
    }
}

/// One matrix register file entry.
#[derive(Clone, Debug)]
enum MrfSlot {
    /// Never written: reads are an error (uninitialized weights).
    Empty,
    /// Reserved by [`MatrixFile::reserve`]: reads resolve to the shared
    /// zero-tile template without a per-entry allocation.
    Reserved,
    /// Holds a quantized native tile.
    Tile(BfpMatrix),
}

/// The matrix register file: banked across tile engines, one native
/// `N × N` tile per entry, read one row per dot-product engine per cycle.
#[derive(Clone, Debug)]
pub(crate) struct MatrixFile {
    slots: Vec<MrfSlot>,
    /// Shared zero tile backing every `Reserved` slot. Set once by
    /// [`MatrixFile::set_zero_template`] before any reservation.
    zero_template: Option<BfpMatrix>,
    /// Cycle at which each entry's most recent write lands.
    ready: Vec<u64>,
    /// Write-after-read tracking: the last cycle at which an in-flight
    /// `mv_mul` is still streaming each tile. A matrix write into a tile
    /// must wait for this (double-buffering's correctness condition).
    read_until: Vec<u64>,
}

impl MatrixFile {
    pub(crate) fn new(capacity: usize) -> Self {
        MatrixFile {
            slots: (0..capacity).map(|_| MrfSlot::Empty).collect(),
            zero_template: None,
            ready: vec![0; capacity],
            read_until: vec![0; capacity],
        }
    }

    pub(crate) fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    pub(crate) fn tile(&self, index: u32) -> Result<&BfpMatrix, SimError> {
        match self
            .slots
            .get(index as usize)
            .ok_or(SimError::MrfIndexOutOfRange {
                index,
                capacity: self.capacity(),
            })? {
            MrfSlot::Tile(tile) => Ok(tile),
            MrfSlot::Reserved => Ok(self
                .zero_template
                .as_ref()
                .expect("Reserved slots require a zero template")),
            MrfSlot::Empty => Err(SimError::MrfEntryUninitialized { index }),
        }
    }

    pub(crate) fn store(&mut self, index: u32, tile: BfpMatrix) -> Result<(), SimError> {
        let capacity = self.capacity();
        let slot = self
            .slots
            .get_mut(index as usize)
            .ok_or(SimError::MrfIndexOutOfRange { index, capacity })?;
        *slot = MrfSlot::Tile(tile);
        Ok(())
    }

    /// Installs the zero-tile template `Reserved` slots resolve to. A no-op
    /// if already installed (the template depends only on the NPU config).
    pub(crate) fn set_zero_template(&mut self, tile: BfpMatrix) {
        if self.zero_template.is_none() {
            self.zero_template = Some(tile);
        }
    }

    pub(crate) fn has_zero_template(&self) -> bool {
        self.zero_template.is_some()
    }

    /// Marks an entry as holding the shared zero tile without cloning it —
    /// the cheap timing-only counterpart of [`MatrixFile::store`].
    /// [`MatrixFile::set_zero_template`] must have been called first.
    pub(crate) fn reserve(&mut self, index: u32) -> Result<(), SimError> {
        debug_assert!(self.zero_template.is_some());
        let capacity = self.capacity();
        let slot = self
            .slots
            .get_mut(index as usize)
            .ok_or(SimError::MrfIndexOutOfRange { index, capacity })?;
        *slot = MrfSlot::Reserved;
        Ok(())
    }

    /// Latest ready cycle across `count` entries starting at `index`.
    pub(crate) fn ready_at(&self, index: u32, count: u32) -> u64 {
        let end = ((index + count) as usize).min(self.ready.len());
        self.ready[(index as usize).min(end)..end]
            .iter()
            .copied()
            .fold(0, u64::max)
    }

    pub(crate) fn mark_ready(&mut self, index: u32, at: u64) {
        if let Some(t) = self.ready.get_mut(index as usize) {
            *t = at;
        }
    }

    /// Latest in-flight read across `count` entries starting at `index`.
    pub(crate) fn read_until_at(&self, index: u32, count: u32) -> u64 {
        let end = ((index + count) as usize).min(self.read_until.len());
        self.read_until[(index as usize).min(end)..end]
            .iter()
            .copied()
            .fold(0, u64::max)
    }

    /// Extends the in-flight read window of `count` entries to `until`.
    pub(crate) fn mark_read_until(&mut self, index: u32, count: u32, until: u64) {
        let end = ((index + count) as usize).min(self.read_until.len());
        for t in &mut self.read_until[(index as usize).min(end)..end] {
            *t = (*t).max(until);
        }
    }

    /// Resets both scoreboards (start of a run; tiles persist).
    pub(crate) fn clear_ready(&mut self) {
        self.ready.iter_mut().for_each(|t| *t = 0);
        self.read_until.iter_mut().for_each(|t| *t = 0);
    }
}

/// Off-chip DRAM with separate vector and matrix address spaces, growing on
/// write. Used to stage CNN weights that do not fit the MRF (§V-A) and as a
/// spill target.
#[derive(Clone, Debug, Default)]
pub(crate) struct Dram {
    /// Flat vector storage, grown on write; unwritten space reads as zeros.
    vector_data: Vec<f32>,
    matrices: Vec<Option<BfpMatrix>>,
    vector_ready: Vec<u64>,
    matrix_ready: Vec<u64>,
}

impl Dram {
    /// Appends `width` native vectors starting at `index` to `out`;
    /// unwritten space reads as zeros.
    pub(crate) fn read_vectors_into(
        &self,
        index: u32,
        width: u32,
        native_dim: usize,
        out: &mut Vec<f32>,
    ) {
        let start = index as usize * native_dim;
        let len = width as usize * native_dim;
        let have_end = self.vector_data.len().min(start + len);
        if start < have_end {
            out.extend_from_slice(&self.vector_data[start..have_end]);
        }
        out.resize(
            out.len() + (start + len).saturating_sub(have_end.max(start)),
            0.0,
        );
    }

    /// Writes native vectors from a flat slice starting at `index`, growing
    /// the address space as needed.
    pub(crate) fn write_vectors(&mut self, index: u32, flat: &[f32], native_dim: usize) {
        let start = index as usize * native_dim;
        let end = start + flat.len();
        if end > self.vector_data.len() {
            self.vector_data.resize(end, 0.0);
        }
        self.vector_data[start..end].copy_from_slice(flat);
    }

    pub(crate) fn read_matrix(&self, index: u32) -> Result<BfpMatrix, SimError> {
        self.matrices
            .get(index as usize)
            .and_then(|m| m.clone())
            .ok_or(SimError::DramMatrixUninitialized { index })
    }

    pub(crate) fn write_matrix(&mut self, index: u32, tile: BfpMatrix) {
        let end = index as usize + 1;
        if end > self.matrices.len() {
            self.matrices.resize(end, None);
        }
        self.matrices[index as usize] = Some(tile);
    }

    /// Latest ready cycle across `width` vector entries starting at `index`
    /// (entries beyond the scoreboard read as 0 — never written this run).
    pub(crate) fn vector_ready_at(&self, index: u32, width: u32) -> u64 {
        let end = ((index + width) as usize).min(self.vector_ready.len());
        self.vector_ready[(index as usize).min(end)..end]
            .iter()
            .copied()
            .fold(0, u64::max)
    }

    pub(crate) fn mark_vectors_ready(&mut self, index: u32, width: u32, at: u64) {
        let end = (index + width) as usize;
        if end > self.vector_ready.len() {
            self.vector_ready.resize(end, 0);
        }
        for t in &mut self.vector_ready[index as usize..end] {
            *t = at;
        }
    }

    pub(crate) fn matrix_ready_at(&self, index: u32) -> u64 {
        self.matrix_ready.get(index as usize).copied().unwrap_or(0)
    }

    pub(crate) fn mark_matrix_ready(&mut self, index: u32, at: u64) {
        let end = index as usize + 1;
        if end > self.matrix_ready.len() {
            self.matrix_ready.resize(end, 0);
        }
        self.matrix_ready[index as usize] = at;
    }

    /// Resets the RAW scoreboards (start of a run; contents persist).
    pub(crate) fn clear_ready(&mut self) {
        self.vector_ready.iter_mut().for_each(|t| *t = 0);
        self.matrix_ready.iter_mut().for_each(|t| *t = 0);
    }
}

/// The network input/output queues connecting the NPU to the datacenter
/// network (Figure 3). Vectors arrive with a timestamp so the cycle model
/// can represent request arrival.
#[derive(Clone, Debug, Default)]
pub(crate) struct NetQueues {
    input: VecDeque<(Vec<f32>, u64)>,
    output: VecDeque<Vec<f32>>,
    input_matrices: VecDeque<BfpMatrix>,
}

impl NetQueues {
    /// Enqueues one native input vector arriving at `at_cycle`.
    pub(crate) fn push_input(&mut self, vector: Vec<f32>, at_cycle: u64) {
        self.input.push_back((vector, at_cycle));
    }

    pub(crate) fn push_input_matrix(&mut self, tile: BfpMatrix) {
        self.input_matrices.push_back(tile);
    }

    /// Pops `width` native vectors, appending their contents to `out` when
    /// one is supplied (timing-only runs pass `None` and skip the copy);
    /// returns the latest arrival cycle among them (the time the read could
    /// begin).
    pub(crate) fn pop_input_into(
        &mut self,
        width: u32,
        mut out: Option<&mut Vec<f32>>,
    ) -> Result<u64, SimError> {
        if (self.input.len() as u64) < u64::from(width) {
            return Err(SimError::NetQueueEmpty {
                requested: width,
                available: self.input.len() as u32,
            });
        }
        let mut ready = 0;
        for _ in 0..width {
            let (v, t) = self.input.pop_front().expect("length checked");
            ready = ready.max(t);
            if let Some(out) = out.as_deref_mut() {
                out.extend_from_slice(&v);
            }
        }
        Ok(ready)
    }

    pub(crate) fn pop_input_matrix(&mut self) -> Result<BfpMatrix, SimError> {
        self.input_matrices
            .pop_front()
            .ok_or(SimError::NetQueueEmpty {
                requested: 1,
                available: 0,
            })
    }

    /// Pushes native vectors from a flat slice (`native_dim` elements each).
    pub(crate) fn push_output(&mut self, flat: &[f32], native_dim: usize) {
        for v in flat.chunks(native_dim.max(1)) {
            self.output.push_back(v.to_vec());
        }
    }

    pub(crate) fn pop_output(&mut self) -> Option<Vec<f32>> {
        self.output.pop_front()
    }

    pub(crate) fn output_len(&self) -> usize {
        self.output.len()
    }

    pub(crate) fn input_len(&self) -> usize {
        self.input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_bfp::BfpFormat;

    fn tile(v: f32) -> BfpMatrix {
        BfpMatrix::quantize(2, 2, &[v; 4], BfpFormat::BFP_1S_5E_5M).expect("shape")
    }

    #[test]
    fn vector_file_reads_zeros_before_first_write() {
        let f = VectorFile::new("test", 4, 3);
        assert_eq!(f.read(0, 2).unwrap(), &[0.0; 6][..]);
    }

    #[test]
    fn vector_file_round_trips_multi_entry_writes() {
        let mut f = VectorFile::new("test", 8, 2);
        f.write(3, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(f.read(3, 2).unwrap(), &[1.0, 2.0, 3.0, 4.0][..]);
        // Neighbours untouched.
        assert_eq!(f.read(2, 1).unwrap(), &[0.0, 0.0][..]);
        assert_eq!(f.read(5, 1).unwrap(), &[0.0, 0.0][..]);
    }

    #[test]
    fn vector_file_bounds_include_width() {
        let mut f = VectorFile::new("test", 4, 2);
        assert!(f.read(3, 1).is_ok());
        assert!(f.read(3, 2).is_err());
        assert!(f.write(4, &[0.0, 0.0]).is_err());
        // Error carries the file name and capacity.
        let err = f.read(2, 3).unwrap_err();
        match err {
            SimError::VrfIndexOutOfRange { file, capacity, .. } => {
                assert_eq!(file, "test");
                assert_eq!(capacity, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn vector_file_scoreboard_tracks_ranges() {
        let mut f = VectorFile::new("test", 8, 2);
        assert_eq!(f.ready_at(0, 8), 0);
        f.mark_ready(2, 3, 100);
        assert_eq!(f.ready_at(2, 1), 100);
        assert_eq!(f.ready_at(0, 8), 100);
        assert_eq!(f.ready_at(0, 2), 0);
        f.mark_ready(3, 1, 50); // overwrite lowers that entry
        assert_eq!(f.ready_at(3, 1), 50);
        assert_eq!(f.ready_at(2, 3), 100);
        f.clear_ready();
        assert_eq!(f.ready_at(0, 8), 0);
    }

    #[test]
    fn matrix_file_distinguishes_oob_and_uninitialized() {
        let mut m = MatrixFile::new(2);
        assert!(matches!(
            m.tile(5),
            Err(SimError::MrfIndexOutOfRange {
                index: 5,
                capacity: 2
            })
        ));
        assert!(matches!(
            m.tile(1),
            Err(SimError::MrfEntryUninitialized { index: 1 })
        ));
        m.store(1, tile(1.0)).unwrap();
        assert!(m.tile(1).is_ok());
        assert!(matches!(
            m.store(2, tile(0.0)),
            Err(SimError::MrfIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn matrix_file_reserved_slots_share_the_zero_template() {
        let mut m = MatrixFile::new(4);
        m.set_zero_template(tile(0.0));
        m.reserve(0).unwrap();
        m.reserve(3).unwrap();
        assert!(m.reserve(4).is_err());
        // Reserved entries read as the zero tile; entry 1 stays empty.
        assert_eq!(m.tile(0).unwrap().dequantize(), vec![0.0; 4]);
        assert_eq!(m.tile(3).unwrap().dequantize(), vec![0.0; 4]);
        assert!(matches!(
            m.tile(1),
            Err(SimError::MrfEntryUninitialized { index: 1 })
        ));
        // A real store overrides the reservation.
        m.store(0, tile(2.0)).unwrap();
        assert!(m.tile(0).unwrap().dequantize()[0] > 1.0);
    }

    #[test]
    fn dram_grows_on_write_and_reads_zeros_for_vectors() {
        let mut d = Dram::default();
        // Unwritten vector entries read as zeros at the requested width.
        let mut out = Vec::new();
        d.read_vectors_into(100, 1, 4, &mut out);
        assert_eq!(out, vec![0.0; 4]);
        d.write_vectors(7, &[1.0, 2.0], 2);
        out.clear();
        d.read_vectors_into(7, 1, 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
        // A read straddling the written frontier zero-fills the tail.
        out.clear();
        d.read_vectors_into(7, 2, 2, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 0.0, 0.0]);
        // Matrices are strict: uninitialized reads are errors.
        assert!(matches!(
            d.read_matrix(0),
            Err(SimError::DramMatrixUninitialized { index: 0 })
        ));
        d.write_matrix(3, tile(2.0));
        assert!(d.read_matrix(3).is_ok());
    }

    #[test]
    fn dram_scoreboards_grow_on_demand() {
        let mut d = Dram::default();
        assert_eq!(d.vector_ready_at(1000, 4), 0);
        assert_eq!(d.matrix_ready_at(1000), 0);
        d.mark_vectors_ready(5, 2, 42);
        assert_eq!(d.vector_ready_at(4, 4), 42);
        d.mark_matrix_ready(3, 7);
        assert_eq!(d.matrix_ready_at(3), 7);
        d.clear_ready();
        assert_eq!(d.vector_ready_at(5, 2), 0);
        assert_eq!(d.matrix_ready_at(3), 0);
    }

    #[test]
    fn net_queue_fifo_and_arrival_times() {
        let mut q = NetQueues::default();
        q.push_input(vec![1.0], 5);
        q.push_input(vec![2.0], 9);
        q.push_input(vec![3.0], 2);
        assert_eq!(q.input_len(), 3);
        // Popping two returns the later of their arrival times.
        let mut vs = Vec::new();
        let ready = q.pop_input_into(2, Some(&mut vs)).unwrap();
        assert_eq!(vs, vec![1.0, 2.0]);
        assert_eq!(ready, 9);
        // Underflow reports counts.
        assert!(matches!(
            q.pop_input_into(2, None),
            Err(SimError::NetQueueEmpty {
                requested: 2,
                available: 1
            })
        ));
        // Copy-free pop still dequeues and reports arrival.
        assert_eq!(q.pop_input_into(1, None).unwrap(), 2);
        assert_eq!(q.input_len(), 0);
    }

    #[test]
    fn net_queue_output_side() {
        let mut q = NetQueues::default();
        q.push_output(&[1.0, 2.0], 1);
        assert_eq!(q.output_len(), 2);
        assert_eq!(q.pop_output().unwrap(), vec![1.0]);
        assert_eq!(q.pop_output().unwrap(), vec![2.0]);
        assert!(q.pop_output().is_none());
    }

    #[test]
    fn net_queue_matrices() {
        let mut q = NetQueues::default();
        assert!(q.pop_input_matrix().is_err());
        q.push_input_matrix(tile(1.5));
        assert!(q.pop_input_matrix().is_ok());
        assert!(q.pop_input_matrix().is_err());
    }
}
