//! On-chip and off-chip storage components: vector register files, the
//! matrix register file, DRAM, and the network I/O queues.
//!
//! Functional contents are stored at full `f32` precision; quantization
//! happens at the datapath boundaries (BFP at the MVM input, float16 inside
//! the MFUs), mirroring where precision is lost in the hardware.

use std::collections::VecDeque;

use bw_bfp::BfpMatrix;

use crate::npu::SimError;

/// A vector register file: fixed capacity, one native vector per entry.
///
/// Uninitialized entries read as zero vectors, matching SRAM power-on state
/// and the firmware convention that initial RNN state is zero.
#[derive(Clone, Debug)]
pub(crate) struct VectorFile {
    name: &'static str,
    native_dim: usize,
    entries: Vec<Option<Vec<f32>>>,
}

impl VectorFile {
    pub(crate) fn new(name: &'static str, capacity: usize, native_dim: usize) -> Self {
        VectorFile {
            name,
            native_dim,
            entries: vec![None; capacity],
        }
    }

    fn check(&self, index: u32, width: u32) -> Result<(), SimError> {
        let end = index as u64 + u64::from(width);
        if end > self.entries.len() as u64 {
            return Err(SimError::VrfIndexOutOfRange {
                file: self.name,
                index,
                width,
                capacity: self.entries.len() as u32,
            });
        }
        Ok(())
    }

    /// Reads `width` consecutive native vectors starting at `index`.
    pub(crate) fn read(&self, index: u32, width: u32) -> Result<Vec<Vec<f32>>, SimError> {
        self.check(index, width)?;
        Ok((0..width)
            .map(|i| {
                self.entries[(index + i) as usize]
                    .clone()
                    .unwrap_or_else(|| vec![0.0; self.native_dim])
            })
            .collect())
    }

    /// Writes consecutive native vectors starting at `index`.
    pub(crate) fn write(&mut self, index: u32, vectors: &[Vec<f32>]) -> Result<(), SimError> {
        self.check(index, vectors.len() as u32)?;
        for (i, v) in vectors.iter().enumerate() {
            debug_assert_eq!(v.len(), self.native_dim);
            self.entries[index as usize + i] = Some(v.clone());
        }
        Ok(())
    }
}

/// The matrix register file: banked across tile engines, one native
/// `N × N` tile per entry, read one row per dot-product engine per cycle.
#[derive(Clone, Debug)]
pub(crate) struct MatrixFile {
    entries: Vec<Option<BfpMatrix>>,
}

impl MatrixFile {
    pub(crate) fn new(capacity: usize) -> Self {
        MatrixFile {
            entries: vec![None; capacity],
        }
    }

    pub(crate) fn capacity(&self) -> u32 {
        self.entries.len() as u32
    }

    pub(crate) fn tile(&self, index: u32) -> Result<&BfpMatrix, SimError> {
        self.entries
            .get(index as usize)
            .ok_or(SimError::MrfIndexOutOfRange {
                index,
                capacity: self.capacity(),
            })?
            .as_ref()
            .ok_or(SimError::MrfEntryUninitialized { index })
    }

    pub(crate) fn store(&mut self, index: u32, tile: BfpMatrix) -> Result<(), SimError> {
        let capacity = self.capacity();
        let slot = self
            .entries
            .get_mut(index as usize)
            .ok_or(SimError::MrfIndexOutOfRange { index, capacity })?;
        *slot = Some(tile);
        Ok(())
    }
}

/// Off-chip DRAM with separate vector and matrix address spaces, growing on
/// write. Used to stage CNN weights that do not fit the MRF (§V-A) and as a
/// spill target.
#[derive(Clone, Debug, Default)]
pub(crate) struct Dram {
    vectors: Vec<Option<Vec<f32>>>,
    matrices: Vec<Option<BfpMatrix>>,
}

impl Dram {
    pub(crate) fn read_vectors(
        &self,
        index: u32,
        width: u32,
        native_dim: usize,
    ) -> Result<Vec<Vec<f32>>, SimError> {
        Ok((0..width)
            .map(|i| {
                self.vectors
                    .get((index + i) as usize)
                    .and_then(|v| v.clone())
                    .unwrap_or_else(|| vec![0.0; native_dim])
            })
            .collect())
    }

    pub(crate) fn write_vectors(&mut self, index: u32, vectors: &[Vec<f32>]) {
        let end = index as usize + vectors.len();
        if end > self.vectors.len() {
            self.vectors.resize(end, None);
        }
        for (i, v) in vectors.iter().enumerate() {
            self.vectors[index as usize + i] = Some(v.clone());
        }
    }

    pub(crate) fn read_matrix(&self, index: u32) -> Result<BfpMatrix, SimError> {
        self.matrices
            .get(index as usize)
            .and_then(|m| m.clone())
            .ok_or(SimError::DramMatrixUninitialized { index })
    }

    pub(crate) fn write_matrix(&mut self, index: u32, tile: BfpMatrix) {
        let end = index as usize + 1;
        if end > self.matrices.len() {
            self.matrices.resize(end, None);
        }
        self.matrices[index as usize] = Some(tile);
    }
}

/// The network input/output queues connecting the NPU to the datacenter
/// network (Figure 3). Vectors arrive with a timestamp so the cycle model
/// can represent request arrival.
#[derive(Clone, Debug, Default)]
pub(crate) struct NetQueues {
    input: VecDeque<(Vec<f32>, u64)>,
    output: VecDeque<Vec<f32>>,
    input_matrices: VecDeque<BfpMatrix>,
}

impl NetQueues {
    /// Enqueues one native input vector arriving at `at_cycle`.
    pub(crate) fn push_input(&mut self, vector: Vec<f32>, at_cycle: u64) {
        self.input.push_back((vector, at_cycle));
    }

    pub(crate) fn push_input_matrix(&mut self, tile: BfpMatrix) {
        self.input_matrices.push_back(tile);
    }

    /// Pops `width` native vectors; returns them and the latest arrival
    /// cycle among them (the time the read could begin).
    pub(crate) fn pop_input(&mut self, width: u32) -> Result<(Vec<Vec<f32>>, u64), SimError> {
        if (self.input.len() as u64) < u64::from(width) {
            return Err(SimError::NetQueueEmpty {
                requested: width,
                available: self.input.len() as u32,
            });
        }
        let mut vectors = Vec::with_capacity(width as usize);
        let mut ready = 0;
        for _ in 0..width {
            let (v, t) = self.input.pop_front().expect("length checked");
            ready = ready.max(t);
            vectors.push(v);
        }
        Ok((vectors, ready))
    }

    pub(crate) fn pop_input_matrix(&mut self) -> Result<BfpMatrix, SimError> {
        self.input_matrices
            .pop_front()
            .ok_or(SimError::NetQueueEmpty {
                requested: 1,
                available: 0,
            })
    }

    pub(crate) fn push_output(&mut self, vectors: &[Vec<f32>]) {
        for v in vectors {
            self.output.push_back(v.clone());
        }
    }

    pub(crate) fn pop_output(&mut self) -> Option<Vec<f32>> {
        self.output.pop_front()
    }

    pub(crate) fn output_len(&self) -> usize {
        self.output.len()
    }

    pub(crate) fn input_len(&self) -> usize {
        self.input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_bfp::BfpFormat;

    fn tile(v: f32) -> BfpMatrix {
        BfpMatrix::quantize(2, 2, &[v; 4], BfpFormat::BFP_1S_5E_5M).expect("shape")
    }

    #[test]
    fn vector_file_reads_zeros_before_first_write() {
        let f = VectorFile::new("test", 4, 3);
        let v = f.read(0, 2).unwrap();
        assert_eq!(v, vec![vec![0.0; 3], vec![0.0; 3]]);
    }

    #[test]
    fn vector_file_round_trips_multi_entry_writes() {
        let mut f = VectorFile::new("test", 8, 2);
        f.write(3, &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = f.read(3, 2).unwrap();
        assert_eq!(v[0], vec![1.0, 2.0]);
        assert_eq!(v[1], vec![3.0, 4.0]);
        // Neighbours untouched.
        assert_eq!(f.read(2, 1).unwrap()[0], vec![0.0, 0.0]);
        assert_eq!(f.read(5, 1).unwrap()[0], vec![0.0, 0.0]);
    }

    #[test]
    fn vector_file_bounds_include_width() {
        let mut f = VectorFile::new("test", 4, 2);
        assert!(f.read(3, 1).is_ok());
        assert!(f.read(3, 2).is_err());
        assert!(f.write(4, &[vec![0.0, 0.0]]).is_err());
        // Error carries the file name and capacity.
        let err = f.read(2, 3).unwrap_err();
        match err {
            SimError::VrfIndexOutOfRange { file, capacity, .. } => {
                assert_eq!(file, "test");
                assert_eq!(capacity, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn matrix_file_distinguishes_oob_and_uninitialized() {
        let mut m = MatrixFile::new(2);
        assert!(matches!(
            m.tile(5),
            Err(SimError::MrfIndexOutOfRange {
                index: 5,
                capacity: 2
            })
        ));
        assert!(matches!(
            m.tile(1),
            Err(SimError::MrfEntryUninitialized { index: 1 })
        ));
        m.store(1, tile(1.0)).unwrap();
        assert!(m.tile(1).is_ok());
        assert!(matches!(
            m.store(2, tile(0.0)),
            Err(SimError::MrfIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn dram_grows_on_write_and_reads_zeros_for_vectors() {
        let mut d = Dram::default();
        // Unwritten vector entries read as zeros at the requested width.
        assert_eq!(d.read_vectors(100, 1, 4).unwrap()[0], vec![0.0; 4]);
        d.write_vectors(7, &[vec![1.0, 2.0]]);
        assert_eq!(d.read_vectors(7, 1, 2).unwrap()[0], vec![1.0, 2.0]);
        // Matrices are strict: uninitialized reads are errors.
        assert!(matches!(
            d.read_matrix(0),
            Err(SimError::DramMatrixUninitialized { index: 0 })
        ));
        d.write_matrix(3, tile(2.0));
        assert!(d.read_matrix(3).is_ok());
    }

    #[test]
    fn net_queue_fifo_and_arrival_times() {
        let mut q = NetQueues::default();
        q.push_input(vec![1.0], 5);
        q.push_input(vec![2.0], 9);
        q.push_input(vec![3.0], 2);
        assert_eq!(q.input_len(), 3);
        // Popping two returns the later of their arrival times.
        let (vs, ready) = q.pop_input(2).unwrap();
        assert_eq!(vs, vec![vec![1.0], vec![2.0]]);
        assert_eq!(ready, 9);
        // Underflow reports counts.
        assert!(matches!(
            q.pop_input(2),
            Err(SimError::NetQueueEmpty {
                requested: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn net_queue_output_side() {
        let mut q = NetQueues::default();
        q.push_output(&[vec![1.0], vec![2.0]]);
        assert_eq!(q.output_len(), 2);
        assert_eq!(q.pop_output().unwrap(), vec![1.0]);
        assert_eq!(q.pop_output().unwrap(), vec![2.0]);
        assert!(q.pop_output().is_none());
    }

    #[test]
    fn net_queue_matrices() {
        let mut q = NetQueues::default();
        assert!(q.pop_input_matrix().is_err());
        q.push_input_matrix(tile(1.5));
        assert!(q.pop_input_matrix().is_ok());
        assert!(q.pop_input_matrix().is_err());
    }
}
