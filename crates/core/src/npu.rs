//! The assembled NPU: functional execution plus the calibrated cycle model.
//!
//! # Timing model
//!
//! The microarchitecture (Figure 3) is a single linear vector pipeline —
//! matrix-vector multiplier at the head, multifunction units in series —
//! fed by the vector arbitration network. The cycle model follows that
//! structure:
//!
//! * The control processor streams compound instructions at a fixed
//!   dispatch interval (§V-C: one per four cycles); a chain cannot begin
//!   before its instructions have been streamed.
//! * A chain containing an `mv_mul` occupies the matrix-vector multiplier
//!   for its streaming time (`ceil(rows·cols / engines) · N / lanes`
//!   cycles); its MFU tail drains in later pipeline stages and overlaps the
//!   next chain's MVM work. Chains without an `mv_mul` bypass the MVM and
//!   occupy the MFU stream for their vector streaming time. This keeps the
//!   pipeline a "continuous, uninterrupted stream of vector elements" (§V).
//! * A chain's results appear after its occupancy plus the pipeline *depth*
//!   it traverses (register file access, MVM accumulation tree, one depth
//!   per MFU operation, network queues). Dependent chains wait for the
//!   producer's completion — the exposed latency that limits small models
//!   (§VII-B1: "the deep pipelines ... delay dependent data from being
//!   written back quickly"). An operand consumed *mid-chain* (e.g. the
//!   `vv_mul` operand after an `mv_mul`) need only be ready when the stream
//!   reaches that stage, so its readiness requirement is credited by the
//!   pipeline depth already traversed — the dataflow forwarding that lets
//!   an RNN's recurrent chains overlap.
//! * Matrix moves (`m_rd`→`m_wr`) ride the memory path concurrently with
//!   the vector pipeline.
//!
//! Chains with an `mv_mul` read `cols` native vectors and emit `rows`;
//! chains without one operate at `rows` width throughout. Binary MFU
//! operations read their operand from the register file of the MFU they
//! execute on: the k-th add/sub operation of a chain reads `AddSubVrf(k)`,
//! the k-th multiply reads `MultiplyVrf(k)`.

use std::fmt;

use bw_bfp::BfpMatrix;

use crate::config::NpuConfig;
use crate::isa::{Chain, Instruction, Item, MemId, Program, ScalarReg};
use crate::mem::{Dram, MatrixFile, NetQueues, VectorFile};
use crate::mfu;
use crate::mvm;
use crate::stats::RunStats;
use crate::trace::{SinkHandle, SpanKind, SpanRecord, TraceId};

/// Whether a run computes real values or only models time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Execute arithmetic functionally (BFP matrix math, float16 MFU ops)
    /// and model cycles. The default.
    #[default]
    Full,
    /// Model cycles only; data paths move placeholder zeros. Used for large
    /// performance sweeps where computing tens of gigaMACs in software
    /// would dominate run time without changing any timing result.
    TimingOnly,
}

/// Which functional kernel implementation a run uses. Cycle counts and
/// computed values are identical in both modes; only host-side wall-clock
/// cost differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// The optimized kernels: slab-backed register files read as borrowed
    /// slices, reusable MVM quantization scratch, flat-accumulator BFP dot
    /// products. The default.
    #[default]
    Fast,
    /// The retained reference kernels: clone-on-read register files, fresh
    /// quantization and accumulator allocations per chain, naive
    /// element-by-element BFP dot products. Used as the oracle in the
    /// differential test suite and as the measured baseline of the `perf`
    /// benchmark.
    Reference,
}

/// Reusable per-chain buffers, retained across chains and runs so the
/// steady-state hot path performs no allocation.
#[derive(Clone, Debug, Default)]
struct ChainScratch {
    /// The chain's current value: `width` native vectors, flat.
    cur: Vec<f32>,
    /// Double buffer for `mv_mul` output (swapped with `cur`).
    aux: Vec<f32>,
    /// Zero placeholder written by timing-only runs.
    zeros: Vec<f32>,
    /// Pending `v_wr` targets of the chain in flight.
    writes: Vec<(MemId, u32, u32)>,
    /// MVM input-quantization scratch.
    mvm: mvm::MvmScratch,
}

/// The resource class a traced chain executed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub enum ChainKind {
    /// A chain containing an `mv_mul` (occupies the MVM).
    Mvm,
    /// A compute chain without an `mv_mul` (occupies the MFU stream).
    Mfu,
    /// A pure data move (rides the vector arbitration network).
    Move,
    /// A matrix move (`m_rd` → `m_wr`, on the memory path).
    MatrixMove,
}

/// One chain's timing record, collected when tracing is enabled with
/// [`Npu::set_trace`]. All times are cycles.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainTrace {
    /// Which resource the chain used.
    pub kind: ChainKind,
    /// When the control processor finished streaming the chain.
    pub dispatched_at: u64,
    /// The earliest start its data dependencies allowed.
    pub dep_ready_at: u64,
    /// When it actually started (max of dispatch, dependencies, resource).
    pub start: u64,
    /// Cycles it occupied its resource.
    pub occupancy: u64,
    /// When its results became architecturally visible.
    pub completion: u64,
}

/// Error produced while loading state or executing a program.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A VRF access fell outside the file's capacity.
    VrfIndexOutOfRange {
        /// Name of the register file.
        file: &'static str,
        /// First entry accessed.
        index: u32,
        /// Number of entries accessed.
        width: u32,
        /// File capacity in entries.
        capacity: u32,
    },
    /// An MRF access fell outside its capacity.
    MrfIndexOutOfRange {
        /// Entry accessed.
        index: u32,
        /// MRF capacity in entries.
        capacity: u32,
    },
    /// An `mv_mul` referenced an MRF entry never written.
    MrfEntryUninitialized {
        /// The uninitialized entry.
        index: u32,
    },
    /// An `m_rd` referenced a DRAM matrix never written.
    DramMatrixUninitialized {
        /// The uninitialized entry.
        index: u32,
    },
    /// The network input queue had fewer vectors than a read required.
    NetQueueEmpty {
        /// Vectors requested.
        requested: u32,
        /// Vectors available.
        available: u32,
    },
    /// A vector or buffer had the wrong length.
    VectorLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A matrix exceeds the `rows × cols` native tile grid it was loaded
    /// into.
    MatrixDoesNotFitGrid {
        /// Source matrix rows.
        mat_rows: usize,
        /// Source matrix columns.
        mat_cols: usize,
        /// Grid rows (native tiles).
        grid_rows: u32,
        /// Grid columns (native tiles).
        grid_cols: u32,
        /// The configuration's native dimension.
        native_dim: u32,
    },
    /// A chain required more function units of one kind than the
    /// configuration provides.
    MfuCapacityExceeded {
        /// Unit kind (`"add/sub"`, `"multiply"`, `"activation"`).
        kind: &'static str,
        /// Units the chain requires.
        used: usize,
        /// Units available (one per MFU).
        available: u32,
    },
    /// An `AddSubVrf(i)`/`MultiplyVrf(i)` index exceeded the MFU count.
    BadVrfFileIndex {
        /// The offending memory identifier.
        mem: MemId,
        /// Number of MFUs in the configuration.
        mfus: u32,
    },
    /// A tiling register was set to zero.
    BadRegValue {
        /// The register written.
        reg: ScalarReg,
    },
    /// A numeric-layer failure (shape mismatch inside the BFP kernels).
    Numeric(
        /// Description of the underlying numeric error.
        String,
    ),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::VrfIndexOutOfRange {
                file,
                index,
                width,
                capacity,
            } => write!(
                f,
                "{file} access [{index}, {index}+{width}) exceeds capacity {capacity}"
            ),
            SimError::MrfIndexOutOfRange { index, capacity } => {
                write!(f, "MRF entry {index} exceeds capacity {capacity}")
            }
            SimError::MrfEntryUninitialized { index } => {
                write!(f, "MRF entry {index} read before initialization")
            }
            SimError::DramMatrixUninitialized { index } => {
                write!(f, "DRAM matrix {index} read before initialization")
            }
            SimError::NetQueueEmpty {
                requested,
                available,
            } => write!(
                f,
                "network input queue has {available} vectors, read needs {requested}"
            ),
            SimError::VectorLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "vector length {actual} does not match expected {expected}"
                )
            }
            SimError::MatrixDoesNotFitGrid {
                mat_rows,
                mat_cols,
                grid_rows,
                grid_cols,
                native_dim,
            } => write!(
                f,
                "matrix {mat_rows}x{mat_cols} exceeds {grid_rows}x{grid_cols} grid of \
                 {native_dim}x{native_dim} native tiles"
            ),
            SimError::MfuCapacityExceeded {
                kind,
                used,
                available,
            } => write!(
                f,
                "chain uses {used} {kind} operations but only {available} MFUs exist"
            ),
            SimError::BadVrfFileIndex { mem, mfus } => {
                write!(f, "{mem} does not exist in a {mfus}-MFU configuration")
            }
            SimError::BadRegValue { reg } => {
                write!(f, "control register {reg} must be non-zero")
            }
            SimError::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The Brainwave NPU simulator. See the [crate-level docs](crate) for an
/// end-to-end example.
///
/// RAW/WAR dependency scoreboards live inside the storage components
/// themselves (the `mem` module) as dense per-entry cycle arrays, indexed
/// exactly like the hardware's scoreboard.
#[derive(Clone, Debug)]
pub struct Npu {
    config: NpuConfig,
    mode: ExecMode,
    kernel: KernelMode,
    mrf: MatrixFile,
    initial_vrf: VectorFile,
    addsub_vrfs: Vec<VectorFile>,
    multiply_vrfs: Vec<VectorFile>,
    dram: Dram,
    net: NetQueues,
    rows: u32,
    cols: u32,
    scratch: ChainScratch,
    // --- timing state ---
    nios_cursor: u64,
    /// Per-instruction dispatch cost for the current segment iteration:
    /// the full Nios dispatch interval on an iteration's first pass, one
    /// cycle of scheduler replay afterwards (§V-C: the Nios streams "T
    /// iterations of N static instructions" into the buffered top-level
    /// scheduler, which sustains the pipeline beyond the Nios's own rate).
    dispatch_cost: u64,
    mvm_free_at: u64,
    mfu_free_at: u64,
    mem_free_at: u64,
    stats: RunStats,
    trace: Option<Vec<ChainTrace>>,
    /// Structured span stream (see [`crate::trace`]); `None` — the
    /// default — costs one branch per chain and allocates nothing.
    sink: Option<SinkHandle>,
    /// Propagated into every emitted [`SpanRecord`].
    trace_id: TraceId,
    /// Device ordinal propagated into every emitted [`SpanRecord`].
    trace_device: u32,
}

impl Npu {
    /// Creates an NPU in [`ExecMode::Full`].
    pub fn new(config: NpuConfig) -> Self {
        Npu::with_mode(config, ExecMode::Full)
    }

    /// Creates an NPU with an explicit execution mode.
    pub fn with_mode(config: NpuConfig, mode: ExecMode) -> Self {
        let nd = config.native_dim() as usize;
        let vrf_cap = config.vrf_entries() as usize;
        let mfus = config.mfus() as usize;
        Npu {
            mrf: MatrixFile::new(config.mrf_entries() as usize),
            initial_vrf: VectorFile::new("InitialVrf", vrf_cap, nd),
            addsub_vrfs: (0..mfus)
                .map(|_| VectorFile::new("AddSubVrf", vrf_cap, nd))
                .collect(),
            multiply_vrfs: (0..mfus)
                .map(|_| VectorFile::new("MultiplyVrf", vrf_cap, nd))
                .collect(),
            dram: Dram::default(),
            net: NetQueues::default(),
            rows: 1,
            cols: 1,
            scratch: ChainScratch::default(),
            nios_cursor: 0,
            dispatch_cost: 0,
            mvm_free_at: 0,
            mfu_free_at: 0,
            mem_free_at: 0,
            stats: RunStats::default(),
            trace: None,
            sink: None,
            trace_id: 0,
            trace_device: 0,
            config,
            mode,
            kernel: KernelMode::Fast,
        }
    }

    /// The configuration this NPU was instantiated with.
    pub fn config(&self) -> &NpuConfig {
        &self.config
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The functional kernel implementation in use.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Selects the functional kernel implementation. Cycle counts and
    /// computed values are unaffected; [`KernelMode::Reference`] trades
    /// speed for the original allocate-per-step execution shape.
    pub fn set_kernel_mode(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
    }

    /// Enables or disables per-chain trace collection. Enabling clears any
    /// previously collected trace.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = if enabled { Some(Vec::new()) } else { None };
    }

    /// Takes the collected trace (empty if tracing was never enabled).
    /// Tracing stays enabled.
    pub fn take_trace(&mut self) -> Vec<ChainTrace> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Installs (or removes) a structured span sink. While a sink is
    /// installed every run emits [`SpanRecord`]s — chain, MVM/MFU
    /// streaming, stall, and run-envelope spans — tagged with the context
    /// set by [`Npu::set_trace_context`]. `None` (the default) restores
    /// the zero-cost path. Independent of [`Npu::set_trace`].
    pub fn set_trace_sink(&mut self, sink: Option<SinkHandle>) {
        self.sink = sink;
    }

    /// Sets the trace id and device ordinal stamped on every span emitted
    /// from now on. The id is owned by whichever layer defines request
    /// identity (e.g. `bw-serve` uses its request id).
    pub fn set_trace_context(&mut self, trace_id: TraceId, device: u32) {
        self.trace_id = trace_id;
        self.trace_device = device;
    }

    /// Emits one span if a sink is installed.
    #[inline]
    fn emit_span(&self, kind: SpanKind, chain: u64, start_cycle: u64, end_cycle: u64) {
        if let Some(sink) = &self.sink {
            sink.emit(&SpanRecord {
                trace_id: self.trace_id,
                device: self.trace_device,
                kind,
                chain,
                start_cycle,
                end_cycle,
            });
        }
    }

    // ------------------------------------------------------------------
    // Host-side loading (the role of the toolflow / runtime, §II-B)
    // ------------------------------------------------------------------

    /// Enqueues one native input vector on the network queue, arriving at
    /// cycle 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VectorLengthMismatch`] unless the vector is
    /// exactly `native_dim` long.
    pub fn push_input(&mut self, vector: Vec<f32>) -> Result<(), SimError> {
        self.push_input_at(vector, 0)
    }

    /// Enqueues one native input vector arriving at the given cycle — used
    /// by the serving simulator to model request arrival.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VectorLengthMismatch`] unless the vector is
    /// exactly `native_dim` long.
    pub fn push_input_at(&mut self, vector: Vec<f32>, at_cycle: u64) -> Result<(), SimError> {
        let nd = self.config.native_dim() as usize;
        if vector.len() != nd {
            return Err(SimError::VectorLengthMismatch {
                expected: nd,
                actual: vector.len(),
            });
        }
        self.net.push_input(vector, at_cycle);
        Ok(())
    }

    /// Splits an arbitrary-length vector into zero-padded native vectors and
    /// enqueues them all; returns how many native vectors were pushed.
    pub fn push_input_padded(&mut self, data: &[f32]) -> usize {
        let nd = self.config.native_dim() as usize;
        let count = data.len().div_ceil(nd).max(1);
        for i in 0..count {
            let mut v = vec![0.0f32; nd];
            let start = i * nd;
            if start < data.len() {
                let n = nd.min(data.len() - start);
                v[..n].copy_from_slice(&data[start..start + n]);
            }
            self.net.push_input(v, 0);
        }
        count
    }

    /// Enqueues `count` zero native vectors (cheap placeholder inputs for
    /// [`ExecMode::TimingOnly`] sweeps).
    pub fn push_input_zeros(&mut self, count: usize) {
        let nd = self.config.native_dim() as usize;
        for _ in 0..count {
            self.net.push_input(vec![0.0; nd], 0);
        }
    }

    /// Enqueues a native matrix tile on the network queue for a program to
    /// move into the MRF with `m_rd(NetQ)` → `m_wr(MatrixRf)`.
    pub fn push_input_matrix(&mut self, tile: BfpMatrix) {
        self.net.push_input_matrix(tile);
    }

    /// Quantizes and pins an `mat_rows × mat_cols` row-major `f32` matrix
    /// into the MRF as a `grid_rows × grid_cols` native tile grid starting
    /// at `base` — the host runtime's model-pinning step. Returns the number
    /// of MRF entries consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the matrix exceeds the grid, the grid
    /// exceeds MRF capacity, or the data length mismatches the shape.
    pub fn load_tiled_matrix(
        &mut self,
        base: u32,
        grid_rows: u32,
        grid_cols: u32,
        mat_rows: usize,
        mat_cols: usize,
        data: &[f32],
    ) -> Result<u32, SimError> {
        let tiles = mvm::tile_matrix(&self.config, mat_rows, mat_cols, data, grid_rows, grid_cols)?;
        for (i, tile) in tiles.into_iter().enumerate() {
            self.mrf.store(base + i as u32, tile)?;
        }
        Ok(grid_rows * grid_cols)
    }

    /// Reserves the MRF entries of a `grid_rows × grid_cols` grid with
    /// zero-valued tiles without computing a quantization — the
    /// [`ExecMode::TimingOnly`] counterpart of [`Npu::load_tiled_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MrfIndexOutOfRange`] if the grid exceeds MRF
    /// capacity.
    pub fn reserve_matrix_grid(
        &mut self,
        base: u32,
        grid_rows: u32,
        grid_cols: u32,
    ) -> Result<u32, SimError> {
        if !self.mrf.has_zero_template() || self.kernel == KernelMode::Reference {
            let nd = self.config.native_dim() as usize;
            let zero =
                BfpMatrix::quantize(nd, nd, &vec![0.0; nd * nd], self.config.matrix_format())
                    .map_err(|e| SimError::Numeric(e.to_string()))?;
            if self.kernel == KernelMode::Reference {
                // The reference execution shape: one full tile clone per
                // reserved entry, as the original implementation did.
                for i in 0..grid_rows * grid_cols {
                    self.mrf.store(base + i, zero.clone())?;
                }
                return Ok(grid_rows * grid_cols);
            }
            self.mrf.set_zero_template(zero);
        }
        for i in 0..grid_rows * grid_cols {
            self.mrf.reserve(base + i)?;
        }
        Ok(grid_rows * grid_cols)
    }

    /// Writes an arbitrary-length vector into consecutive entries of a
    /// vector register file, zero-padded to native vectors (used to stage
    /// biases and initial state). Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on capacity overflow or a non-VRF target.
    pub fn load_vector(&mut self, mem: MemId, index: u32, data: &[f32]) -> Result<u32, SimError> {
        let nd = self.config.native_dim() as usize;
        let count = data.len().div_ceil(nd).max(1);
        let mut flat = vec![0.0f32; count * nd];
        flat[..data.len()].copy_from_slice(data);
        self.vrf_mut(mem)?.write(index, &flat)?;
        Ok(count as u32)
    }

    /// Stages a DRAM matrix tile (for `m_rd(DRAM)` initialization paths).
    pub fn load_dram_matrix(&mut self, index: u32, tile: BfpMatrix) {
        self.dram.write_matrix(index, tile);
    }

    /// Pops one native vector from the network output queue.
    pub fn pop_output(&mut self) -> Option<Vec<f32>> {
        self.net.pop_output()
    }

    /// Pops and concatenates `count` native output vectors, truncated to
    /// `len` elements. Returns `None` if fewer than `count` are available.
    pub fn pop_output_concat(&mut self, count: usize, len: usize) -> Option<Vec<f32>> {
        if self.net.output_len() < count {
            return None;
        }
        let mut out = Vec::with_capacity(count * self.config.native_dim() as usize);
        for _ in 0..count {
            out.extend(self.net.pop_output().expect("length checked"));
        }
        out.truncate(len);
        Some(out)
    }

    /// Native vectors currently waiting in the output queue.
    pub fn output_len(&self) -> usize {
        self.net.output_len()
    }

    /// Native vectors currently waiting in the input queue.
    pub fn input_len(&self) -> usize {
        self.net.input_len()
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs a program to completion and returns its cycle statistics.
    ///
    /// Register file and queue contents persist across runs (models stay
    /// pinned); the cycle clock restarts at zero for each run.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by validation or execution.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, SimError> {
        self.run_batch(program, 1)
    }

    /// Runs a program `batch` times inside one run envelope — the
    /// multi-column entry point the serving batcher dispatches through.
    ///
    /// Column 0 streams from the Nios exactly as [`Npu::run`] does;
    /// every later column replays the already-buffered instructions at
    /// one cycle each, which is where coalescing a micro-batch wins its
    /// throughput: the matrix stays resident in the MRF and the
    /// dispatch cost is paid once. Functional execution is independent
    /// of timing state, so the per-column outputs are bit-identical to
    /// `batch` sequential [`Npu::run`] calls over the same inputs.
    ///
    /// Statistics accumulate across columns into one [`RunStats`]; with
    /// `batch > 1` a [`SpanKind::BatchColumn`] span is emitted per
    /// column (chain ordinal = column + 1) inside the usual run
    /// envelope. `batch == 0` is an empty run.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by validation or execution.
    pub fn run_batch(&mut self, program: &Program, batch: usize) -> Result<RunStats, SimError> {
        self.nios_cursor = 0;
        self.mvm_free_at = 0;
        self.mfu_free_at = 0;
        self.mem_free_at = 0;
        self.initial_vrf.clear_ready();
        for f in &mut self.addsub_vrfs {
            f.clear_ready();
        }
        for f in &mut self.multiply_vrfs {
            f.clear_ready();
        }
        self.mrf.clear_ready();
        self.dram.clear_ready();
        self.stats = RunStats {
            peak_flops_per_cycle: self.config.peak_flops_per_cycle(),
            clock_hz: self.config.clock_hz(),
            ..RunStats::default()
        };

        let interval = u64::from(self.config.timing().dispatch_interval);
        for column in 0..batch {
            let column_start = self.high_water();
            for segment in &program.segments {
                for iteration in 0..segment.iterations {
                    // First pass streams from the Nios at the dispatch
                    // interval; replays — later iterations and every
                    // batch column after the first — come from the
                    // scheduler's instruction buffer at one cycle per
                    // instruction.
                    self.dispatch_cost = if column == 0 && iteration == 0 {
                        interval
                    } else {
                        1
                    };
                    for item in &segment.items {
                        match item {
                            Item::SetReg { reg, value } => self.exec_set_reg(*reg, *value)?,
                            Item::Chain(chain) => self.exec_chain(chain)?,
                        }
                    }
                }
            }
            if batch > 1 {
                let column_end = self.high_water();
                self.emit_span(
                    SpanKind::BatchColumn,
                    column as u64 + 1,
                    column_start,
                    column_end,
                );
            }
        }
        // The run ends when the last effect lands. Every published ready
        // time is bounded by a chain completion already folded into
        // `stats.cycles`, so only the resource frontiers can extend it.
        self.stats.cycles = self.high_water();
        self.emit_span(SpanKind::Run, 0, 0, self.stats.cycles);
        Ok(self.stats.clone())
    }

    /// The latest architecturally visible effect so far in this run:
    /// completed chains folded into `stats.cycles`, extended by any
    /// still-draining resource frontier.
    fn high_water(&self) -> u64 {
        self.stats
            .cycles
            .max(self.mvm_free_at)
            .max(self.mfu_free_at)
            .max(self.mem_free_at)
    }

    fn exec_set_reg(&mut self, reg: ScalarReg, value: u32) -> Result<(), SimError> {
        if value == 0 {
            return Err(SimError::BadRegValue { reg });
        }
        self.nios_cursor += self.dispatch_cost;
        self.stats.instructions += 1;
        match reg {
            ScalarReg::Rows => self.rows = value,
            ScalarReg::Cols => self.cols = value,
        }
        Ok(())
    }

    fn vrf(&self, mem: MemId) -> Result<&VectorFile, SimError> {
        let mfus = self.config.mfus();
        match mem {
            MemId::InitialVrf => Ok(&self.initial_vrf),
            MemId::AddSubVrf(i) => self
                .addsub_vrfs
                .get(i as usize)
                .ok_or(SimError::BadVrfFileIndex { mem, mfus }),
            MemId::MultiplyVrf(i) => self
                .multiply_vrfs
                .get(i as usize)
                .ok_or(SimError::BadVrfFileIndex { mem, mfus }),
            _ => unreachable!("vrf() called on non-VRF target"),
        }
    }

    fn vrf_mut(&mut self, mem: MemId) -> Result<&mut VectorFile, SimError> {
        let mfus = self.config.mfus();
        match mem {
            MemId::InitialVrf => Ok(&mut self.initial_vrf),
            MemId::AddSubVrf(i) => self
                .addsub_vrfs
                .get_mut(i as usize)
                .ok_or(SimError::BadVrfFileIndex { mem, mfus }),
            MemId::MultiplyVrf(i) => self
                .multiply_vrfs
                .get_mut(i as usize)
                .ok_or(SimError::BadVrfFileIndex { mem, mfus }),
            _ => unreachable!("vrf_mut() called on non-VRF target"),
        }
    }

    fn validate_chain(&self, chain: &Chain) -> Result<(), SimError> {
        let mfus = self.config.mfus();
        let checks = [
            ("add/sub", chain.addsub_ops()),
            ("multiply", chain.multiply_ops()),
            ("activation", chain.activation_ops()),
        ];
        for (kind, used) in checks {
            if used > mfus as usize {
                return Err(SimError::MfuCapacityExceeded {
                    kind,
                    used,
                    available: mfus,
                });
            }
        }
        Ok(())
    }

    fn exec_chain(&mut self, chain: &Chain) -> Result<(), SimError> {
        // Dispatch cost: every chain instruction plus its end_chain on the
        // first streaming of a segment; a single replay cycle afterwards
        // (the scheduler re-issues the already-buffered chain as a unit).
        let n_instr = chain.len() as u64 + 1;
        let interval = u64::from(self.config.timing().dispatch_interval);
        self.nios_cursor += if self.dispatch_cost == interval {
            n_instr * interval
        } else {
            self.dispatch_cost
        };
        self.stats.instructions += n_instr;
        self.stats.chains += 1;

        if chain.is_matrix_chain() {
            return self.exec_matrix_chain(chain);
        }
        self.validate_chain(chain)?;
        self.exec_vector_chain(chain)
    }

    fn exec_matrix_chain(&mut self, chain: &Chain) -> Result<(), SimError> {
        let count = self.rows * self.cols;
        let (src_mem, src_index) = match chain.instructions()[0] {
            Instruction::MRd { mem, index } => (mem, index),
            _ => unreachable!("matrix chain head validated"),
        };
        let (dst_mem, dst_index) = match chain.instructions()[1] {
            Instruction::MWr { mem, index } => (mem, index),
            _ => unreachable!("matrix chain tail validated"),
        };

        let mut dep_ready = 0u64;
        if dst_mem == MemId::MatrixRf {
            // Write-after-read: do not overwrite tiles an earlier mv_mul is
            // still streaming.
            dep_ready = dep_ready.max(self.mrf.read_until_at(dst_index, count));
        }
        let mut tiles = Vec::with_capacity(count as usize);
        for i in 0..count {
            let tile = match src_mem {
                MemId::NetQ => self.net.pop_input_matrix()?,
                MemId::Dram => {
                    dep_ready = dep_ready.max(self.dram.matrix_ready_at(src_index + i));
                    self.dram.read_matrix(src_index + i)?
                }
                _ => unreachable!("matrix source validated"),
            };
            tiles.push(tile);
        }

        let occupancy = u64::from(count) * u64::from(self.config.timing().dram_tile_cycles);
        let start = self.nios_cursor.max(dep_ready).max(self.mem_free_at);
        self.mem_free_at = start + occupancy;
        let completion = start + occupancy;
        self.stats.cycles = self.stats.cycles.max(completion);
        if let Some(trace) = &mut self.trace {
            trace.push(ChainTrace {
                kind: ChainKind::MatrixMove,
                dispatched_at: self.nios_cursor,
                dep_ready_at: dep_ready,
                start,
                occupancy,
                completion,
            });
        }
        if self.sink.is_some() {
            let ordinal = self.stats.chains;
            self.emit_span(
                SpanKind::Chain(ChainKind::MatrixMove),
                ordinal,
                start,
                completion,
            );
            if dep_ready > self.nios_cursor {
                self.emit_span(SpanKind::DepStall, ordinal, self.nios_cursor, dep_ready);
            }
        }

        for (i, tile) in tiles.into_iter().enumerate() {
            let i = i as u32;
            match dst_mem {
                MemId::MatrixRf => {
                    self.mrf.store(dst_index + i, tile)?;
                    self.mrf.mark_ready(dst_index + i, completion);
                }
                MemId::Dram => {
                    self.dram.write_matrix(dst_index + i, tile);
                    self.dram.mark_matrix_ready(dst_index + i, completion);
                }
                _ => unreachable!("matrix destination validated"),
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec_vector_chain(&mut self, chain: &Chain) -> Result<(), SimError> {
        let timing = *self.config.timing();
        let has_mvm = chain.has_mv_mul();
        let rows = self.rows;
        let cols = self.cols;
        let w_in = if has_mvm { cols } else { rows };
        let w_out = rows;
        let nd = self.config.native_dim() as usize;
        let functional = self.mode == ExecMode::Full;
        let reference = self.kernel == KernelMode::Reference;

        // Reusable chain buffers: taken out of `self` so the borrow checker
        // sees them as disjoint from the register files, and returned on
        // success (an error path simply reallocates on the next chain).
        let mut s = std::mem::take(&mut self.scratch);
        s.cur.clear();
        s.writes.clear();

        // `dep_ready` accumulates the earliest legal chain start implied by
        // each operand: an operand consumed at pipeline offset `depth` may
        // arrive `depth` cycles after the chain starts streaming.
        let mut dep_ready = 0u64;
        let mut depth = 0u64;
        let mut mvm_occ = 0u64;
        // Wide counters so chains with pathological op counts reach the
        // capacity fault instead of wrapping an 8-bit index in debug builds.
        let mut addsub_seen: usize = 0;
        let mut multiply_seen: usize = 0;
        let mut mvm_tiles: Option<(u32, u32)> = None; // (base, count)

        for instr in chain.instructions() {
            match *instr {
                Instruction::VRd { mem, index } => {
                    match mem {
                        MemId::NetQ => {
                            s.cur.clear();
                            let arrival = self
                                .net
                                .pop_input_into(w_in, functional.then_some(&mut s.cur))?;
                            dep_ready = dep_ready.max(arrival.saturating_sub(depth));
                            self.stats.net_vectors_in += u64::from(w_in);
                            depth += u64::from(timing.net_depth);
                        }
                        MemId::Dram => {
                            let t = self.dram.vector_ready_at(index, w_in);
                            dep_ready = dep_ready.max(t.saturating_sub(depth));
                            if functional {
                                s.cur.clear();
                                self.dram.read_vectors_into(index, w_in, nd, &mut s.cur);
                                if reference {
                                    // Reference shape: one clone per vector.
                                    let _c: Vec<Vec<f32>> =
                                        s.cur.chunks(nd).map(<[f32]>::to_vec).collect();
                                }
                            }
                        }
                        vrf => {
                            // Bounds are validated even in timing-only mode.
                            let file = self.vrf(vrf)?;
                            let flat = file.read(index, w_in)?;
                            let t = file.ready_at(index, w_in);
                            dep_ready = dep_ready.max(t.saturating_sub(depth));
                            if reference {
                                // Reference shape: clone-on-read regardless
                                // of execution mode, as the original
                                // register files did.
                                let cloned: Vec<Vec<f32>> =
                                    flat.chunks(nd).map(<[f32]>::to_vec).collect();
                                if functional {
                                    s.cur.clear();
                                    for v in &cloned {
                                        s.cur.extend_from_slice(v);
                                    }
                                }
                            } else if functional {
                                s.cur.clear();
                                s.cur.extend_from_slice(flat);
                            }
                        }
                    }
                    depth += u64::from(timing.vrf_access_depth);
                }
                Instruction::MvMul { mrf_index } => {
                    mvm_occ = mvm::occupancy(&self.config, rows, cols);
                    mvm_tiles = Some((mrf_index, rows * cols));
                    let t = self.mrf.ready_at(mrf_index, rows * cols);
                    dep_ready = dep_ready.max(t.saturating_sub(depth));
                    self.stats.mvm_macs += mvm::macs(&self.config, rows, cols);
                    if functional {
                        if reference {
                            let inputs: Vec<Vec<f32>> =
                                s.cur.chunks(nd).map(<[f32]>::to_vec).collect();
                            let out = mvm::compute_naive(
                                &self.config,
                                &self.mrf,
                                mrf_index,
                                rows,
                                cols,
                                &inputs,
                            )?;
                            s.cur.clear();
                            for v in out {
                                s.cur.extend_from_slice(&v);
                            }
                        } else {
                            mvm::compute_into(
                                &self.config,
                                &self.mrf,
                                mrf_index,
                                rows,
                                cols,
                                &s.cur,
                                &mut s.aux,
                                &mut s.mvm,
                            )?;
                            std::mem::swap(&mut s.cur, &mut s.aux);
                        }
                    }
                    depth += u64::from(timing.mvm_depth);
                }
                Instruction::VWr { mem, index } => {
                    depth += u64::from(timing.vrf_access_depth);
                    if mem == MemId::NetQ {
                        depth += u64::from(timing.net_depth);
                    }
                    s.writes.push((mem, index, w_out));
                }
                ref op if op.opcode().is_mfu_op() => {
                    self.stats.mfu_element_ops += u64::from(w_out) * nd as u64;
                    let opcode = op.opcode();
                    match *instr {
                        Instruction::VvAdd { index }
                        | Instruction::VvASubB { index }
                        | Instruction::VvBSubA { index }
                        | Instruction::VvMax { index }
                        | Instruction::VvMul { index } => {
                            let mem = if matches!(*instr, Instruction::VvMul { .. }) {
                                let m = MemId::MultiplyVrf(
                                    u8::try_from(multiply_seen).unwrap_or(u8::MAX),
                                );
                                multiply_seen += 1;
                                m
                            } else {
                                let m =
                                    MemId::AddSubVrf(u8::try_from(addsub_seen).unwrap_or(u8::MAX));
                                addsub_seen += 1;
                                m
                            };
                            let file = self.vrf(mem)?;
                            let operand = file.read(index, w_out)?;
                            let t = file.ready_at(index, w_out);
                            dep_ready = dep_ready.max(t.saturating_sub(depth));
                            if reference {
                                let _c: Vec<Vec<f32>> =
                                    operand.chunks(nd).map(<[f32]>::to_vec).collect();
                            }
                            if functional {
                                mfu::apply_binary(opcode, &mut s.cur, operand)?;
                            }
                        }
                        _ => {
                            if functional {
                                mfu::apply_activation(opcode, &mut s.cur);
                            }
                        }
                    }
                    depth += u64::from(timing.mfu_op_depth);
                }
                _ => unreachable!("chain contents validated at construction"),
            }
        }

        // Chains with an mv_mul are throughput-bound by the MVM (input
        // vectors stream into the tile engines as part of the tile
        // occupancy) unless their output side outruns the MFU stream;
        // compute chains without one stream through the MFU pipeline; pure
        // data moves (v_rd → v_wr with no arithmetic) ride the vector
        // arbitration network and leave both compute resources free.
        let mfu_stream = u64::from(self.config.mfu_stream_cycles());
        enum Res {
            Mvm,
            Mfu,
            Move,
        }
        let (res, resource_free, occupancy) = if mvm_occ > 0 {
            let out_occ = u64::from(w_out) * mfu_stream;
            (Res::Mvm, self.mvm_free_at, mvm_occ.max(out_occ))
        } else {
            let stream_occ = u64::from(w_in.max(w_out)) * mfu_stream;
            if chain.mfu_ops() > 0 {
                (Res::Mfu, self.mfu_free_at, stream_occ)
            } else {
                (Res::Move, self.mem_free_at, stream_occ)
            }
        };

        let start = self.nios_cursor.max(dep_ready).max(resource_free);
        let other = self.nios_cursor.max(resource_free);
        if dep_ready > other {
            self.stats.dep_stall_cycles += dep_ready - other;
        } else if resource_free > self.nios_cursor.max(dep_ready) {
            self.stats.resource_stall_cycles += resource_free - self.nios_cursor.max(dep_ready);
        }

        match res {
            Res::Mvm => {
                self.mvm_free_at = start + occupancy;
                self.stats.mvm_busy_cycles += mvm_occ;
            }
            Res::Mfu => self.mfu_free_at = start + occupancy,
            Res::Move => self.mem_free_at = start + occupancy,
        }
        self.stats.pipeline_busy_cycles += occupancy;
        let completion = start + occupancy + depth;
        self.stats.cycles = self.stats.cycles.max(completion);
        if let Some((base, count)) = mvm_tiles {
            self.mrf.mark_read_until(base, count, start + occupancy);
        }
        let kind = match res {
            Res::Mvm => ChainKind::Mvm,
            Res::Mfu => ChainKind::Mfu,
            Res::Move => ChainKind::Move,
        };
        if let Some(trace) = &mut self.trace {
            trace.push(ChainTrace {
                kind,
                dispatched_at: self.nios_cursor,
                dep_ready_at: dep_ready,
                start,
                occupancy,
                completion,
            });
        }
        if self.sink.is_some() {
            let ordinal = self.stats.chains;
            self.emit_span(SpanKind::Chain(kind), ordinal, start, completion);
            match kind {
                ChainKind::Mvm => {
                    self.emit_span(SpanKind::MvmStream, ordinal, start, start + mvm_occ);
                }
                ChainKind::Mfu => {
                    self.emit_span(SpanKind::MfuStream, ordinal, start, start + occupancy);
                }
                ChainKind::Move | ChainKind::MatrixMove => {}
            }
            if dep_ready > other {
                self.emit_span(SpanKind::DepStall, ordinal, other, dep_ready);
            } else {
                let ready = self.nios_cursor.max(dep_ready);
                if resource_free > ready {
                    self.emit_span(SpanKind::ResourceStall, ordinal, ready, resource_free);
                }
            }
        }

        // Apply writes and publish ready times.
        if functional && s.cur.len() != w_out as usize * nd {
            return Err(SimError::VectorLengthMismatch {
                expected: w_out as usize,
                actual: s.cur.len() / nd.max(1),
            });
        }
        if !functional {
            s.zeros.clear();
            s.zeros.resize(w_out as usize * nd, 0.0);
            if reference {
                // Reference shape: a fresh zero placeholder per chain.
                let _placeholder: Vec<Vec<f32>> = vec![vec![0.0; nd]; w_out as usize];
            }
        }
        let values: &[f32] = if functional { &s.cur } else { &s.zeros };
        for &(mem, index, width) in &s.writes {
            match mem {
                MemId::NetQ => {
                    self.net.push_output(values, nd);
                    self.stats.net_vectors_out += u64::from(width);
                }
                MemId::Dram => {
                    self.dram.write_vectors(index, values, nd);
                    self.dram.mark_vectors_ready(index, width, completion);
                }
                vrf => {
                    if reference {
                        // Reference shape: clone-per-entry into the file.
                        let _c: Vec<Vec<f32>> = values.chunks(nd).map(<[f32]>::to_vec).collect();
                    }
                    let file = self.vrf_mut(vrf)?;
                    file.write(index, values)?;
                    file.mark_ready(index, width, completion);
                }
            }
        }
        self.scratch = s;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;

    fn tiny_config() -> NpuConfig {
        NpuConfig::builder()
            .native_dim(4)
            .lanes(2)
            .tile_engines(2)
            .mfus(2)
            .mrf_entries(64)
            .vrf_entries(64)
            // Functional tests use the 5-bit-mantissa format; the default
            // 2-bit format is intentionally coarse (§VI).
            .matrix_format(bw_bfp::BfpFormat::BFP_1S_5E_5M)
            .build()
            .unwrap()
    }

    fn identity_grid(npu: &mut Npu, base: u32, grid: u32) {
        let nd = npu.config().native_dim() as usize;
        let n = grid as usize * nd;
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        npu.load_tiled_matrix(base, grid, grid, n, n, &data)
            .unwrap();
    }

    #[test]
    fn relu_pass_through_netq() {
        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_relu()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let stats = npu.run(&b.build()).unwrap();
        assert_eq!(npu.pop_output().unwrap(), vec![1.0, 0.0, 3.0, 0.0]);
        assert!(stats.cycles > 0);
        assert_eq!(stats.chains, 1);
        assert_eq!(stats.net_vectors_in, 1);
        assert_eq!(stats.net_vectors_out, 1);
    }

    #[test]
    fn identity_mv_mul_through_vrfs() {
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 1);
        npu.push_input(vec![0.5, 1.5, -2.0, 3.0]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let out = npu.pop_output().unwrap();
        for (got, want) in out.iter().zip([0.5, 1.5, -2.0, 3.0]) {
            assert!((got - want).abs() < 0.2, "{got} vs {want}");
        }
    }

    #[test]
    fn tiled_mv_mul_widths() {
        // rows=2, cols=2 with an identity over an 8-dim space.
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 2);
        let x: Vec<f32> = (0..8).map(|i| i as f32 / 2.0).collect();
        npu.push_input_padded(&x);
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let stats = npu.run(&b.build()).unwrap();
        let out = npu.pop_output_concat(2, 8).unwrap();
        for (got, want) in out.iter().zip(&x) {
            assert!((got - want).abs() < 0.3, "{got} vs {want}");
        }
        // 2x2 grid of 4x4 tiles = 64 MACs.
        assert_eq!(stats.mvm_macs, 64);
    }

    #[test]
    fn bias_add_uses_addsub_vrf() {
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 1);
        npu.load_vector(MemId::AddSubVrf(0), 3, &[10.0, 20.0, 30.0, 40.0])
            .unwrap();
        npu.push_input(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .vv_add(3)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let out = npu.pop_output().unwrap();
        for (got, want) in out.iter().zip([11.0, 22.0, 33.0, 44.0]) {
            assert!((got - want).abs() < 0.5, "{got} vs {want}");
        }
    }

    #[test]
    fn second_addsub_op_reads_mfu1_file() {
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 1);
        npu.load_vector(MemId::AddSubVrf(0), 0, &[1.0; 4]).unwrap();
        npu.load_vector(MemId::AddSubVrf(1), 0, &[100.0; 4])
            .unwrap();
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .vv_add(0) // reads AddSubVrf(0)
            .vv_add(0) // reads AddSubVrf(1)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        assert_eq!(npu.pop_output().unwrap(), vec![101.0; 4]);
    }

    #[test]
    fn mfu_capacity_enforced() {
        let mut npu = Npu::new(tiny_config()); // 2 MFUs
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .vv_add(0)
            .vv_add(1)
            .vv_add(2)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let err = npu.run(&b.build()).unwrap_err();
        assert_eq!(
            err,
            SimError::MfuCapacityExceeded {
                kind: "add/sub",
                used: 3,
                available: 2
            }
        );
    }

    #[test]
    fn net_queue_underflow_detected() {
        let mut npu = Npu::new(tiny_config());
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        assert_eq!(
            npu.run(&b.build()).unwrap_err(),
            SimError::NetQueueEmpty {
                requested: 1,
                available: 0
            }
        );
    }

    #[test]
    fn zero_reg_rejected() {
        let mut npu = Npu::new(tiny_config());
        let mut b = ProgramBuilder::new();
        b.set_rows(0);
        assert_eq!(
            npu.run(&b.build()).unwrap_err(),
            SimError::BadRegValue {
                reg: ScalarReg::Rows
            }
        );
    }

    #[test]
    fn dependent_chains_serialize_independent_chains_overlap() {
        let cfg = tiny_config();
        // Dependent: chain 2 reads what chain 1 writes.
        let mut npu = Npu::new(cfg.clone());
        npu.push_input(vec![1.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .v_relu()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let dependent = npu.run(&b.build()).unwrap();

        // Independent: chain 2 reads a different, preloaded slot.
        let mut npu2 = Npu::new(cfg);
        npu2.push_input(vec![1.0; 4]).unwrap();
        npu2.load_vector(MemId::InitialVrf, 8, &[1.0; 4]).unwrap();
        let mut b2 = ProgramBuilder::new();
        b2.set_rows(1).set_cols(1);
        b2.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b2.v_rd(MemId::InitialVrf, 8)
            .v_relu()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let independent = npu2.run(&b2.build()).unwrap();

        assert!(
            dependent.cycles > independent.cycles,
            "dependent {} vs independent {}",
            dependent.cycles,
            independent.cycles
        );
        assert!(dependent.dep_stall_cycles > 0);
        assert_eq!(independent.dep_stall_cycles, 0);
    }

    #[test]
    fn input_arrival_time_delays_start() {
        let cfg = tiny_config();
        let mut npu = Npu::new(cfg);
        npu.push_input_at(vec![1.0; 4], 10_000).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let stats = npu.run(&b.build()).unwrap();
        assert!(stats.cycles > 10_000);
    }

    #[test]
    fn timing_only_matches_full_cycle_count() {
        let build = || {
            let mut b = ProgramBuilder::new();
            b.set_rows(2).set_cols(2);
            b.v_rd(MemId::NetQ, 0)
                .mv_mul(0)
                .vv_add(0)
                .v_tanh()
                .v_wr(MemId::InitialVrf, 0)
                .v_wr(MemId::NetQ, 0)
                .end_chain()
                .unwrap();
            b.build()
        };
        let mut full = Npu::new(tiny_config());
        identity_grid(&mut full, 0, 2);
        full.push_input_padded(&[1.0; 8]);
        let fs = full.run(&build()).unwrap();

        let mut timing = Npu::with_mode(tiny_config(), ExecMode::TimingOnly);
        timing.reserve_matrix_grid(0, 2, 2).unwrap();
        timing.push_input_zeros(2);
        let ts = timing.run(&build()).unwrap();

        assert_eq!(fs.cycles, ts.cycles);
        assert_eq!(fs.mvm_macs, ts.mvm_macs);
    }

    #[test]
    fn matrix_chain_moves_tile_from_dram() {
        let mut npu = Npu::new(tiny_config());
        let nd = 4;
        let data: Vec<f32> = (0..16).map(|i| i as f32 / 8.0).collect();
        let tile = BfpMatrix::quantize(nd, nd, &data, npu.config().matrix_format()).unwrap();
        npu.load_dram_matrix(5, tile);
        npu.push_input(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.m_rd(MemId::Dram, 5)
            .m_wr(MemId::MatrixRf, 2)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(2)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let stats = npu.run(&b.build()).unwrap();
        let out = npu.pop_output().unwrap();
        // First column of the tile.
        for (r, got) in out.iter().enumerate() {
            let want = data[r * nd];
            assert!((got - want).abs() < 0.1, "{got} vs {want}");
        }
        // The mv_mul waited on the DRAM move.
        assert!(stats.dep_stall_cycles > 0 || stats.cycles >= 400);
    }

    #[test]
    fn matrix_chain_initializes_weights_from_the_network() {
        // §IV-C: "Matrices can be read only from the network (for
        // initialization) or from DRAM" — the program-driven model
        // deployment path.
        let mut npu = Npu::new(tiny_config());
        let nd = 4;
        let data: Vec<f32> = (0..16).map(|i| ((i % 5) as f32 - 2.0) / 4.0).collect();
        let tile = BfpMatrix::quantize(nd, nd, &data, npu.config().matrix_format()).unwrap();
        npu.push_input_matrix(tile);
        npu.push_input(vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 5)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(5)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let out = npu.pop_output().unwrap();
        // Second column of the tile.
        for (r, got) in out.iter().enumerate() {
            let want = data[r * nd + 1];
            assert!((got - want).abs() < 0.1, "{got} vs {want}");
        }
        // Underflow of the matrix queue is detected.
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.m_rd(MemId::NetQ, 0)
            .m_wr(MemId::MatrixRf, 6)
            .end_chain()
            .unwrap();
        assert!(matches!(
            npu.run(&b.build()).unwrap_err(),
            SimError::NetQueueEmpty { .. }
        ));
    }

    #[test]
    fn matrix_chain_spills_mrf_to_dram_and_back() {
        // m_wr(DRAM) is the spill direction of Table II's matrix moves.
        let mut npu = Npu::new(tiny_config());
        let nd = 4;
        let data: Vec<f32> = (0..16).map(|i| i as f32 / 8.0).collect();
        let tile = BfpMatrix::quantize(nd, nd, &data, npu.config().matrix_format()).unwrap();
        npu.load_dram_matrix(0, tile);
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        // DRAM -> DRAM round trip through the matrix path.
        b.m_rd(MemId::Dram, 0)
            .m_wr(MemId::Dram, 9)
            .end_chain()
            .unwrap();
        b.m_rd(MemId::Dram, 9)
            .m_wr(MemId::MatrixRf, 0)
            .end_chain()
            .unwrap();
        npu.push_input(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let out = npu.pop_output().unwrap();
        for (r, got) in out.iter().enumerate() {
            let want = data[r * nd];
            assert!((got - want).abs() < 0.1, "{got} vs {want}");
        }
    }

    #[test]
    fn uninitialized_mrf_entry_errors() {
        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(7)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        assert_eq!(
            npu.run(&b.build()).unwrap_err(),
            SimError::MrfEntryUninitialized { index: 7 }
        );
    }

    #[test]
    fn vrf_bounds_checked() {
        let mut npu = Npu::new(tiny_config()); // 64 vrf entries
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 63)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap(); // index 63 is the last valid entry

        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 64)
            .end_chain()
            .unwrap();
        assert!(matches!(
            npu.run(&b.build()).unwrap_err(),
            SimError::VrfIndexOutOfRange { .. }
        ));
    }

    #[test]
    fn multicast_write_lands_everywhere() {
        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![2.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 1)
            .v_wr(MemId::MultiplyVrf(0), 2)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 1)
            .vv_mul(2)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        assert_eq!(npu.pop_output().unwrap(), vec![2.0; 4]);
        assert_eq!(npu.pop_output().unwrap(), vec![4.0; 4]);
    }

    #[test]
    fn stats_expose_busy_and_peak() {
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 1);
        npu.push_input(vec![1.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .mv_mul(0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let stats = npu.run(&b.build()).unwrap();
        assert!(stats.mvm_busy_cycles > 0);
        assert!(stats.pipeline_busy_cycles >= stats.mvm_busy_cycles);
        assert_eq!(
            stats.peak_flops_per_cycle,
            npu.config().peak_flops_per_cycle()
        );
        assert!(stats.latency_seconds() > 0.0);
    }

    #[test]
    fn trace_records_every_chain_with_consistent_times() {
        let mut npu = Npu::new(tiny_config());
        identity_grid(&mut npu, 0, 1);
        npu.set_trace(true);
        npu.push_input(vec![1.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::InitialVrf, 1)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 1)
            .v_relu()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let trace = npu.take_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].kind, ChainKind::Move);
        assert_eq!(trace[1].kind, ChainKind::Mvm);
        assert_eq!(trace[2].kind, ChainKind::Mfu);
        for t in &trace {
            assert!(t.start >= t.dep_ready_at.min(t.dispatched_at));
            assert!(t.completion >= t.start + t.occupancy);
        }
        // The dependent chains start only after their producers complete.
        assert!(trace[1].start >= trace[0].completion);
        assert!(trace[2].start >= trace[1].completion);
        // take_trace drains but keeps tracing enabled.
        assert!(npu.take_trace().is_empty());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![0.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        assert!(npu.take_trace().is_empty());
    }

    #[test]
    fn run_resets_clock_but_keeps_state() {
        let mut npu = Npu::new(tiny_config());
        npu.push_input(vec![5.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 9)
            .end_chain()
            .unwrap();
        let s1 = npu.run(&b.build()).unwrap();

        // Second run reads the value the first run pinned.
        let mut b2 = ProgramBuilder::new();
        b2.set_rows(1).set_cols(1);
        b2.v_rd(MemId::InitialVrf, 9)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        let s2 = npu.run(&b2.build()).unwrap();
        assert_eq!(npu.pop_output().unwrap(), vec![5.0; 4]);
        // Clock restarted: second run is not longer than first plus slack.
        assert!(s2.cycles <= s1.cycles + 100);
    }
}
