//! Aggregation of execution traces into a bottleneck report.
//!
//! [`ChainTrace`](crate::ChainTrace) records are per-chain; this module
//! rolls them up into the questions a performance engineer asks of the
//! pipeline: where did the cycles go, which resource was the bottleneck,
//! and how much latency did data dependencies expose.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::npu::{ChainKind, ChainTrace};

/// Rolled-up statistics for one chain kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct KindSummary {
    /// Chains of this kind.
    pub chains: u64,
    /// Total cycles the kind occupied its resource.
    pub busy_cycles: u64,
    /// Total cycles chains of this kind started later than their
    /// dependencies alone required (resource/dispatch waits).
    pub resource_wait_cycles: u64,
    /// Total cycles chains of this kind waited on data beyond resource and
    /// dispatch availability.
    pub dep_wait_cycles: u64,
}

/// A whole-trace summary.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct TraceSummary {
    /// Per-kind rollups, in a stable order.
    pub kinds: BTreeMap<String, KindSummary>,
    /// The last completion cycle in the trace.
    pub end_cycle: u64,
    /// The single chain exposing the most dependence latency, as
    /// `(trace_index, exposed_cycles)`.
    pub worst_dep_stall: Option<(usize, u64)>,
}

impl TraceSummary {
    /// Builds a summary from a trace (empty traces summarize to zeros).
    pub fn from_trace(trace: &[ChainTrace]) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for (i, t) in trace.iter().enumerate() {
            let name = match t.kind {
                ChainKind::Mvm => "mvm",
                ChainKind::Mfu => "mfu",
                ChainKind::Move => "move",
                ChainKind::MatrixMove => "matrix-move",
            };
            let entry = summary.kinds.entry(name.to_owned()).or_default();
            entry.chains += 1;
            entry.busy_cycles += t.occupancy;
            // Start beyond the dependency-implied earliest start is
            // resource/dispatch wait; start attributable to dependencies
            // beyond the dispatch point is dependence-exposed latency.
            entry.resource_wait_cycles +=
                t.start.saturating_sub(t.dep_ready_at.max(t.dispatched_at));
            let dep_exposed = t
                .dep_ready_at
                .saturating_sub(t.dispatched_at)
                .min(t.start - t.dispatched_at.min(t.start));
            entry.dep_wait_cycles += dep_exposed;
            if dep_exposed > 0
                && summary
                    .worst_dep_stall
                    .is_none_or(|(_, worst)| dep_exposed > worst)
            {
                summary.worst_dep_stall = Some((i, dep_exposed));
            }
            summary.end_cycle = summary.end_cycle.max(t.completion);
        }
        summary
    }

    /// Fraction of the run the given kind kept its resource busy.
    pub fn occupancy(&self, kind: &str) -> f64 {
        if self.end_cycle == 0 {
            return 0.0;
        }
        self.kinds
            .get(kind)
            .map(|k| k.busy_cycles as f64 / self.end_cycle as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MemId, ProgramBuilder};
    use crate::{Npu, NpuConfig};

    fn traced_run() -> (Vec<ChainTrace>, TraceSummary) {
        let cfg = NpuConfig::builder()
            .native_dim(4)
            .lanes(2)
            .tile_engines(2)
            .mrf_entries(16)
            .vrf_entries(32)
            .matrix_format(bw_bfp::BfpFormat::BFP_1S_5E_5M)
            .build()
            .unwrap();
        let mut npu = Npu::new(cfg);
        let n = 4;
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        npu.load_tiled_matrix(0, 1, 1, n, n, &ident).unwrap();
        npu.set_trace(true);
        npu.push_input(vec![1.0; 4]).unwrap();
        let mut b = ProgramBuilder::new();
        b.set_rows(1).set_cols(1);
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .v_wr(MemId::InitialVrf, 1)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 1)
            .v_tanh()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        npu.run(&b.build()).unwrap();
        let trace = npu.take_trace();
        let summary = TraceSummary::from_trace(&trace);
        (trace, summary)
    }

    #[test]
    fn summary_counts_every_kind_once() {
        let (trace, summary) = traced_run();
        assert_eq!(trace.len(), 3);
        assert_eq!(summary.kinds.len(), 3);
        for kind in ["move", "mvm", "mfu"] {
            assert_eq!(summary.kinds[kind].chains, 1, "{kind}");
            assert!(summary.kinds[kind].busy_cycles > 0, "{kind}");
        }
        assert_eq!(
            summary.end_cycle,
            trace.iter().map(|t| t.completion).max().unwrap()
        );
    }

    #[test]
    fn dependence_stalls_are_attributed() {
        let (_, summary) = traced_run();
        // The serial copy -> mv_mul -> tanh program exposes dependence
        // latency at each downstream chain.
        let total_dep: u64 = summary.kinds.values().map(|k| k.dep_wait_cycles).sum();
        assert!(total_dep > 0);
        assert!(summary.worst_dep_stall.is_some());
        let (idx, stall) = summary.worst_dep_stall.unwrap();
        assert!(idx > 0, "the head chain has no dependencies");
        assert!(stall > 0);
    }

    #[test]
    fn occupancy_fractions_are_bounded() {
        let (_, summary) = traced_run();
        for kind in ["move", "mvm", "mfu"] {
            let f = summary.occupancy(kind);
            assert!((0.0..=1.0).contains(&f), "{kind}: {f}");
        }
        assert_eq!(summary.occupancy("nonexistent"), 0.0);
    }

    /// A handcrafted record: dispatched at `dispatch`, dependencies ready
    /// at `dep`, started at `start`, occupying `occ` cycles.
    fn rec(kind: ChainKind, dispatch: u64, dep: u64, start: u64, occ: u64) -> ChainTrace {
        ChainTrace {
            kind,
            dispatched_at: dispatch,
            dep_ready_at: dep,
            start,
            occupancy: occ,
            completion: start + occ,
        }
    }

    #[test]
    fn worst_dep_stall_keeps_the_first_on_ties() {
        // Records 1 and 2 both expose 10 cycles of dependence latency;
        // the strict `>` comparison must keep the earlier index.
        let trace = vec![
            rec(ChainKind::Mvm, 0, 0, 0, 4),
            rec(ChainKind::Mvm, 4, 14, 14, 4),
            rec(ChainKind::Mfu, 18, 28, 28, 4),
            rec(ChainKind::Mfu, 32, 37, 37, 4), // smaller stall: ignored
        ];
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.worst_dep_stall, Some((1, 10)));
        // A strictly larger stall later does displace the winner.
        let mut bigger = trace;
        bigger.push(rec(ChainKind::Mvm, 41, 60, 60, 4));
        let summary = TraceSummary::from_trace(&bigger);
        assert_eq!(summary.worst_dep_stall, Some((4, 19)));
    }

    #[test]
    fn single_kind_trace_rolls_up_into_one_bucket() {
        let trace = vec![
            rec(ChainKind::Mfu, 0, 0, 0, 8),
            rec(ChainKind::Mfu, 2, 0, 8, 8), // starts late: resource wait
            rec(ChainKind::Mfu, 4, 20, 20, 8),
        ];
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.kinds.len(), 1);
        let mfu = &summary.kinds["mfu"];
        assert_eq!(mfu.chains, 3);
        assert_eq!(mfu.busy_cycles, 24);
        // Chain 1 started 6 cycles past max(dep, dispatch)=2.
        assert_eq!(mfu.resource_wait_cycles, 6);
        // Chain 2 exposed 16 cycles of dependence latency.
        assert_eq!(mfu.dep_wait_cycles, 16);
        assert_eq!(summary.end_cycle, 28);
        assert!((summary.occupancy("mfu") - 24.0 / 28.0).abs() < 1e-12);
        assert_eq!(summary.occupancy("mvm"), 0.0);
    }

    #[test]
    fn dep_exposure_is_clamped_by_the_actual_start() {
        // dep_ready far beyond start must not attribute more wait than the
        // chain actually experienced (start - dispatch).
        let trace = vec![rec(ChainKind::Mvm, 10, 100, 30, 4)];
        let summary = TraceSummary::from_trace(&trace);
        assert_eq!(summary.kinds["mvm"].dep_wait_cycles, 20);
        assert_eq!(summary.worst_dep_stall, Some((0, 20)));
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let summary = TraceSummary::from_trace(&[]);
        assert_eq!(summary.end_cycle, 0);
        assert!(summary.kinds.is_empty());
        assert!(summary.worst_dep_stall.is_none());
        assert_eq!(summary.occupancy("mvm"), 0.0);
    }
}
