//! Hierarchical decode and dispatch (§V-C, Figure 6).
//!
//! A single compound instruction leaving the control processor is expanded
//! level by level — top-level scheduler, second-level schedulers, per-engine
//! decoders — until it becomes primitive control signals fanned out across
//! the data plane. This module computes that expansion for any instruction,
//! which both documents the control hierarchy and regenerates the Figure 6
//! narrative ("a single compound matrix-vector instruction will end up
//! producing over 10,000 primitive operations"; the largest GRU dispatches
//! "over 7 million operations" from one instruction).

use serde::Serialize;

use crate::config::NpuConfig;
use crate::isa::{Instruction, Opcode};

/// One level of the decode/dispatch hierarchy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DispatchLevel {
    /// Name of the hardware stage (e.g. `"tile engine decoders"`).
    pub stage: &'static str,
    /// Number of parallel units at this level.
    pub units: u64,
    /// Number of operations/control messages this level emits downstream
    /// for the analyzed instruction.
    pub dispatched: u64,
}

/// The full expansion of one compound instruction through the HDD tree.
///
/// # Example
///
/// ```
/// use bw_core::{HddExpansion, NpuConfig};
/// use bw_core::isa::Instruction;
///
/// // The paper's largest GRU: one mv_mul over an 8x8 tile grid of
/// // 400-element native tiles dispatches > 7M operations (§IV-C).
/// let cfg = NpuConfig::bw_s10();
/// let exp = HddExpansion::expand(&cfg, &Instruction::MvMul { mrf_index: 0 }, 8, 8);
/// assert!(exp.primitive_ops > 7_000_000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HddExpansion {
    /// The instruction's opcode.
    pub opcode: Opcode,
    /// Expansion levels from the control processor downward.
    pub levels: Vec<DispatchLevel>,
    /// Total primitive arithmetic operations dispatched into the data plane
    /// (MACs count as two operations, multiply and add, matching the
    /// paper's FLOP accounting).
    pub primitive_ops: u64,
}

/// Number of first-level decoders fed by the top-level scheduler (§V-C:
/// "dispatches to 6 decoders and 4 second-level schedulers").
pub(crate) const TOP_LEVEL_DECODERS: u64 = 6;
/// Number of second-level schedulers.
pub(crate) const SECOND_LEVEL_SCHEDULERS: u64 = 4;
/// Decoders fed by the second-level schedulers ("an additional 41
/// decoders").
pub(crate) const SECOND_LEVEL_DECODERS: u64 = 41;

impl HddExpansion {
    /// Expands one instruction under the given tiling registers.
    pub fn expand(config: &NpuConfig, instruction: &Instruction, rows: u32, cols: u32) -> Self {
        let opcode = instruction.opcode();
        let nd = u64::from(config.native_dim());
        let engines = u64::from(config.tile_engines());
        let lanes = u64::from(config.lanes());
        let tiles = u64::from(rows) * u64::from(cols);

        let mut levels = vec![DispatchLevel {
            stage: "control processor",
            units: 1,
            dispatched: 1,
        }];

        match opcode {
            Opcode::MvMul => {
                levels.push(DispatchLevel {
                    stage: "top-level scheduler",
                    units: 1,
                    dispatched: TOP_LEVEL_DECODERS + SECOND_LEVEL_SCHEDULERS,
                });
                levels.push(DispatchLevel {
                    stage: "second-level MVM scheduler (R x C expansion)",
                    units: SECOND_LEVEL_SCHEDULERS,
                    dispatched: tiles,
                });
                levels.push(DispatchLevel {
                    stage: "tile-engine / VRF / accumulation decoders",
                    units: SECOND_LEVEL_DECODERS,
                    dispatched: tiles.max(engines),
                });
                levels.push(DispatchLevel {
                    stage: "dot-product engines",
                    units: engines * nd,
                    dispatched: tiles * nd,
                });
                levels.push(DispatchLevel {
                    stage: "multiply-accumulate lanes",
                    units: config.mac_count(),
                    dispatched: tiles * nd * nd,
                });
                HddExpansion {
                    opcode,
                    levels,
                    primitive_ops: 2 * tiles * nd * nd,
                }
            }
            op if op.is_mfu_op() => {
                let width = u64::from(rows);
                levels.push(DispatchLevel {
                    stage: "top-level scheduler",
                    units: 1,
                    dispatched: u64::from(config.mfus()),
                });
                levels.push(DispatchLevel {
                    stage: "MFU decoders",
                    units: u64::from(config.mfus()) * 3,
                    dispatched: width,
                });
                levels.push(DispatchLevel {
                    stage: "vector lanes",
                    units: lanes,
                    dispatched: width * nd,
                });
                HddExpansion {
                    opcode,
                    levels,
                    primitive_ops: width * nd,
                }
            }
            Opcode::VRd | Opcode::VWr => {
                let width = u64::from(if opcode == Opcode::VRd { cols } else { rows });
                levels.push(DispatchLevel {
                    stage: "top-level scheduler",
                    units: 1,
                    dispatched: 1,
                });
                levels.push(DispatchLevel {
                    stage: "vector arbitration network",
                    units: 1,
                    dispatched: width,
                });
                levels.push(DispatchLevel {
                    stage: "register file ports",
                    units: lanes,
                    dispatched: width * nd,
                });
                HddExpansion {
                    opcode,
                    levels,
                    primitive_ops: 0,
                }
            }
            Opcode::MRd | Opcode::MWr => {
                let tiles = u64::from(rows) * u64::from(cols);
                levels.push(DispatchLevel {
                    stage: "top-level scheduler",
                    units: 1,
                    dispatched: tiles,
                });
                levels.push(DispatchLevel {
                    stage: "MRF bank write ports",
                    units: engines,
                    dispatched: tiles * nd,
                });
                HddExpansion {
                    opcode,
                    levels,
                    primitive_ops: 0,
                }
            }
            _ => HddExpansion {
                opcode,
                levels,
                primitive_ops: 0,
            },
        }
    }

    /// The total fan-out ratio: primitive data-plane messages emitted per
    /// compound instruction.
    pub fn fanout(&self) -> u64 {
        self.levels.last().map_or(0, |l| l.dispatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MemId;

    #[test]
    fn single_native_mv_mul_exceeds_10k_primitives() {
        // §V-C: "a single compound matrix-vector instruction will end up
        // producing over 10,000 primitive operations" — true already for
        // one native tile on BW_S10 (400x400 = 160k MACs).
        let cfg = NpuConfig::bw_s10();
        let e = HddExpansion::expand(&cfg, &Instruction::MvMul { mrf_index: 0 }, 1, 1);
        assert!(e.primitive_ops > 10_000, "{}", e.primitive_ops);
    }

    #[test]
    fn largest_gru_instruction_dispatches_7m_ops() {
        let cfg = NpuConfig::bw_s10();
        let e = HddExpansion::expand(&cfg, &Instruction::MvMul { mrf_index: 0 }, 8, 8);
        // 2 * 64 tiles * 400^2 = 20.48M; the paper quotes "over 7 million".
        assert!(e.primitive_ops > 7_000_000);
        assert_eq!(e.fanout(), 64 * 400 * 400);
    }

    #[test]
    fn expansion_levels_grow_monotonically_for_mv_mul() {
        let cfg = NpuConfig::bw_s10();
        let e = HddExpansion::expand(&cfg, &Instruction::MvMul { mrf_index: 0 }, 4, 5);
        let dispatched: Vec<u64> = e.levels.iter().map(|l| l.dispatched).collect();
        for w in dispatched.windows(2).skip(1) {
            assert!(w[1] >= w[0], "levels {dispatched:?}");
        }
    }

    #[test]
    fn mfu_op_expansion() {
        let cfg = NpuConfig::bw_s10();
        let e = HddExpansion::expand(&cfg, &Instruction::VvAdd { index: 0 }, 4, 5);
        assert_eq!(e.primitive_ops, 4 * 400);
    }

    #[test]
    fn reads_and_writes_dispatch_no_arithmetic() {
        let cfg = NpuConfig::bw_s10();
        let rd = HddExpansion::expand(
            &cfg,
            &Instruction::VRd {
                mem: MemId::InitialVrf,
                index: 0,
            },
            4,
            5,
        );
        assert_eq!(rd.primitive_ops, 0);
        assert_eq!(rd.fanout(), 5 * 400); // cols entries
        let wr = HddExpansion::expand(
            &cfg,
            &Instruction::VWr {
                mem: MemId::InitialVrf,
                index: 0,
            },
            4,
            5,
        );
        assert_eq!(wr.fanout(), 4 * 400); // rows entries
    }

    #[test]
    fn decoder_counts_match_paper() {
        assert_eq!(TOP_LEVEL_DECODERS, 6);
        assert_eq!(SECOND_LEVEL_SCHEDULERS, 4);
        assert_eq!(SECOND_LEVEL_DECODERS, 41);
    }
}
