//! Validated instruction chains.

use std::fmt;

use serde::{Deserialize, Serialize};

use super::instruction::{Instruction, MemId, Opcode};

/// A validated instruction chain (§IV-C).
///
/// Chains are the unit of dataflow in the BW NPU ISA: values pass implicitly
/// from each instruction to the next, so the microarchitecture can pipeline
/// the whole chain without dependency checking or multi-ported register
/// files. Construction enforces the ISA's structural rules:
///
/// * a chain begins with `v_rd` or `m_rd` — the only instructions that
///   produce a chain output without consuming one;
/// * a *matrix chain* is exactly `m_rd` → `m_wr`, moving tiles between the
///   network/DRAM and the MRF/DRAM;
/// * a *vector chain* contains at most one `mv_mul`, placed before any MFU
///   operation (the MVM sits at the head of the physical pipeline), and
///   terminates with one or more `v_wr`s (multiple `v_wr`s multicast the
///   final value);
/// * `s_wr` and `end_chain` never appear inside a chain.
///
/// Per-configuration limits (MFU count, register file bounds) are checked
/// when a [`Program`] is loaded onto an NPU, not here.
///
/// [`Program`]: crate::isa::Program
///
/// # Example
///
/// ```
/// use bw_core::isa::{Chain, Instruction, MemId};
///
/// let chain = Chain::new(vec![
///     Instruction::VRd { mem: MemId::InitialVrf, index: 0 },
///     Instruction::MvMul { mrf_index: 0 },
///     Instruction::VvAdd { index: 0 },
///     Instruction::VSigm,
///     Instruction::VWr { mem: MemId::AddSubVrf(0), index: 1 },
/// ])?;
/// assert!(chain.has_mv_mul());
/// # Ok::<(), bw_core::isa::ChainError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chain {
    instructions: Vec<Instruction>,
}

/// Error produced when a sequence of instructions violates the chain rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The chain held no instructions.
    Empty,
    /// The first instruction was not `v_rd` or `m_rd`.
    BadHead(Opcode),
    /// A matrix chain was not exactly `m_rd` → `m_wr`.
    MalformedMatrixChain,
    /// The memory operand is not legal for this opcode (e.g. `m_rd` from a
    /// VRF).
    IllegalMemory {
        /// The offending opcode.
        opcode: Opcode,
        /// The illegal memory target.
        mem: MemId,
    },
    /// A second `mv_mul` appeared, or an `mv_mul` after an MFU operation.
    MisplacedMvMul,
    /// A `v_rd` appeared after the head of the chain.
    MidChainRead,
    /// An instruction followed a `v_wr` that was not another `v_wr`.
    OpAfterWrite(Opcode),
    /// A vector chain did not terminate with at least one `v_wr`.
    MissingWrite,
    /// `s_wr` or `end_chain` appeared inside a chain.
    ControlInsideChain(Opcode),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Empty => write!(f, "chain is empty"),
            ChainError::BadHead(op) => {
                write!(f, "chain must begin with v_rd or m_rd, found {op}")
            }
            ChainError::MalformedMatrixChain => {
                write!(f, "matrix chain must be exactly m_rd followed by m_wr")
            }
            ChainError::IllegalMemory { opcode, mem } => {
                write!(f, "{opcode} may not target {mem}")
            }
            ChainError::MisplacedMvMul => write!(
                f,
                "mv_mul must appear at most once, before any MFU operation"
            ),
            ChainError::MidChainRead => write!(f, "v_rd may only begin a chain"),
            ChainError::OpAfterWrite(op) => {
                write!(f, "only further v_wr may follow a v_wr, found {op}")
            }
            ChainError::MissingWrite => {
                write!(f, "vector chain must terminate with at least one v_wr")
            }
            ChainError::ControlInsideChain(op) => {
                write!(f, "{op} is not permitted inside a chain")
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl Chain {
    /// Validates and constructs a chain.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] describing the first rule violated.
    pub fn new(instructions: Vec<Instruction>) -> Result<Self, ChainError> {
        let Some(head) = instructions.first() else {
            return Err(ChainError::Empty);
        };
        match head {
            Instruction::MRd { mem, .. } => {
                if !mem.matrix_readable() {
                    return Err(ChainError::IllegalMemory {
                        opcode: Opcode::MRd,
                        mem: *mem,
                    });
                }
                // Matrix chains are exactly two instructions.
                if instructions.len() != 2 {
                    return Err(ChainError::MalformedMatrixChain);
                }
                match &instructions[1] {
                    Instruction::MWr { mem, .. } => {
                        if !mem.matrix_writable() {
                            return Err(ChainError::IllegalMemory {
                                opcode: Opcode::MWr,
                                mem: *mem,
                            });
                        }
                    }
                    _ => return Err(ChainError::MalformedMatrixChain),
                }
            }
            Instruction::VRd { mem, .. } => {
                if !mem.vector_readable() {
                    return Err(ChainError::IllegalMemory {
                        opcode: Opcode::VRd,
                        mem: *mem,
                    });
                }
                Self::validate_vector_tail(&instructions[1..])?;
            }
            other => return Err(ChainError::BadHead(other.opcode())),
        }
        Ok(Chain { instructions })
    }

    fn validate_vector_tail(tail: &[Instruction]) -> Result<(), ChainError> {
        let mut seen_mv_mul = false;
        let mut seen_mfu_op = false;
        let mut seen_write = false;
        for instr in tail {
            let op = instr.opcode();
            if seen_write && op != Opcode::VWr {
                return Err(ChainError::OpAfterWrite(op));
            }
            match instr {
                Instruction::VRd { .. } => return Err(ChainError::MidChainRead),
                Instruction::MRd { .. } | Instruction::MWr { .. } => {
                    return Err(ChainError::MalformedMatrixChain)
                }
                Instruction::MvMul { .. } => {
                    if seen_mv_mul || seen_mfu_op {
                        return Err(ChainError::MisplacedMvMul);
                    }
                    seen_mv_mul = true;
                }
                Instruction::VWr { mem, .. } => {
                    if !mem.vector_writable() {
                        return Err(ChainError::IllegalMemory {
                            opcode: Opcode::VWr,
                            mem: *mem,
                        });
                    }
                    seen_write = true;
                }
                Instruction::SWr { .. } | Instruction::EndChain => {
                    return Err(ChainError::ControlInsideChain(op))
                }
                _ if op.is_mfu_op() => seen_mfu_op = true,
                _ => unreachable!("all instruction variants handled"),
            }
        }
        if !seen_write {
            return Err(ChainError::MissingWrite);
        }
        Ok(())
    }

    /// The validated instruction sequence.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Chains are never empty; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if this is a matrix movement chain (`m_rd` → `m_wr`).
    pub fn is_matrix_chain(&self) -> bool {
        matches!(self.instructions[0], Instruction::MRd { .. })
    }

    /// Returns `true` if the chain contains an `mv_mul`.
    pub fn has_mv_mul(&self) -> bool {
        self.instructions
            .iter()
            .any(|i| matches!(i, Instruction::MvMul { .. }))
    }

    /// Number of MFU add/sub/max operations.
    pub fn addsub_ops(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.opcode().is_addsub())
            .count()
    }

    /// Number of MFU Hadamard-product operations.
    pub fn multiply_ops(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.opcode() == Opcode::VvMul)
            .count()
    }

    /// Number of MFU activation operations.
    pub fn activation_ops(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.opcode().is_activation())
            .count()
    }

    /// Total MFU operations of any kind.
    pub fn mfu_ops(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.opcode().is_mfu_op())
            .count()
    }

    /// The multicast `v_wr` destinations of a vector chain (empty for matrix
    /// chains).
    pub fn write_targets(&self) -> impl Iterator<Item = (MemId, u32)> + '_ {
        self.instructions.iter().filter_map(|i| match i {
            Instruction::VWr { mem, index } => Some((*mem, *index)),
            _ => None,
        })
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instructions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {instr};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrd(index: u32) -> Instruction {
        Instruction::VRd {
            mem: MemId::InitialVrf,
            index,
        }
    }

    fn vwr(index: u32) -> Instruction {
        Instruction::VWr {
            mem: MemId::InitialVrf,
            index,
        }
    }

    #[test]
    fn minimal_copy_chain() {
        let c = Chain::new(vec![vrd(0), vwr(1)]).unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.has_mv_mul());
        assert!(!c.is_matrix_chain());
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(Chain::new(vec![]), Err(ChainError::Empty));
    }

    #[test]
    fn bad_head_rejected() {
        assert_eq!(
            Chain::new(vec![Instruction::VSigm, vwr(0)]),
            Err(ChainError::BadHead(Opcode::VSigm))
        );
        assert_eq!(
            Chain::new(vec![Instruction::MvMul { mrf_index: 0 }, vwr(0)]),
            Err(ChainError::BadHead(Opcode::MvMul))
        );
    }

    #[test]
    fn matrix_chain_rules() {
        let ok = Chain::new(vec![
            Instruction::MRd {
                mem: MemId::Dram,
                index: 0,
            },
            Instruction::MWr {
                mem: MemId::MatrixRf,
                index: 3,
            },
        ])
        .unwrap();
        assert!(ok.is_matrix_chain());

        // m_rd from a VRF is illegal.
        assert_eq!(
            Chain::new(vec![
                Instruction::MRd {
                    mem: MemId::InitialVrf,
                    index: 0
                },
                Instruction::MWr {
                    mem: MemId::MatrixRf,
                    index: 0
                },
            ]),
            Err(ChainError::IllegalMemory {
                opcode: Opcode::MRd,
                mem: MemId::InitialVrf
            })
        );
        // m_wr to NetQ is illegal (matrices are never sent out).
        assert_eq!(
            Chain::new(vec![
                Instruction::MRd {
                    mem: MemId::Dram,
                    index: 0
                },
                Instruction::MWr {
                    mem: MemId::NetQ,
                    index: 0
                },
            ]),
            Err(ChainError::IllegalMemory {
                opcode: Opcode::MWr,
                mem: MemId::NetQ
            })
        );
        // A third instruction breaks the two-instruction form.
        assert_eq!(
            Chain::new(vec![
                Instruction::MRd {
                    mem: MemId::Dram,
                    index: 0
                },
                Instruction::MWr {
                    mem: MemId::MatrixRf,
                    index: 0
                },
                Instruction::MWr {
                    mem: MemId::Dram,
                    index: 0
                },
            ]),
            Err(ChainError::MalformedMatrixChain)
        );
    }

    #[test]
    fn mv_mul_placement() {
        // mv_mul after an MFU op is illegal.
        assert_eq!(
            Chain::new(vec![
                vrd(0),
                Instruction::VSigm,
                Instruction::MvMul { mrf_index: 0 },
                vwr(0),
            ]),
            Err(ChainError::MisplacedMvMul)
        );
        // Two mv_muls are illegal.
        assert_eq!(
            Chain::new(vec![
                vrd(0),
                Instruction::MvMul { mrf_index: 0 },
                Instruction::MvMul { mrf_index: 1 },
                vwr(0),
            ]),
            Err(ChainError::MisplacedMvMul)
        );
    }

    #[test]
    fn mid_chain_read_rejected() {
        assert_eq!(
            Chain::new(vec![vrd(0), vrd(1), vwr(0)]),
            Err(ChainError::MidChainRead)
        );
    }

    #[test]
    fn writes_terminate_chain() {
        assert_eq!(
            Chain::new(vec![vrd(0), vwr(0), Instruction::VSigm]),
            Err(ChainError::OpAfterWrite(Opcode::VSigm))
        );
        // Multicast is fine.
        let c = Chain::new(vec![
            vrd(0),
            Instruction::VTanh,
            vwr(1),
            Instruction::VWr {
                mem: MemId::NetQ,
                index: 0,
            },
        ])
        .unwrap();
        assert_eq!(c.write_targets().count(), 2);
    }

    #[test]
    fn missing_write_rejected() {
        assert_eq!(
            Chain::new(vec![vrd(0), Instruction::VSigm]),
            Err(ChainError::MissingWrite)
        );
    }

    #[test]
    fn control_inside_chain_rejected() {
        assert_eq!(
            Chain::new(vec![
                vrd(0),
                Instruction::SWr {
                    reg: super::super::instruction::ScalarReg::Rows,
                    value: 2
                },
                vwr(0),
            ]),
            Err(ChainError::ControlInsideChain(Opcode::SWr))
        );
        assert_eq!(
            Chain::new(vec![vrd(0), Instruction::EndChain, vwr(0)]),
            Err(ChainError::ControlInsideChain(Opcode::EndChain))
        );
    }

    #[test]
    fn lstm_gate_chain_op_counts() {
        // v_rd; mv_mul; vv_add; v_sigm; vv_mul; v_wr — the paper's f-gate.
        let c = Chain::new(vec![
            vrd(0),
            Instruction::MvMul { mrf_index: 0 },
            Instruction::VvAdd { index: 0 },
            Instruction::VSigm,
            Instruction::VvMul { index: 0 },
            vwr(2),
        ])
        .unwrap();
        assert!(c.has_mv_mul());
        assert_eq!(c.addsub_ops(), 1);
        assert_eq!(c.multiply_ops(), 1);
        assert_eq!(c.activation_ops(), 1);
        assert_eq!(c.mfu_ops(), 3);
    }

    #[test]
    fn display_renders_each_instruction() {
        let c = Chain::new(vec![vrd(3), vwr(4)]).unwrap();
        let s = c.to_string();
        assert!(s.contains("v_rd(InitialVrf, 3);"));
        assert!(s.contains("v_wr(InitialVrf, 4);"));
    }
}
