//! Programs: what the scalar control processor streams to the NPU.

use std::fmt;

use serde::{Deserialize, Serialize};

use super::chain::Chain;
use super::instruction::ScalarReg;

/// One element of a program: either a scalar control register write or a
/// complete instruction chain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// `s_wr reg, value` executed by the top-level scheduler.
    SetReg {
        /// Destination control register.
        reg: ScalarReg,
        /// New value.
        value: u32,
    },
    /// A validated instruction chain.
    Chain(Chain),
}

/// A group of items repeated a fixed number of iterations.
///
/// This models the control processor streaming "T iterations of N static
/// instructions into the top-level scheduler" (§V-C): an RNN time-step loop
/// becomes one segment whose `iterations` equals the step count. Register
/// file indices are static across iterations; per-iteration inputs arrive
/// through the network queue, which pops in order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The static item sequence of one iteration.
    pub items: Vec<Item>,
    /// How many times the sequence is streamed (≥ 1 to have any effect).
    pub iterations: u32,
}

/// A complete BW NPU program: an ordered list of [`Segment`]s.
///
/// # Example
///
/// ```
/// use bw_core::isa::{Program, ProgramBuilder, MemId};
///
/// let mut b = ProgramBuilder::new();
/// b.set_rows(1).set_cols(1);
/// b.v_rd(MemId::NetQ, 0).v_relu().v_wr(MemId::NetQ, 0).end_chain()?;
/// let program: Program = b.build();
/// assert_eq!(program.chain_count(), 1);
/// # Ok::<(), bw_core::isa::BuilderError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The segments, executed in order.
    pub segments: Vec<Segment>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Total chains across all segments, counting iterations.
    pub fn chain_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| {
                s.items
                    .iter()
                    .filter(|i| matches!(i, Item::Chain(_)))
                    .count() as u64
                    * u64::from(s.iterations)
            })
            .sum()
    }

    /// Total compound instructions streamed by the control processor,
    /// counting iterations, chain contents, implicit `end_chain`s, and
    /// register writes.
    pub fn instruction_count(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| {
                let per_iter: u64 = s
                    .items
                    .iter()
                    .map(|i| match i {
                        Item::SetReg { .. } => 1,
                        // +1 for the end_chain delimiter.
                        Item::Chain(c) => c.len() as u64 + 1,
                    })
                    .sum();
                per_iter * u64::from(s.iterations)
            })
            .sum()
    }

    /// Iterates over `(segment_index, item)` in stream order, expanding
    /// iteration counts. Intended for tests and small programs; the
    /// simulator iterates segments directly to avoid materializing large
    /// unrolls.
    pub fn stream(&self) -> impl Iterator<Item = (usize, &Item)> + '_ {
        self.segments.iter().enumerate().flat_map(|(si, seg)| {
            (0..seg.iterations).flat_map(move |_| seg.items.iter().map(move |it| (si, it)))
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (si, seg) in self.segments.iter().enumerate() {
            writeln!(f, "segment {si} (x{}):", seg.iterations)?;
            for item in &seg.items {
                match item {
                    Item::SetReg { reg, value } => writeln!(f, "  s_wr({reg}, {value});")?,
                    Item::Chain(c) => {
                        writeln!(f, "{c}")?;
                        writeln!(f, "  end_chain;")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::instruction::{Instruction, MemId};
    use super::*;

    fn copy_chain() -> Chain {
        Chain::new(vec![
            Instruction::VRd {
                mem: MemId::InitialVrf,
                index: 0,
            },
            Instruction::VWr {
                mem: MemId::InitialVrf,
                index: 1,
            },
        ])
        .unwrap()
    }

    #[test]
    fn counts_respect_iterations() {
        let p = Program {
            segments: vec![Segment {
                items: vec![
                    Item::SetReg {
                        reg: ScalarReg::Rows,
                        value: 2,
                    },
                    Item::Chain(copy_chain()),
                ],
                iterations: 10,
            }],
        };
        assert_eq!(p.chain_count(), 10);
        // Each iteration: 1 s_wr + 2 chain instructions + 1 end_chain = 4.
        assert_eq!(p.instruction_count(), 40);
    }

    #[test]
    fn empty_program() {
        let p = Program::new();
        assert_eq!(p.chain_count(), 0);
        assert_eq!(p.instruction_count(), 0);
        assert_eq!(p.stream().count(), 0);
    }

    #[test]
    fn stream_expands_iterations_in_order() {
        let p = Program {
            segments: vec![
                Segment {
                    items: vec![Item::Chain(copy_chain())],
                    iterations: 2,
                },
                Segment {
                    items: vec![Item::SetReg {
                        reg: ScalarReg::Cols,
                        value: 3,
                    }],
                    iterations: 1,
                },
            ],
        };
        let seq: Vec<usize> = p.stream().map(|(si, _)| si).collect();
        assert_eq!(seq, vec![0, 0, 1]);
    }

    #[test]
    fn display_includes_segment_header_and_delimiters() {
        let p = Program {
            segments: vec![Segment {
                items: vec![Item::Chain(copy_chain())],
                iterations: 3,
            }],
        };
        let s = p.to_string();
        assert!(s.contains("segment 0 (x3):"));
        assert!(s.contains("end_chain;"));
    }
}
