//! Instructions, opcodes, memory identifiers, and scalar control registers
//! (the contents of Table II).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a memory target of a read or write instruction.
///
/// Vector register files are tightly coupled to specific function units
/// (§IV-C): `InitialVrf` feeds the head of the pipeline, each MFU's add/sub
/// unit owns an `AddSubVrf`, and each multiply unit owns a `MultiplyVrf`.
/// The index selects the owning MFU (0-based); the paper's two-MFU designs
/// have `AddSubVrf(0)`, `AddSubVrf(1)`, etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemId {
    /// The vector register file at the pipeline head.
    InitialVrf,
    /// The add/subtract-unit register file of the given MFU.
    AddSubVrf(u8),
    /// The multiply-unit register file of the given MFU.
    MultiplyVrf(u8),
    /// The matrix register file distributed across the tile engines.
    MatrixRf,
    /// The network input/output queue.
    NetQ,
    /// Off-chip DRAM.
    Dram,
}

impl MemId {
    /// Returns `true` for the vector register files (not NetQ/DRAM/MRF).
    pub fn is_vrf(self) -> bool {
        matches!(
            self,
            MemId::InitialVrf | MemId::AddSubVrf(_) | MemId::MultiplyVrf(_)
        )
    }

    /// Returns `true` if a `v_rd` may source from this memory.
    pub fn vector_readable(self) -> bool {
        self.is_vrf() || matches!(self, MemId::NetQ | MemId::Dram)
    }

    /// Returns `true` if a `v_wr` may sink to this memory.
    pub fn vector_writable(self) -> bool {
        self.is_vrf() || matches!(self, MemId::NetQ | MemId::Dram)
    }

    /// Returns `true` if an `m_rd` may source matrices from this memory
    /// (Table II: NetQ or DRAM only).
    pub fn matrix_readable(self) -> bool {
        matches!(self, MemId::NetQ | MemId::Dram)
    }

    /// Returns `true` if an `m_wr` may sink matrices to this memory
    /// (Table II: MatrixRf or DRAM only).
    pub fn matrix_writable(self) -> bool {
        matches!(self, MemId::MatrixRf | MemId::Dram)
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemId::InitialVrf => write!(f, "InitialVrf"),
            MemId::AddSubVrf(i) => write!(f, "AddSubVrf{i}"),
            MemId::MultiplyVrf(i) => write!(f, "MultiplyVrf{i}"),
            MemId::MatrixRf => write!(f, "MatrixRf"),
            MemId::NetQ => write!(f, "NetQ"),
            MemId::Dram => write!(f, "DRAM"),
        }
    }
}

/// Scalar control registers written by `s_wr` (§IV-C, "Mega-SIMD
/// execution").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarReg {
    /// Row tiling factor: an `mv_mul` treats `rows × cols` consecutive MRF
    /// entries as a tiled matrix producing `rows` native output vectors.
    Rows,
    /// Column tiling factor: an `mv_mul` consumes `cols` native input
    /// vectors.
    Cols,
}

impl fmt::Display for ScalarReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarReg::Rows => write!(f, "rows"),
            ScalarReg::Cols => write!(f, "cols"),
        }
    }
}

/// The operation class of an [`Instruction`], matching the `Name` column of
/// Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// `v_rd` — vector read.
    VRd,
    /// `v_wr` — vector write.
    VWr,
    /// `m_rd` — matrix read.
    MRd,
    /// `m_wr` — matrix write.
    MWr,
    /// `mv_mul` — matrix-vector multiply.
    MvMul,
    /// `vv_add` — point-wise vector addition.
    VvAdd,
    /// `vv_a_sub_b` — point-wise subtraction, chain input is the minuend.
    VvASubB,
    /// `vv_b_sub_a` — point-wise subtraction, chain input is the subtrahend.
    VvBSubA,
    /// `vv_max` — point-wise maximum.
    VvMax,
    /// `vv_mul` — Hadamard (point-wise) product.
    VvMul,
    /// `v_relu` — point-wise rectified linear unit.
    VRelu,
    /// `v_sigm` — point-wise logistic sigmoid.
    VSigm,
    /// `v_tanh` — point-wise hyperbolic tangent.
    VTanh,
    /// `s_wr` — scalar control register write.
    SWr,
    /// `end_chain` — chain delimiter.
    EndChain,
}

impl Opcode {
    /// The ISA mnemonic, exactly as printed in Table II.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::VRd => "v_rd",
            Opcode::VWr => "v_wr",
            Opcode::MRd => "m_rd",
            Opcode::MWr => "m_wr",
            Opcode::MvMul => "mv_mul",
            Opcode::VvAdd => "vv_add",
            Opcode::VvASubB => "vv_a_sub_b",
            Opcode::VvBSubA => "vv_b_sub_a",
            Opcode::VvMax => "vv_max",
            Opcode::VvMul => "vv_mul",
            Opcode::VRelu => "v_relu",
            Opcode::VSigm => "v_sigm",
            Opcode::VTanh => "v_tanh",
            Opcode::SWr => "s_wr",
            Opcode::EndChain => "end_chain",
        }
    }

    /// Returns `true` for the MFU add/subtract/max family (operand from an
    /// `AddSubVrf`).
    pub fn is_addsub(self) -> bool {
        matches!(
            self,
            Opcode::VvAdd | Opcode::VvASubB | Opcode::VvBSubA | Opcode::VvMax
        )
    }

    /// Returns `true` for the unary activation operations.
    pub fn is_activation(self) -> bool {
        matches!(self, Opcode::VRelu | Opcode::VSigm | Opcode::VTanh)
    }

    /// Returns `true` for any operation executed by a multifunction unit.
    pub fn is_mfu_op(self) -> bool {
        self.is_addsub() || self.is_activation() || self == Opcode::VvMul
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One BW NPU instruction: an opcode plus its explicit operands. The
/// implicit chain input/output (the `IN`/`OUT` columns of Table II) is
/// positional — it flows from the previous instruction in the [`Chain`].
///
/// [`Chain`]: crate::isa::Chain
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// `v_rd mem, index` — read native vector(s); begins a vector chain.
    /// The index is ignored for `NetQ` sources (queues pop in order).
    VRd {
        /// Source memory.
        mem: MemId,
        /// Entry index within the source (ignored for NetQ).
        index: u32,
    },
    /// `v_wr mem, index` — write the chain value; terminates a vector chain
    /// (possibly multicast via consecutive `v_wr`s).
    VWr {
        /// Destination memory.
        mem: MemId,
        /// Entry index within the destination (ignored for NetQ).
        index: u32,
    },
    /// `m_rd mem, index` — read native matrix tile(s); begins a matrix
    /// chain.
    MRd {
        /// Source memory (NetQ or DRAM only).
        mem: MemId,
        /// Entry index within the source (ignored for NetQ).
        index: u32,
    },
    /// `m_wr mem, index` — write matrix tile(s); terminates a matrix chain.
    MWr {
        /// Destination memory (MatrixRf or DRAM only).
        mem: MemId,
        /// Entry index within the destination.
        index: u32,
    },
    /// `mv_mul mrf_index` — multiply the chain vector by the tiled matrix at
    /// `mrf_index`, honouring the `rows`/`cols` control registers.
    MvMul {
        /// First MRF entry of the `rows × cols` tile grid.
        mrf_index: u32,
    },
    /// `vv_add vrf_index` — add the `AddSubVrf` operand point-wise.
    VvAdd {
        /// Operand entry in the owning MFU's AddSubVrf.
        index: u32,
    },
    /// `vv_a_sub_b vrf_index` — chain value minus the VRF operand.
    VvASubB {
        /// Operand entry in the owning MFU's AddSubVrf.
        index: u32,
    },
    /// `vv_b_sub_a vrf_index` — VRF operand minus the chain value.
    VvBSubA {
        /// Operand entry in the owning MFU's AddSubVrf.
        index: u32,
    },
    /// `vv_max vrf_index` — point-wise maximum with the VRF operand.
    VvMax {
        /// Operand entry in the owning MFU's AddSubVrf.
        index: u32,
    },
    /// `vv_mul vrf_index` — Hadamard product with the `MultiplyVrf` operand.
    VvMul {
        /// Operand entry in the owning MFU's MultiplyVrf.
        index: u32,
    },
    /// `v_relu` — point-wise ReLU.
    VRelu,
    /// `v_sigm` — point-wise sigmoid.
    VSigm,
    /// `v_tanh` — point-wise hyperbolic tangent.
    VTanh,
    /// `s_wr reg, value` — write a scalar control register.
    SWr {
        /// Destination control register.
        reg: ScalarReg,
        /// New value (must be non-zero for tiling registers).
        value: u32,
    },
    /// `end_chain` — terminates the current chain.
    EndChain,
}

impl Instruction {
    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::VRd { .. } => Opcode::VRd,
            Instruction::VWr { .. } => Opcode::VWr,
            Instruction::MRd { .. } => Opcode::MRd,
            Instruction::MWr { .. } => Opcode::MWr,
            Instruction::MvMul { .. } => Opcode::MvMul,
            Instruction::VvAdd { .. } => Opcode::VvAdd,
            Instruction::VvASubB { .. } => Opcode::VvASubB,
            Instruction::VvBSubA { .. } => Opcode::VvBSubA,
            Instruction::VvMax { .. } => Opcode::VvMax,
            Instruction::VvMul { .. } => Opcode::VvMul,
            Instruction::VRelu => Opcode::VRelu,
            Instruction::VSigm => Opcode::VSigm,
            Instruction::VTanh => Opcode::VTanh,
            Instruction::SWr { .. } => Opcode::SWr,
            Instruction::EndChain => Opcode::EndChain,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::VRd { mem, index } | Instruction::MRd { mem, index } => {
                if *mem == MemId::NetQ {
                    write!(f, "{}({mem})", self.opcode())
                } else {
                    write!(f, "{}({mem}, {index})", self.opcode())
                }
            }
            Instruction::VWr { mem, index } | Instruction::MWr { mem, index } => {
                if *mem == MemId::NetQ {
                    write!(f, "{}({mem})", self.opcode())
                } else {
                    write!(f, "{}({mem}, {index})", self.opcode())
                }
            }
            Instruction::MvMul { mrf_index } => write!(f, "mv_mul({mrf_index})"),
            Instruction::VvAdd { index }
            | Instruction::VvASubB { index }
            | Instruction::VvBSubA { index }
            | Instruction::VvMax { index }
            | Instruction::VvMul { index } => write!(f, "{}({index})", self.opcode()),
            Instruction::VRelu | Instruction::VSigm | Instruction::VTanh => {
                write!(f, "{}()", self.opcode())
            }
            Instruction::SWr { reg, value } => write!(f, "s_wr({reg}, {value})"),
            Instruction::EndChain => write!(f, "end_chain"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_id_permissions_match_table2() {
        assert!(MemId::NetQ.matrix_readable());
        assert!(MemId::Dram.matrix_readable());
        assert!(!MemId::MatrixRf.matrix_readable());
        assert!(!MemId::InitialVrf.matrix_readable());

        assert!(MemId::MatrixRf.matrix_writable());
        assert!(MemId::Dram.matrix_writable());
        assert!(!MemId::NetQ.matrix_writable());

        assert!(MemId::InitialVrf.vector_readable());
        assert!(MemId::AddSubVrf(1).vector_readable());
        assert!(MemId::NetQ.vector_readable());
        assert!(!MemId::MatrixRf.vector_readable());
        assert!(!MemId::MatrixRf.vector_writable());
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::VvAdd.is_addsub());
        assert!(Opcode::VvMax.is_addsub());
        assert!(!Opcode::VvMul.is_addsub());
        assert!(Opcode::VSigm.is_activation());
        assert!(Opcode::VvMul.is_mfu_op());
        assert!(!Opcode::MvMul.is_mfu_op());
        assert!(!Opcode::VRd.is_mfu_op());
    }

    #[test]
    fn mnemonics_match_table2() {
        assert_eq!(Opcode::VvASubB.mnemonic(), "vv_a_sub_b");
        assert_eq!(Opcode::VvBSubA.mnemonic(), "vv_b_sub_a");
        assert_eq!(Opcode::MvMul.mnemonic(), "mv_mul");
        assert_eq!(Opcode::EndChain.mnemonic(), "end_chain");
    }

    #[test]
    fn display_formats() {
        let i = Instruction::VRd {
            mem: MemId::InitialVrf,
            index: 7,
        };
        assert_eq!(i.to_string(), "v_rd(InitialVrf, 7)");
        let n = Instruction::VRd {
            mem: MemId::NetQ,
            index: 0,
        };
        assert_eq!(n.to_string(), "v_rd(NetQ)");
        assert_eq!(Instruction::VSigm.to_string(), "v_sigm()");
        assert_eq!(
            Instruction::SWr {
                reg: ScalarReg::Rows,
                value: 4
            }
            .to_string(),
            "s_wr(rows, 4)"
        );
    }

    #[test]
    fn opcode_round_trip_through_instruction() {
        let instrs = [
            Instruction::VRelu,
            Instruction::VvMul { index: 3 },
            Instruction::MWr {
                mem: MemId::MatrixRf,
                index: 9,
            },
            Instruction::EndChain,
        ];
        let expected = [Opcode::VRelu, Opcode::VvMul, Opcode::MWr, Opcode::EndChain];
        for (i, op) in instrs.iter().zip(expected) {
            assert_eq!(i.opcode(), op);
        }
    }
}
