//! Binary encoding of programs — the executable format the toolflow
//! packages and deploys to NPU instances (§II-B).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use super::chain::Chain;
use super::instruction::{Instruction, MemId, ScalarReg};
use super::program::{Item, Program, Segment};

/// Error produced when decoding a malformed program binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header was missing or the version unsupported.
    BadHeader,
    /// The buffer ended mid-structure.
    Truncated,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A decoded chain failed ISA validation.
    InvalidChain(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "missing or unsupported program header"),
            DecodeError::Truncated => write!(f, "program binary is truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            DecodeError::InvalidChain(e) => write!(f, "decoded chain failed validation: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"BWNP";
const VERSION: u8 = 1;

const TAG_SET_REG: u8 = 0;
const TAG_CHAIN: u8 = 1;

fn put_mem(buf: &mut BytesMut, mem: MemId) {
    match mem {
        MemId::InitialVrf => buf.put_u8(0),
        MemId::AddSubVrf(i) => {
            buf.put_u8(1);
            buf.put_u8(i);
            return;
        }
        MemId::MultiplyVrf(i) => {
            buf.put_u8(2);
            buf.put_u8(i);
            return;
        }
        MemId::MatrixRf => buf.put_u8(3),
        MemId::NetQ => buf.put_u8(4),
        MemId::Dram => buf.put_u8(5),
    }
    buf.put_u8(0); // sub-index placeholder for fixed-width decoding
}

fn get_mem(buf: &mut Bytes) -> Result<MemId, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    let sub = buf.get_u8();
    match tag {
        0 => Ok(MemId::InitialVrf),
        1 => Ok(MemId::AddSubVrf(sub)),
        2 => Ok(MemId::MultiplyVrf(sub)),
        3 => Ok(MemId::MatrixRf),
        4 => Ok(MemId::NetQ),
        5 => Ok(MemId::Dram),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_instruction(buf: &mut BytesMut, instr: &Instruction) {
    match *instr {
        Instruction::VRd { mem, index } => {
            buf.put_u8(0);
            put_mem(buf, mem);
            buf.put_u32(index);
        }
        Instruction::VWr { mem, index } => {
            buf.put_u8(1);
            put_mem(buf, mem);
            buf.put_u32(index);
        }
        Instruction::MRd { mem, index } => {
            buf.put_u8(2);
            put_mem(buf, mem);
            buf.put_u32(index);
        }
        Instruction::MWr { mem, index } => {
            buf.put_u8(3);
            put_mem(buf, mem);
            buf.put_u32(index);
        }
        Instruction::MvMul { mrf_index } => {
            buf.put_u8(4);
            buf.put_u32(mrf_index);
        }
        Instruction::VvAdd { index } => {
            buf.put_u8(5);
            buf.put_u32(index);
        }
        Instruction::VvASubB { index } => {
            buf.put_u8(6);
            buf.put_u32(index);
        }
        Instruction::VvBSubA { index } => {
            buf.put_u8(7);
            buf.put_u32(index);
        }
        Instruction::VvMax { index } => {
            buf.put_u8(8);
            buf.put_u32(index);
        }
        Instruction::VvMul { index } => {
            buf.put_u8(9);
            buf.put_u32(index);
        }
        Instruction::VRelu => buf.put_u8(10),
        Instruction::VSigm => buf.put_u8(11),
        Instruction::VTanh => buf.put_u8(12),
        Instruction::SWr { reg, value } => {
            buf.put_u8(13);
            buf.put_u8(match reg {
                ScalarReg::Rows => 0,
                ScalarReg::Cols => 1,
            });
            buf.put_u32(value);
        }
        Instruction::EndChain => buf.put_u8(14),
    }
}

fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_instruction(buf: &mut Bytes) -> Result<Instruction, DecodeError> {
    let op = get_u8(buf)?;
    Ok(match op {
        0 => Instruction::VRd {
            mem: get_mem(buf)?,
            index: get_u32(buf)?,
        },
        1 => Instruction::VWr {
            mem: get_mem(buf)?,
            index: get_u32(buf)?,
        },
        2 => Instruction::MRd {
            mem: get_mem(buf)?,
            index: get_u32(buf)?,
        },
        3 => Instruction::MWr {
            mem: get_mem(buf)?,
            index: get_u32(buf)?,
        },
        4 => Instruction::MvMul {
            mrf_index: get_u32(buf)?,
        },
        5 => Instruction::VvAdd {
            index: get_u32(buf)?,
        },
        6 => Instruction::VvASubB {
            index: get_u32(buf)?,
        },
        7 => Instruction::VvBSubA {
            index: get_u32(buf)?,
        },
        8 => Instruction::VvMax {
            index: get_u32(buf)?,
        },
        9 => Instruction::VvMul {
            index: get_u32(buf)?,
        },
        10 => Instruction::VRelu,
        11 => Instruction::VSigm,
        12 => Instruction::VTanh,
        13 => {
            let reg = match get_u8(buf)? {
                0 => ScalarReg::Rows,
                1 => ScalarReg::Cols,
                t => return Err(DecodeError::BadTag(t)),
            };
            Instruction::SWr {
                reg,
                value: get_u32(buf)?,
            }
        }
        14 => Instruction::EndChain,
        t => return Err(DecodeError::BadTag(t)),
    })
}

impl Program {
    /// Serializes the program to its executable binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(self.segments.len() as u32);
        for seg in &self.segments {
            buf.put_u32(seg.iterations);
            buf.put_u32(seg.items.len() as u32);
            for item in &seg.items {
                match item {
                    Item::SetReg { reg, value } => {
                        buf.put_u8(TAG_SET_REG);
                        buf.put_u8(match reg {
                            ScalarReg::Rows => 0,
                            ScalarReg::Cols => 1,
                        });
                        buf.put_u32(*value);
                    }
                    Item::Chain(chain) => {
                        buf.put_u8(TAG_CHAIN);
                        buf.put_u16(chain.len() as u16);
                        for instr in chain.instructions() {
                            put_instruction(&mut buf, instr);
                        }
                    }
                }
            }
        }
        buf.to_vec()
    }

    /// Deserializes a program binary, re-validating every chain.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the header is unrecognized, the buffer
    /// is truncated, a tag byte is unknown, or a decoded chain violates the
    /// ISA rules.
    pub fn decode(data: &[u8]) -> Result<Program, DecodeError> {
        let mut buf = Bytes::copy_from_slice(data);
        if buf.remaining() < 5 || &buf.copy_to_bytes(4)[..] != MAGIC {
            return Err(DecodeError::BadHeader);
        }
        if buf.get_u8() != VERSION {
            return Err(DecodeError::BadHeader);
        }
        let n_segments = get_u32(&mut buf)?;
        let mut segments = Vec::with_capacity(n_segments.min(4096) as usize);
        for _ in 0..n_segments {
            let iterations = get_u32(&mut buf)?;
            let n_items = get_u32(&mut buf)?;
            let mut items = Vec::with_capacity(n_items.min(65536) as usize);
            for _ in 0..n_items {
                match get_u8(&mut buf)? {
                    TAG_SET_REG => {
                        let reg = match get_u8(&mut buf)? {
                            0 => ScalarReg::Rows,
                            1 => ScalarReg::Cols,
                            t => return Err(DecodeError::BadTag(t)),
                        };
                        items.push(Item::SetReg {
                            reg,
                            value: get_u32(&mut buf)?,
                        });
                    }
                    TAG_CHAIN => {
                        if buf.remaining() < 2 {
                            return Err(DecodeError::Truncated);
                        }
                        let n = buf.get_u16();
                        let mut instrs = Vec::with_capacity(usize::from(n));
                        for _ in 0..n {
                            instrs.push(get_instruction(&mut buf)?);
                        }
                        let chain = Chain::new(instrs)
                            .map_err(|e| DecodeError::InvalidChain(e.to_string()))?;
                        items.push(Item::Chain(chain));
                    }
                    t => return Err(DecodeError::BadTag(t)),
                }
            }
            segments.push(Segment { items, iterations });
        }
        Ok(Program { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::super::builder::ProgramBuilder;
    use super::*;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.set_rows(4).set_cols(5);
        b.m_rd(MemId::Dram, 7)
            .m_wr(MemId::MatrixRf, 3)
            .end_chain()
            .unwrap();
        b.begin_loop(25).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(3)
            .vv_add(1)
            .v_sigm()
            .vv_mul(2)
            .v_tanh()
            .vv_max(9)
            .vv_a_sub_b(11)
            .vv_b_sub_a(12)
            .v_relu()
            .v_wr(MemId::AddSubVrf(1), 5)
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        b.build()
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = sample_program();
        let bytes = p.encode();
        let q = Program::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn header_validation() {
        assert_eq!(Program::decode(b""), Err(DecodeError::BadHeader));
        assert_eq!(Program::decode(b"NOPE\x01"), Err(DecodeError::BadHeader));
        assert_eq!(Program::decode(b"BWNP\x63"), Err(DecodeError::BadHeader));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_program().encode();
        for cut in [6, 10, 20, bytes.len() - 1] {
            let result = Program::decode(&bytes[..cut]);
            assert!(
                matches!(
                    result,
                    Err(DecodeError::Truncated) | Err(DecodeError::BadTag(_))
                ),
                "cut at {cut}: {result:?}"
            );
        }
    }

    #[test]
    fn corrupt_tag_detected() {
        let mut bytes = sample_program().encode();
        // Corrupt the first item tag (offset: 4 magic + 1 ver + 4 segs +
        // 4 iters + 4 items = 17).
        bytes[17] = 0xEE;
        assert_eq!(Program::decode(&bytes), Err(DecodeError::BadTag(0xEE)));
    }

    #[test]
    fn decoded_chains_are_revalidated() {
        // Hand-craft a binary whose chain is structurally invalid
        // (v_sigm with no read head).
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32(1); // one segment
        buf.put_u32(1); // one iteration
        buf.put_u32(1); // one item
        buf.put_u8(TAG_CHAIN);
        buf.put_u16(1);
        buf.put_u8(11); // v_sigm
        let err = Program::decode(&buf).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidChain(_)));
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new();
        assert_eq!(Program::decode(&p.encode()).unwrap(), p);
    }
}
