//! The Brainwave NPU instruction set architecture (§IV).
//!
//! The ISA is single-threaded SIMD: every instruction operates on `N`-length
//! native vectors or `N × N` native matrices, where `N` is fixed per NPU
//! instance. Programs are sequences of *instruction chains* — dependent
//! instructions that pass values directly from one operation to the next
//! without named intermediate storage (§IV-C, "Instruction Chaining") — plus
//! scalar control register writes that scale subsequent chains to tiled
//! multiples of the native dimension ("Mega-SIMD execution").
//!
//! The module provides:
//!
//! * [`Opcode`] / [`Instruction`] — the operations of Table II;
//! * [`Chain`] — a validated instruction chain;
//! * [`Program`] / [`Segment`] — the unit of execution the control processor
//!   streams to the top-level scheduler, with iteration counts modelling the
//!   Nios streaming "T iterations of N static instructions" (§V-C);
//! * [`ProgramBuilder`] — a firmware-authoring API mirroring the C macro
//!   style of the paper's LSTM kernel listing;
//! * binary encoding/decoding ([`Program::encode`], [`Program::decode`]),
//!   a disassembler (`Display` impls), and an assembler
//!   ([`Program::parse_asm`]) that round-trips the textual form.

mod asm;
mod builder;
mod chain;
mod encode;
mod instruction;
mod program;

pub use asm::AsmError;
pub use builder::{BuilderError, ProgramBuilder};
pub use chain::{Chain, ChainError};
pub use encode::DecodeError;
pub use instruction::{Instruction, MemId, Opcode, ScalarReg};
pub use program::{Item, Program, Segment};
