//! Firmware-authoring builder mirroring the paper's C-macro style.

use std::fmt;

use serde::{Deserialize, Serialize};

use super::chain::{Chain, ChainError};
use super::instruction::{Instruction, MemId, ScalarReg};
use super::program::{Item, Program, Segment};

/// Builds [`Program`]s with an API that reads like the paper's firmware
/// listing (§IV-C): each ISA mnemonic is a method, `end_chain` validates and
/// commits the pending chain, and `begin_loop`/`end_loop` express the
/// time-step loop the Nios streams repeatedly.
///
/// # Example
///
/// The f-gate fragment of the paper's LSTM kernel:
///
/// ```
/// use bw_core::isa::{ProgramBuilder, MemId};
///
/// const IVRF_XT: u32 = 0;
/// const MRF_WF: u32 = 0;
/// const ASVRF_BF: u32 = 0;
/// const ASVRF_XWF: u32 = 1;
///
/// let mut b = ProgramBuilder::new();
/// b.set_rows(4).set_cols(4);
/// b.begin_loop(25)?;
/// // xWf = xt * Wf + bf
/// b.v_rd(MemId::InitialVrf, IVRF_XT)
///     .mv_mul(MRF_WF)
///     .vv_add(ASVRF_BF)
///     .v_wr(MemId::AddSubVrf(0), ASVRF_XWF)
///     .end_chain()?;
/// b.end_loop()?;
/// let program = b.build();
/// assert_eq!(program.chain_count(), 25);
/// # Ok::<(), bw_core::isa::BuilderError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    segments: Vec<Segment>,
    /// Items accumulated outside any explicit loop.
    top_items: Vec<Item>,
    /// `Some((items, iterations))` while inside a `begin_loop`.
    in_loop: Option<(Vec<Item>, u32)>,
    /// Instructions of the chain currently being written.
    pending: Vec<Instruction>,
}

/// Error produced while building a program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuilderError {
    /// The pending chain violated the ISA chain rules.
    Chain(
        /// The underlying chain validation failure, as a string to keep this
        /// type serializable.
        String,
    ),
    /// `end_loop` without a matching `begin_loop`.
    NotInLoop,
    /// `begin_loop` while already inside a loop (the ISA's control processor
    /// streams flat iteration, not nested loops).
    NestedLoop,
    /// `begin_loop`/`end_loop` while a chain was still open.
    LoopInsideChain,
    /// A loop with zero iterations.
    ZeroIterations,
}

impl From<ChainError> for BuilderError {
    fn from(e: ChainError) -> Self {
        BuilderError::Chain(e.to_string())
    }
}

impl fmt::Display for BuilderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuilderError::Chain(e) => write!(f, "invalid chain: {e}"),
            BuilderError::NotInLoop => write!(f, "end_loop without begin_loop"),
            BuilderError::NestedLoop => write!(f, "loops cannot nest"),
            BuilderError::LoopInsideChain => {
                write!(f, "loop boundaries may not cross an open chain")
            }
            BuilderError::ZeroIterations => write!(f, "loop must iterate at least once"),
        }
    }
}

impl std::error::Error for BuilderError {}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    fn push_item(&mut self, item: Item) {
        match &mut self.in_loop {
            Some((items, _)) => items.push(item),
            None => self.top_items.push(item),
        }
    }

    fn flush_top(&mut self) {
        if !self.top_items.is_empty() {
            let items = std::mem::take(&mut self.top_items);
            self.segments.push(Segment {
                items,
                iterations: 1,
            });
        }
    }

    /// Writes the `rows` tiling register (`s_wr rows, n`).
    pub fn set_rows(&mut self, rows: u32) -> &mut Self {
        self.push_item(Item::SetReg {
            reg: ScalarReg::Rows,
            value: rows,
        });
        self
    }

    /// Writes the `cols` tiling register (`s_wr cols, n`).
    pub fn set_cols(&mut self, cols: u32) -> &mut Self {
        self.push_item(Item::SetReg {
            reg: ScalarReg::Cols,
            value: cols,
        });
        self
    }

    /// Opens a loop streamed `iterations` times.
    ///
    /// # Errors
    ///
    /// Returns [`BuilderError`] if already inside a loop, a chain is open,
    /// or `iterations` is zero.
    pub fn begin_loop(&mut self, iterations: u32) -> Result<&mut Self, BuilderError> {
        if self.in_loop.is_some() {
            return Err(BuilderError::NestedLoop);
        }
        if !self.pending.is_empty() {
            return Err(BuilderError::LoopInsideChain);
        }
        if iterations == 0 {
            return Err(BuilderError::ZeroIterations);
        }
        self.flush_top();
        self.in_loop = Some((Vec::new(), iterations));
        Ok(self)
    }

    /// Closes the current loop.
    ///
    /// # Errors
    ///
    /// Returns [`BuilderError`] if no loop is open or a chain is open.
    pub fn end_loop(&mut self) -> Result<&mut Self, BuilderError> {
        if !self.pending.is_empty() {
            return Err(BuilderError::LoopInsideChain);
        }
        let (items, iterations) = self.in_loop.take().ok_or(BuilderError::NotInLoop)?;
        self.segments.push(Segment { items, iterations });
        Ok(self)
    }

    /// Appends `v_rd mem, index` to the pending chain.
    pub fn v_rd(&mut self, mem: MemId, index: u32) -> &mut Self {
        self.pending.push(Instruction::VRd { mem, index });
        self
    }

    /// Appends `v_wr mem, index`.
    pub fn v_wr(&mut self, mem: MemId, index: u32) -> &mut Self {
        self.pending.push(Instruction::VWr { mem, index });
        self
    }

    /// Appends `m_rd mem, index`.
    pub fn m_rd(&mut self, mem: MemId, index: u32) -> &mut Self {
        self.pending.push(Instruction::MRd { mem, index });
        self
    }

    /// Appends `m_wr mem, index`.
    pub fn m_wr(&mut self, mem: MemId, index: u32) -> &mut Self {
        self.pending.push(Instruction::MWr { mem, index });
        self
    }

    /// Appends `mv_mul mrf_index`.
    pub fn mv_mul(&mut self, mrf_index: u32) -> &mut Self {
        self.pending.push(Instruction::MvMul { mrf_index });
        self
    }

    /// Appends `vv_add index`.
    pub fn vv_add(&mut self, index: u32) -> &mut Self {
        self.pending.push(Instruction::VvAdd { index });
        self
    }

    /// Appends `vv_a_sub_b index`.
    pub fn vv_a_sub_b(&mut self, index: u32) -> &mut Self {
        self.pending.push(Instruction::VvASubB { index });
        self
    }

    /// Appends `vv_b_sub_a index`.
    pub fn vv_b_sub_a(&mut self, index: u32) -> &mut Self {
        self.pending.push(Instruction::VvBSubA { index });
        self
    }

    /// Appends `vv_max index`.
    pub fn vv_max(&mut self, index: u32) -> &mut Self {
        self.pending.push(Instruction::VvMax { index });
        self
    }

    /// Appends `vv_mul index`.
    pub fn vv_mul(&mut self, index: u32) -> &mut Self {
        self.pending.push(Instruction::VvMul { index });
        self
    }

    /// Appends `v_relu`.
    pub fn v_relu(&mut self) -> &mut Self {
        self.pending.push(Instruction::VRelu);
        self
    }

    /// Appends `v_sigm`.
    pub fn v_sigm(&mut self) -> &mut Self {
        self.pending.push(Instruction::VSigm);
        self
    }

    /// Appends `v_tanh`.
    pub fn v_tanh(&mut self) -> &mut Self {
        self.pending.push(Instruction::VTanh);
        self
    }

    /// Validates and commits the pending chain (`end_chain`).
    ///
    /// # Errors
    ///
    /// Returns [`BuilderError::Chain`] if the pending instructions violate
    /// the chain rules; the pending buffer is cleared either way.
    pub fn end_chain(&mut self) -> Result<&mut Self, BuilderError> {
        let instructions = std::mem::take(&mut self.pending);
        let chain = Chain::new(instructions)?;
        self.push_item(Item::Chain(chain));
        Ok(self)
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if a chain or loop is still open — both indicate firmware
    /// generator bugs rather than runtime conditions.
    pub fn build(mut self) -> Program {
        assert!(
            self.pending.is_empty(),
            "program finished with an unterminated chain"
        );
        assert!(
            self.in_loop.is_none(),
            "program finished with an unterminated loop"
        );
        self.flush_top();
        Program {
            segments: self.segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_style_firmware() {
        let mut b = ProgramBuilder::new();
        b.set_rows(2).set_cols(2);
        b.begin_loop(3).unwrap();
        b.v_rd(MemId::NetQ, 0)
            .v_wr(MemId::InitialVrf, 0)
            .end_chain()
            .unwrap();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .vv_add(0)
            .v_sigm()
            .v_wr(MemId::NetQ, 0)
            .end_chain()
            .unwrap();
        b.end_loop().unwrap();
        let p = b.build();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].iterations, 1); // the s_wr prologue
        assert_eq!(p.segments[1].iterations, 3);
        assert_eq!(p.chain_count(), 6);
    }

    #[test]
    fn invalid_chain_surfaces_error_and_clears() {
        let mut b = ProgramBuilder::new();
        let err = b.v_sigm().end_chain().unwrap_err();
        assert!(matches!(err, BuilderError::Chain(_)));
        // Builder remains usable.
        b.v_rd(MemId::InitialVrf, 0)
            .v_wr(MemId::InitialVrf, 1)
            .end_chain()
            .unwrap();
        assert_eq!(b.build().chain_count(), 1);
    }

    #[test]
    fn loop_discipline() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.end_loop().unwrap_err(), BuilderError::NotInLoop);
        b.begin_loop(2).unwrap();
        assert_eq!(b.begin_loop(2).unwrap_err(), BuilderError::NestedLoop);
        b.end_loop().unwrap();
        assert_eq!(b.begin_loop(0).unwrap_err(), BuilderError::ZeroIterations);
    }

    #[test]
    fn loop_boundary_cannot_cross_open_chain() {
        let mut b = ProgramBuilder::new();
        b.v_rd(MemId::InitialVrf, 0);
        assert_eq!(b.begin_loop(2).unwrap_err(), BuilderError::LoopInsideChain);
    }

    #[test]
    #[should_panic(expected = "unterminated chain")]
    fn build_panics_on_open_chain() {
        let mut b = ProgramBuilder::new();
        b.v_rd(MemId::InitialVrf, 0);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "unterminated loop")]
    fn build_panics_on_open_loop() {
        let mut b = ProgramBuilder::new();
        b.begin_loop(2).unwrap();
        let _ = b.build();
    }

    #[test]
    fn all_mnemonics_append() {
        let mut b = ProgramBuilder::new();
        b.v_rd(MemId::InitialVrf, 0)
            .mv_mul(0)
            .vv_add(0)
            .vv_a_sub_b(1)
            .vv_mul(2)
            .v_relu()
            .v_tanh()
            .v_sigm()
            .vv_max(3)
            .vv_b_sub_a(4)
            .v_wr(MemId::Dram, 5)
            .end_chain()
            .unwrap();
        let p = b.build();
        assert_eq!(p.instruction_count(), 12); // 11 + end_chain
    }

    #[test]
    fn matrix_move_via_builder() {
        let mut b = ProgramBuilder::new();
        b.m_rd(MemId::Dram, 0)
            .m_wr(MemId::MatrixRf, 4)
            .end_chain()
            .unwrap();
        let p = b.build();
        assert_eq!(p.chain_count(), 1);
    }
}
